"""Event-sourced process journal: derive snapshots by replaying events.

The persistence layer appends a domain-event record (``type: "event"``)
for every instance state transition — ``activity_started`` /
``activity_completed`` / ``activity_compensated``, ``variable_set``,
``saga_step_registered``, ``modification_applied``, ... — alongside the
boundary checkpoints. Checkpoints are thereby *derived* state: replaying
the event journal up to a checkpoint's sequence number reconstructs the
checkpoint payload byte-identically (:func:`verify_journal` asserts
exactly that). Crash recovery, saga replay and the modification journal
all read the same log.

Event kinds and their state effects:

====================== =====================================================
``instance_created``   genesis — full snapshot of the fresh instance
``instance_rehydrated``genesis — full snapshot of the rehydrated instance
``activity_started``   ``executed`` += activity, ``active`` += activity
``activity_completed`` ``active`` -= activity, ``completions[activity]`` += 1
``activity_replayed``  like completed, plus ``executed`` += activity
``activity_cancelled`` ``active`` -= activity (abrupt unwind)
``saga_step_registered`` ``compensations`` append(step)
``compensation_started`` ``compensations`` pop last occurrence of step
``activity_compensated`` narrative only (undo ran to completion)
``variable_set``       ``variables[name] = value`` (encoded form)
``variable_deleted``   ``variables`` drop name
``result_set``         ``result = value``
``fault_set``          ``fault = value``
``status_changed``     ``status = value``
``compensation_request_set`` pending policy request recorded / cleared
``modification_applied`` apply operations to the tree, bindings to variables
``journal_truncated``  the writer could not journal further events; snapshot
                       derivation is unsound past this point
====================== =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.orchestration.modification import ModificationOperation, perform_operation
from repro.orchestration.xmlio import parse_activity, serialize_activity
from repro.persistence.store import CHECKPOINT, EVENT, CheckpointStore

__all__ = [
    "DerivedState",
    "JournalError",
    "apply_event",
    "derive_snapshot",
    "journal_events",
    "verify_journal",
]


class JournalError(RuntimeError):
    """The event journal cannot be replayed into a snapshot."""


@dataclass
class DerivedState:
    """Instance state reconstructed purely from journal events.

    All values are kept in their *encoded* (JSON) forms, exactly as a
    checkpoint record stores them, so :meth:`snapshot` is byte-comparable
    with a live ``capture_checkpoint`` payload.
    """

    instance_id: str
    definition: str = ""
    time: float = 0.0
    status: str = "running"
    tree: str = ""
    variables: dict[str, Any] = field(default_factory=dict)
    executed: set[str] = field(default_factory=set)
    active: set[str] = field(default_factory=set)
    completions: dict[str, int] = field(default_factory=dict)
    compensations: list[str] = field(default_factory=list)
    result: Any = None
    input: Any = None
    fault: Any = None
    compensation_request: Any = None
    #: True after a ``journal_truncated`` marker: the writer stopped
    #: journaling (non-serializable state), so derivation is unsound.
    tainted: bool = False
    #: Number of events applied so far.
    events_applied: int = 0

    def snapshot(self) -> dict[str, Any]:
        """The state as a checkpoint-record payload (without ``seq``)."""
        return {
            "type": CHECKPOINT,
            "instance_id": self.instance_id,
            "definition": self.definition,
            "time": self.time,
            "status": self.status,
            "tree": self.tree,
            "variables": dict(self.variables),
            "executed": sorted(self.executed),
            "active": sorted(self.active),
            "completions": dict(self.completions),
            "compensations": list(self.compensations),
            "result": self.result,
            "input": self.input,
            "fault": self.fault,
            "compensation_request": self.compensation_request,
        }


def _load_genesis(state: DerivedState, data: dict[str, Any]) -> None:
    state.definition = data["definition"]
    state.status = data["status"]
    state.tree = data["tree"]
    state.variables = dict(data["variables"])
    state.executed = set(data["executed"])
    state.active = set(data["active"])
    state.completions = dict(data["completions"])
    state.compensations = list(data["compensations"])
    state.result = data["result"]
    state.input = data["input"]
    state.fault = data["fault"]
    state.compensation_request = data.get("compensation_request")


def apply_event(state: DerivedState, record: dict[str, Any]) -> DerivedState:
    """Fold one journal event record into the derived state (in place)."""
    kind = record["event"]
    data = record.get("data", {})
    state.time = record["time"]
    state.events_applied += 1
    if kind in ("instance_created", "instance_rehydrated"):
        _load_genesis(state, data)
    elif kind == "activity_started":
        state.executed.add(data["activity"])
        state.active.add(data["activity"])
    elif kind == "activity_completed":
        state.active.discard(data["activity"])
        state.completions[data["activity"]] = (
            state.completions.get(data["activity"], 0) + 1
        )
    elif kind == "activity_replayed":
        state.executed.add(data["activity"])
        state.active.discard(data["activity"])
        state.completions[data["activity"]] = (
            state.completions.get(data["activity"], 0) + 1
        )
    elif kind == "activity_cancelled":
        state.active.discard(data["activity"])
    elif kind == "saga_step_registered":
        state.compensations.append(data["step"])
    elif kind == "compensation_started":
        step = data["step"]
        for index in range(len(state.compensations) - 1, -1, -1):
            if state.compensations[index] == step:
                del state.compensations[index]
                break
    elif kind == "activity_compensated":
        pass  # narrative only; the pop happened at compensation_started
    elif kind == "variable_set":
        state.variables[data["name"]] = data["value"]
    elif kind == "variable_deleted":
        state.variables.pop(data["name"], None)
    elif kind == "result_set":
        state.result = data["value"]
    elif kind == "fault_set":
        state.fault = data["value"]
    elif kind == "status_changed":
        state.status = data["status"]
    elif kind == "compensation_request_set":
        state.compensation_request = data["value"]
    elif kind == "modification_applied":
        root = parse_activity(state.tree)
        for encoded in data["operations"]:
            operation = ModificationOperation(
                kind=encoded["kind"],
                anchor=encoded["anchor"],
                activity=(
                    None
                    if encoded["activity"] is None
                    else parse_activity(encoded["activity"])
                ),
            )
            perform_operation(root, operation)
        state.tree = serialize_activity(root)
        state.variables.update(data.get("bindings", {}))
    elif kind == "journal_truncated":
        state.tainted = True
    else:
        raise JournalError(f"unknown journal event kind {kind!r}")
    return state


def journal_events(
    store: CheckpointStore, instance_id: str | None = None
) -> list[dict[str, Any]]:
    """All event records, optionally for one instance, in seq order."""
    return store.records(instance_id=instance_id, record_type=EVENT)


def derive_snapshot(
    store: CheckpointStore, instance_id: str, upto_seq: int | None = None
) -> DerivedState:
    """Replay the event journal for one instance into a derived state.

    ``upto_seq`` bounds the replay (inclusive): pass a checkpoint record's
    ``seq`` to reconstruct the state that checkpoint captured.
    """
    state = DerivedState(instance_id=instance_id)
    seen = False
    for record in journal_events(store, instance_id):
        if upto_seq is not None and record["seq"] > upto_seq:
            break
        apply_event(state, record)
        seen = True
    if not seen:
        raise JournalError(f"no journal events recorded for instance {instance_id!r}")
    return state


def verify_journal(
    store: CheckpointStore, instance_id: str | None = None
) -> list[dict[str, Any]]:
    """Check every checkpoint against its journal-derived snapshot.

    Returns a list of divergences (empty means every boundary snapshot is
    byte-identical to the journal replay). Checkpoints past a
    ``journal_truncated`` marker are skipped — the writer stopped
    journaling on purpose there.
    """
    divergences: list[dict[str, Any]] = []
    instance_ids = [instance_id] if instance_id is not None else store.instance_ids()
    for target in instance_ids:
        state = DerivedState(instance_id=target)
        seen = False
        for record in store.records(instance_id=target):
            if record.get("type") == EVENT:
                apply_event(state, record)
                seen = True
                continue
            if record.get("type") != CHECKPOINT:
                continue
            if state.tainted:
                continue
            if not seen:
                divergences.append(
                    {
                        "instance_id": target,
                        "seq": record["seq"],
                        "field": "*",
                        "detail": "checkpoint precedes any journal event",
                    }
                )
                continue
            stored = {key: value for key, value in record.items() if key != "seq"}
            derived = state.snapshot()
            if json.dumps(derived, sort_keys=True) != json.dumps(stored, sort_keys=True):
                for key in sorted(set(stored) | set(derived)):
                    if json.dumps(stored.get(key), sort_keys=True) != json.dumps(
                        derived.get(key), sort_keys=True
                    ):
                        divergences.append(
                            {
                                "instance_id": target,
                                "seq": record["seq"],
                                "field": key,
                                "detail": (
                                    f"stored={stored.get(key)!r} "
                                    f"derived={derived.get(key)!r}"
                                ),
                            }
                        )
    return divergences
