"""WS-Addressing message-information headers.

Carries endpoint references and message correlation. MASC extends the set
with a ``ProcessInstanceID`` header: the adaptation service "transparently
adds the ProcessInstanceID of the calling process to outgoing SOAP messages
(using the RelatesTo Message Addressing Header)" so the messaging layer can
identify which process instance to coordinate recovery with.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.xmlutils import Element, QName

__all__ = ["AddressingHeaders", "MASC_NS", "WSA_NS", "new_message_id"]

WSA_NS = "http://www.w3.org/2005/08/addressing"
MASC_NS = "http://masc.web.cse.unsw.edu.au/ns/masc"

_message_counter = itertools.count(1)


def new_message_id() -> str:
    """A fresh unique message identifier (URN form)."""
    return f"urn:uuid:msg-{next(_message_counter):08d}"


@dataclass(frozen=True)
class AddressingHeaders:
    """The addressing properties of one SOAP message.

    ``process_instance_id`` is the MASC extension header used for
    cross-layer coordination between wsBus and the orchestration engine.
    """

    to: str | None = None
    action: str | None = None
    message_id: str = field(default_factory=new_message_id)
    relates_to: str | None = None
    reply_to: str | None = None
    process_instance_id: str | None = None

    def for_reply(self, to: str | None = None) -> "AddressingHeaders":
        """Headers for a reply correlated to this message."""
        # Direct construction (no dataclass __init__): one reply per request
        # makes this hot, and the frozen-dataclass field funnel is pure
        # overhead for a freshly built value.
        reply = AddressingHeaders.__new__(AddressingHeaders)
        state = reply.__dict__
        state["to"] = to if to is not None else self.reply_to
        state["action"] = f"{self.action}Response" if self.action else None
        state["message_id"] = new_message_id()
        state["relates_to"] = self.message_id
        state["reply_to"] = None
        state["process_instance_id"] = self.process_instance_id
        return reply

    def with_process_instance(self, process_instance_id: str) -> "AddressingHeaders":
        """A copy carrying the calling process instance identifier."""
        return replace(self, process_instance_id=process_instance_id)

    def retargeted(self, to: str) -> "AddressingHeaders":
        """A copy addressed to a different endpoint (VEP re-routing).

        A fresh ``message_id`` is minted because re-routed copies are
        distinct messages on the wire (the paper's concurrent-invocation
        strategy "makes a copy of the message and modifies its route").
        """
        retargeted = AddressingHeaders.__new__(AddressingHeaders)
        state = retargeted.__dict__
        state.update(self.__dict__)
        state["to"] = to
        state["message_id"] = new_message_id()
        return retargeted

    # -- XML mapping ---------------------------------------------------------

    def to_elements(self) -> list[Element]:
        """Header blocks in document order."""
        blocks: list[Element] = []

        def block(local: str, ns: str, text: str | None) -> None:
            if text is not None:
                blocks.append(Element(QName(ns, local), text=text))

        block("To", WSA_NS, self.to)
        block("Action", WSA_NS, self.action)
        block("MessageID", WSA_NS, self.message_id)
        block("RelatesTo", WSA_NS, self.relates_to)
        block("ReplyTo", WSA_NS, self.reply_to)
        block("ProcessInstanceID", MASC_NS, self.process_instance_id)
        return blocks

    @classmethod
    def from_elements(cls, blocks: list[Element]) -> "AddressingHeaders":
        """Reconstruct addressing properties from header blocks."""
        values: dict[str, str] = {}
        for element in blocks:
            if element.name.namespace == WSA_NS:
                values[element.name.local] = element.text or ""
            elif element.name == QName(MASC_NS, "ProcessInstanceID"):
                values["ProcessInstanceID"] = element.text or ""
        return cls(
            to=values.get("To"),
            action=values.get("Action"),
            message_id=values.get("MessageID", new_message_id()),
            relates_to=values.get("RelatesTo"),
            reply_to=values.get("ReplyTo"),
            process_instance_id=values.get("ProcessInstanceID"),
        )
