"""Simulated network transport.

Replaces the paper's SOAP-over-HTTP on a 100 Mb LAN with a discrete-event
simulated wire: per-message latency is a base cost plus a size-proportional
term plus seeded jitter, endpoints can refuse connections while a fault
window is open, and callers can bound waits with timeouts. All middleware
code above this layer (invokers, wsBus pipelines, orchestration) is agnostic
to the substitution.
"""

from repro.transport.network import (
    ConnectionRefused,
    LatencyModel,
    Network,
    NetworkEndpoint,
    TransportError,
    TransportTimeout,
)

__all__ = [
    "ConnectionRefused",
    "LatencyModel",
    "Network",
    "NetworkEndpoint",
    "TransportError",
    "TransportTimeout",
]
