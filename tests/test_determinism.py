"""Determinism regression tests: same seed → identical results.

DESIGN.md promises bit-for-bit reproducibility; these tests hold the
system to it across the layers where nondeterminism could creep in
(dict ordering, event scheduling ties, random streams).
"""

from repro.casestudies.scm import RETAILER_CONTRACT, build_scm_deployment
from repro.casestudies.stocktrading import (
    build_trading_deployment,
    currency_conversion_policy_document,
)
from repro.experiments import run_direct_configuration, run_vep_configuration
from repro.policy import serialize_policy_document
from repro.workload import RequestPlan, WorkloadRunner


def _records_signature(records):
    return [
        (r.target, r.operation, round(r.started_at, 9), round(r.finished_at, 9),
         r.outcome.value, r.fault_code.value if r.fault_code else None)
        for r in records
    ]


class TestWorkloadDeterminism:
    def _run(self, seed):
        deployment = build_scm_deployment(seed=seed, log_events=False)
        deployment.inject_table1_mix()
        plan = RequestPlan(
            target=deployment.retailers["A"].address,
            operation="getCatalog",
            payload_factory=lambda c, i: RETAILER_CONTRACT.operation(
                "getCatalog"
            ).input.build(),
            timeout=5.0,
            think_time_seconds=2.0,
        )
        result = WorkloadRunner(deployment.env, deployment.network).run(
            plan, clients=3, requests_per_client=60
        )
        return _records_signature(result.records)

    def test_same_seed_identical_timeline(self):
        assert self._run(5) == self._run(5)

    def test_different_seed_differs(self):
        assert self._run(5) != self._run(6)


class TestExperimentDeterminism:
    def test_direct_configuration_reproducible(self):
        first = run_direct_configuration("B", seed=17, clients=2, requests=40)
        second = run_direct_configuration("B", seed=17, clients=2, requests=40)
        assert first.failures_per_1000 == second.failures_per_1000
        assert first.availability == second.availability

    def test_vep_configuration_reproducible(self):
        first, _, _ = run_vep_configuration(seed=17, clients=2, requests=40)
        second, _, _ = run_vep_configuration(seed=17, clients=2, requests=40)
        assert first.failures_per_1000 == second.failures_per_1000


class TestTradingDeterminism:
    def _run(self, seed):
        deployment = build_trading_deployment(seed=seed)
        deployment.masc.load_policies(
            serialize_policy_document(currency_conversion_policy_document())
        )
        instance = deployment.run_order(amount=20_000.0, country="US", currency="USD")
        return (
            instance.result,
            sorted(instance.executed_activities),
            instance.variables.get("local_amount"),
            round(deployment.env.now, 9),
        )

    def test_trading_run_reproducible(self):
        assert self._run(9) == self._run(9)
