"""SLA-threshold monitoring driving process-layer adaptation.

Connects the pieces end-to-end the way the paper's SLA story describes:
the wsBus QoS Measurement Service feeds the MASC monitoring service's
QoS-threshold assertions ("thresholds over QoS guarantees (e.g. service
response time) as stipulated in pre-established SLAs"); a breach raises
``fault.SLAViolation``; an adaptation policy reacts.
"""

import pytest

from conftest import ECHO_CONTRACT, EchoService, SlowEchoService
from repro.core import MASC
from repro.orchestration import Invoke, ProcessDefinition, Reply, Sequence
from repro.orchestration.instance import InstanceStatus
from repro.policy import (
    AdaptationPolicy,
    MonitoringPolicy,
    PolicyDocument,
    PolicyScope,
    QoSThreshold,
    serialize_policy_document,
)
from repro.policy.actions import TerminateProcessAction
from repro.wsbus import QoSMeasurementService


@pytest.fixture
def world():
    """A MASC stack whose monitoring consults a QoS measurement service."""
    qos = QoSMeasurementService()
    masc = MASC(seed=33, qos_lookup=qos.lookup)
    qos.attach_to_invoker(masc.engine.invoker)
    masc.deploy(SlowEchoService(masc.env, "sluggish", "http://svc/slow", delay=2.0))
    return masc, qos


def slow_call_definition(repeats=3):
    calls = [
        Invoke(
            f"call-{index}",
            operation="echo",
            to="http://svc/slow",
            inputs={"text": "x"},
            timeout_seconds=30.0,
        )
        for index in range(repeats)
    ]
    return ProcessDefinition(
        "sla-sensitive", Sequence("main", calls + [Reply("r", expression="'done'")])
    )


def sla_policy_document():
    document = PolicyDocument("sla")
    document.monitoring_policies.append(
        MonitoringPolicy(
            name="response-time-sla",
            events=("message.response",),
            scope=PolicyScope(service_type="Echo"),
            qos_thresholds=(QoSThreshold("response_time", "lte", 0.5, window=10),),
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="abort-on-sla-breach",
            triggers=("fault.SLAViolation",),
            actions=(TerminateProcessAction(reason="SLA breached"),),
        )
    )
    return serialize_policy_document(document)


class TestSlaDrivenAdaptation:
    def test_breach_terminates_instance(self, world):
        masc, qos = world
        masc.load_policies(sla_policy_document())
        instance = masc.engine.start(slow_call_definition())
        masc.env.run()
        # The first 2 s response breaches the 0.5 s SLA; the policy
        # terminates the instance before all three calls complete.
        assert instance.status is InstanceStatus.TERMINATED
        assert len(instance.executed_activities & {"call-0", "call-1", "call-2"}) < 3

    def test_no_breach_no_adaptation(self, world):
        masc, qos = world
        masc.deploy(EchoService(masc.env, "fast", "http://svc/fast"))
        masc.load_policies(sla_policy_document())
        definition = ProcessDefinition(
            "fast-calls",
            Sequence(
                "main",
                [
                    Invoke(
                        "quick",
                        operation="echo",
                        to="http://svc/fast",
                        inputs={"text": "x"},
                        extract={"echoed": "text"},
                    ),
                    Reply("r", variable="echoed"),
                ],
            ),
        )
        instance = masc.engine.start(definition)
        assert masc.engine.run_to_completion(instance) == "x@fast"
        assert instance.status is InstanceStatus.COMPLETED

    def test_violation_event_carries_measurements(self, world):
        masc, qos = world
        masc.load_policies(sla_policy_document())
        events = []
        masc.monitoring.add_sink(events.append)
        instance = masc.engine.start(slow_call_definition(repeats=1))
        masc.env.run()
        violations = [e for e in events if e.name == "fault.SLAViolation"]
        assert violations
        context = violations[0].context
        assert context["violated_metric"] == "response_time"
        assert context["observed_value"] > 0.5
        assert context["threshold_value"] == 0.5
