"""SOAP faults and the wsBus fault taxonomy.

The wsBus Monitoring Service classifies detected violations into meaningful
fault types — "Service Unavailable Fault, SLA Violation Fault, Service
Failure Fault and Timeout Fault" — which the Adaptation Manager keys its
recovery policies on. :class:`FaultCode` captures that taxonomy plus the
standard SOAP client/server codes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.xmlutils import Element, QName

__all__ = ["FaultCode", "SoapFault", "SoapFaultError", "TRANSIENT_FAULT_CODES"]

_FAULT_NS = "http://masc.web.cse.unsw.edu.au/ns/faults"


class FaultCode(enum.Enum):
    """Fault classification used by monitoring and adaptation policies."""

    #: Malformed or contract-violating request (SOAP "Client").
    CLIENT = "Client"
    #: Service-side processing error (SOAP "Server").
    SERVER = "Server"
    #: The endpoint could not be reached at all.
    SERVICE_UNAVAILABLE = "ServiceUnavailable"
    #: The service responded with an application-level failure.
    SERVICE_FAILURE = "ServiceFailure"
    #: No response within the invoker's timeout interval.
    TIMEOUT = "Timeout"
    #: A QoS guarantee from the SLA was violated (e.g. response time).
    SLA_VIOLATION = "SLAViolation"

    @property
    def qname(self) -> QName:
        return QName(_FAULT_NS, self.value)


#: Fault codes considered transient: a retry against the same or an
#: equivalent service may succeed. Policies may override this default.
TRANSIENT_FAULT_CODES = frozenset(
    {FaultCode.SERVICE_UNAVAILABLE, FaultCode.TIMEOUT, FaultCode.SLA_VIOLATION}
)


@dataclass
class SoapFault:
    """The content of a SOAP Fault element."""

    code: FaultCode
    reason: str
    actor: str | None = None
    detail: Element | None = None
    #: Where the fault was detected; used in experiment traces.
    source: str | None = None

    @property
    def is_transient(self) -> bool:
        """Whether retry-style recovery is plausible for this fault."""
        return self.code in TRANSIENT_FAULT_CODES

    def to_element(self) -> Element:
        from repro.soap.envelope import SOAP_ENV_NS  # local import: avoid cycle

        fault = Element(QName(SOAP_ENV_NS, "Fault"))
        fault.add(QName("", "faultcode"), text=self.code.qname.clark())
        fault.add(QName("", "faultstring"), text=self.reason)
        if self.actor:
            fault.add(QName("", "faultactor"), text=self.actor)
        if self.detail is not None:
            detail = fault.add(QName("", "detail"))
            detail.append(self.detail.copy())
        return fault

    @classmethod
    def from_element(cls, element: Element) -> "SoapFault":
        code_text = element.child_text("faultcode", "") or ""
        local = QName.parse(code_text).local
        try:
            code = FaultCode(local)
        except ValueError:
            code = FaultCode.SERVER
        detail_wrapper = element.find("detail")
        detail = detail_wrapper.children[0].copy() if detail_wrapper and detail_wrapper.children else None
        return cls(
            code=code,
            reason=element.child_text("faultstring", "") or "",
            actor=element.child_text("faultactor"),
            detail=detail,
        )

    def to_exception(self) -> "SoapFaultError":
        return SoapFaultError(self)

    def __str__(self) -> str:
        return f"[{self.code.value}] {self.reason}"


class SoapFaultError(Exception):
    """A SOAP fault raised as a Python exception on the caller's side."""

    def __init__(self, fault: SoapFault) -> None:
        super().__init__(str(fault))
        self.fault = fault


def unavailable(reason: str, source: str | None = None) -> SoapFault:
    """Convenience constructor for a ServiceUnavailable fault."""
    return SoapFault(FaultCode.SERVICE_UNAVAILABLE, reason, source=source)


def timeout(reason: str, source: str | None = None) -> SoapFault:
    """Convenience constructor for a Timeout fault."""
    return SoapFault(FaultCode.TIMEOUT, reason, source=source)
