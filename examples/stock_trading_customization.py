"""Stock trading: policy-driven customization of a running composition.

Reproduces the Section 2.2 demo end-to-end: a base national-trading
process, four externalized WS-Policy4MASC documents, and a set of orders
that trigger different customizations — with zero changes to the process
definition or any service implementation.

Run:  python examples/stock_trading_customization.py
"""

from repro.casestudies.stocktrading import (
    build_trading_deployment,
    compliance_removal_policy_document,
    credit_rating_policy_document,
    currency_conversion_policy_document,
    pest_analysis_policy_document,
)
from repro.policy import serialize_policy_document

INTERESTING_ACTIVITIES = (
    "convert-currency",
    "pest-analysis",
    "credit-rating",
    "market-compliance",
)


def describe(instance) -> str:
    executed = [name for name in INTERESTING_ACTIVITIES if name in instance.executed_activities]
    return ", ".join(executed) if executed else "(base process only)"


def main() -> None:
    deployment = build_trading_deployment(seed=11)
    masc = deployment.masc

    print("Loading WS-Policy4MASC documents (via the real XML wire format):\n")
    for document in (
        currency_conversion_policy_document(),
        pest_analysis_policy_document(),
        credit_rating_policy_document(),
        compliance_removal_policy_document(),
    ):
        xml = serialize_policy_document(document)
        masc.load_policies(xml)
        print(f"  loaded {document.name!r} ({len(document)} policies, {len(xml)} bytes of XML)")

    orders = [
        ("national trade, AUD 50k", dict(amount=50_000.0, country="AU")),
        ("international trade, USD 20k", dict(amount=20_000.0, country="US", currency="USD")),
        ("high-risk country, BRL-ish", dict(amount=15_000.0, country="BR", currency="USD")),
        ("large personal trade, AUD 250k", dict(amount=250_000.0, profile="personal")),
        ("corporate trade, AUD 2k", dict(amount=2_000.0, profile="corporate")),
        ("small trade, AUD 500", dict(amount=500.0)),
    ]

    print("\nRunning orders against the *unmodified* base trading process:\n")
    for label, kwargs in orders:
        instance = deployment.run_order(**kwargs)
        print(f"  {label:34s} -> {instance.status.value:9s} | customization: {describe(instance)}")

    print("\nPer-instance adaptations enacted by MASCAdaptationService:")
    for report in masc.adaptation.reports:
        mode = "dynamic" if report.dynamic else "static"
        print(f"  [{mode:7s}] {report.instance_id}: {report.policy_name} -> {report.action}")

    print("\nBusiness-value ledger (adaptation fees/gains):")
    for entry in masc.repository.ledger:
        print(f"  t={entry.time:8.3f}  {entry.policy_name:32s} {entry.value.describe()}")
    print(f"  TOTAL: {masc.repository.business_totals()}")

    definition = deployment.engine.definitions["trading-process"]
    print(f"\nBase process definition still contains exactly: {definition.activity_names()}")


if __name__ == "__main__":
    main()
