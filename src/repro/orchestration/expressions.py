"""Safe declarative expressions over process variables.

Policies and process conditions are *declarative documents*, so their
conditions and assignments are strings, not Python callables. This module
compiles a restricted expression language (a whitelisted subset of Python's
own expression grammar) against a variable namespace:

- literals, names (process variables), attribute-free subscripts
- arithmetic, comparisons (including chained), boolean operators, unary ops
- membership tests (``in`` / ``not in``)
- the builtins ``len``, ``min``, ``max``, ``abs``, ``round``, ``str``,
  ``int``, ``float``, ``bool``, ``sum``

Anything else — attribute access, calls to arbitrary names, lambdas,
comprehensions — is rejected at compile time, so a policy document can never
execute arbitrary code.
"""

from __future__ import annotations

import ast
import operator
from functools import lru_cache
from typing import Any, Callable

__all__ = ["Expression", "ExpressionError"]


class ExpressionError(Exception):
    """The expression is outside the safe subset or failed to evaluate."""


#: Resource-exhaustion guards: a policy document is untrusted input, so an
#: expression must not be able to hang evaluation (``2**2**30``) or allocate
#: gigabytes (``[0] * 10**9``). Numeric work is bounded; sequence repetition
#: is rejected outright.
_MAX_POW_EXPONENT = 128
_MAX_INT_BITS = 4096
_SEQUENCE_TYPES = (str, bytes, bytearray, list, tuple)


def _check_int_magnitude(value: Any, context: str) -> None:
    if isinstance(value, int) and not isinstance(value, bool) and value.bit_length() > _MAX_INT_BITS:
        raise ExpressionError(
            f"{context}: integer operand exceeds {_MAX_INT_BITS} bits"
        )


def _safe_mult(left: Any, right: Any) -> Any:
    if isinstance(left, _SEQUENCE_TYPES) or isinstance(right, _SEQUENCE_TYPES):
        raise ExpressionError(
            "sequence repetition is not allowed in safe expressions "
            "(it can allocate unbounded memory)"
        )
    _check_int_magnitude(left, "multiplication")
    _check_int_magnitude(right, "multiplication")
    return operator.mul(left, right)


def _safe_pow(base: Any, exponent: Any) -> Any:
    if isinstance(exponent, int) and not isinstance(exponent, bool) and abs(exponent) > _MAX_POW_EXPONENT:
        raise ExpressionError(
            f"exponent {exponent} exceeds the safe-expression bound of {_MAX_POW_EXPONENT}"
        )
    _check_int_magnitude(base, "exponentiation")
    return operator.pow(base, exponent)


_BINARY_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: _safe_mult,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: _safe_pow,
}

_COMPARE_OPS = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}

_UNARY_OPS = {
    ast.Not: operator.not_,
    ast.USub: operator.neg,
    ast.UAdd: operator.pos,
}

_SAFE_FUNCTIONS: dict[str, Any] = {
    "len": len,
    "min": min,
    "max": max,
    "abs": abs,
    "round": round,
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
    "sum": sum,
}


class Expression:
    """A compiled safe expression, evaluated against a variables dict.

    Compilation happens once per distinct source string: the validated AST
    is lowered to nested closures (no per-evaluation AST walk, no
    ``isinstance`` dispatch) and memoized, so policy engines that rebuild
    ``Expression`` objects for every trigger — and processes that evaluate
    the same condition on every iteration — pay the parse/validate cost a
    single time. The closures apply exactly the same operator table and
    resource guards (:func:`_safe_mult`, :func:`_safe_pow`) as the
    interpretive :func:`_evaluate` walker, which is kept as the reference
    implementation for the cache-correctness tests.
    """

    __slots__ = ("source", "_body", "_run")

    def __init__(self, source: str) -> None:
        self.source = source
        body, run = _compiled(source)
        self._body = body
        self._run = run

    def evaluate(self, variables: dict[str, Any]) -> Any:
        """Evaluate with ``variables`` as the namespace."""
        try:
            return self._run(variables)
        except ExpressionError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced as ExpressionError
            raise ExpressionError(f"failed to evaluate {self.source!r}: {exc}") from exc

    def holds(self, variables: dict[str, Any]) -> bool:
        """Evaluate as a condition (truthiness)."""
        return bool(self.evaluate(variables))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expression({self.source!r})"


@lru_cache(maxsize=1024)
def _compiled(source: str) -> tuple[ast.AST, "Callable[[dict[str, Any]], Any]"]:
    """Parse, validate and lower ``source``; memoized per source string.

    Returns the validated AST body (kept for the reference walker) and the
    closure. Rejections are *not* cached: an invalid source raises
    :class:`ExpressionError` from the parse/validate step on every call,
    exactly as the uncached path did.
    """
    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"invalid expression {source!r}: {exc}") from exc
    _validate(tree.body, source)
    return tree.body, _compile(tree.body, source)


def _compile(node: ast.AST, source: str) -> "Callable[[dict[str, Any]], Any]":
    """Lower one validated AST node to a closure over the variables dict.

    Mirrors :func:`_evaluate` case for case — same operator tables, same
    guards, same short-circuit and chained-comparison semantics — but does
    the dispatch once at compile time.
    """
    if isinstance(node, ast.Constant):
        value = node.value
        return lambda variables: value
    if isinstance(node, ast.Name):
        name = node.id
        if name in _SAFE_FUNCTIONS:
            fallback = _SAFE_FUNCTIONS[name]

            def run_name(variables: dict[str, Any]) -> Any:
                return variables[name] if name in variables else fallback

            return run_name

        def run_variable(variables: dict[str, Any]) -> Any:
            try:
                return variables[name]
            except KeyError:
                raise ExpressionError(f"unknown variable {name!r}") from None

        return run_variable
    if isinstance(node, ast.BinOp):
        binary = _BINARY_OPS[type(node.op)]
        left = _compile(node.left, source)
        right = _compile(node.right, source)
        return lambda variables: binary(left(variables), right(variables))
    if isinstance(node, ast.UnaryOp):
        unary = _UNARY_OPS[type(node.op)]
        operand = _compile(node.operand, source)
        return lambda variables: unary(operand(variables))
    if isinstance(node, ast.BoolOp):
        parts = [_compile(value, source) for value in node.values]
        if isinstance(node.op, ast.And):

            def run_and(variables: dict[str, Any]) -> Any:
                result: Any = True
                for part in parts:
                    result = part(variables)
                    if not result:
                        return result
                return result

            return run_and

        def run_or(variables: dict[str, Any]) -> Any:
            result: Any = False
            for part in parts:
                result = part(variables)
                if result:
                    return result
            return result

        return run_or
    if isinstance(node, ast.Compare):
        first = _compile(node.left, source)
        pairs = [
            (_COMPARE_OPS[type(op)], _compile(comparator, source))
            for op, comparator in zip(node.ops, node.comparators)
        ]
        if len(pairs) == 1:
            compare, second = pairs[0]
            return lambda variables: bool(compare(first(variables), second(variables)))

        def run_chain(variables: dict[str, Any]) -> bool:
            left_value = first(variables)
            for compare, comparator in pairs:
                right_value = comparator(variables)
                if not compare(left_value, right_value):
                    return False
                left_value = right_value
            return True

        return run_chain
    if isinstance(node, ast.IfExp):
        test = _compile(node.test, source)
        body = _compile(node.body, source)
        orelse = _compile(node.orelse, source)
        return lambda variables: body(variables) if test(variables) else orelse(variables)
    if isinstance(node, ast.List):
        elements = [_compile(element, source) for element in node.elts]
        return lambda variables: [element(variables) for element in elements]
    if isinstance(node, ast.Tuple):
        elements = [_compile(element, source) for element in node.elts]
        return lambda variables: tuple(element(variables) for element in elements)
    if isinstance(node, ast.Subscript):
        value = _compile(node.value, source)
        key = _compile(node.slice, source)
        return lambda variables: value(variables)[key(variables)]
    if isinstance(node, ast.Call):
        function = _SAFE_FUNCTIONS[node.func.id]  # type: ignore[union-attr]
        arguments = [_compile(argument, source) for argument in node.args]
        return lambda variables: function(*(argument(variables) for argument in arguments))
    raise ExpressionError(f"unexpected node {type(node).__name__}")


def _validate(node: ast.AST, source: str) -> None:
    if isinstance(node, ast.Constant):
        return
    if isinstance(node, ast.Name):
        return
    if isinstance(node, ast.BinOp) and type(node.op) in _BINARY_OPS:
        _validate(node.left, source)
        _validate(node.right, source)
        return
    if isinstance(node, ast.UnaryOp) and type(node.op) in _UNARY_OPS:
        _validate(node.operand, source)
        return
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            _validate(value, source)
        return
    if isinstance(node, ast.Compare):
        _validate(node.left, source)
        for op, comparator in zip(node.ops, node.comparators):
            if type(op) not in _COMPARE_OPS:
                raise ExpressionError(f"operator {type(op).__name__} not allowed in {source!r}")
            _validate(comparator, source)
        return
    if isinstance(node, ast.IfExp):
        _validate(node.test, source)
        _validate(node.body, source)
        _validate(node.orelse, source)
        return
    if isinstance(node, (ast.List, ast.Tuple)):
        for element in node.elts:
            _validate(element, source)
        return
    if isinstance(node, ast.Subscript):
        _validate(node.value, source)
        _validate(node.slice, source)
        return
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in _SAFE_FUNCTIONS:
            raise ExpressionError(f"function call not allowed in {source!r}")
        if node.keywords:
            raise ExpressionError(f"keyword arguments not allowed in {source!r}")
        for argument in node.args:
            _validate(argument, source)
        return
    raise ExpressionError(f"construct {type(node).__name__} not allowed in {source!r}")


def _evaluate(node: ast.AST, variables: dict[str, Any]) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in variables:
            return variables[node.id]
        if node.id in _SAFE_FUNCTIONS:
            return _SAFE_FUNCTIONS[node.id]
        raise ExpressionError(f"unknown variable {node.id!r}")
    if isinstance(node, ast.BinOp):
        return _BINARY_OPS[type(node.op)](
            _evaluate(node.left, variables), _evaluate(node.right, variables)
        )
    if isinstance(node, ast.UnaryOp):
        return _UNARY_OPS[type(node.op)](_evaluate(node.operand, variables))
    if isinstance(node, ast.BoolOp):
        if isinstance(node.op, ast.And):
            result: Any = True
            for value in node.values:
                result = _evaluate(value, variables)
                if not result:
                    return result
            return result
        result = False
        for value in node.values:
            result = _evaluate(value, variables)
            if result:
                return result
        return result
    if isinstance(node, ast.Compare):
        left = _evaluate(node.left, variables)
        for op, comparator in zip(node.ops, node.comparators):
            right = _evaluate(comparator, variables)
            if not _COMPARE_OPS[type(op)](left, right):
                return False
            left = right
        return True
    if isinstance(node, ast.IfExp):
        if _evaluate(node.test, variables):
            return _evaluate(node.body, variables)
        return _evaluate(node.orelse, variables)
    if isinstance(node, ast.List):
        return [_evaluate(element, variables) for element in node.elts]
    if isinstance(node, ast.Tuple):
        return tuple(_evaluate(element, variables) for element in node.elts)
    if isinstance(node, ast.Subscript):
        return _evaluate(node.value, variables)[_evaluate(node.slice, variables)]
    if isinstance(node, ast.Call):
        function = _SAFE_FUNCTIONS[node.func.id]  # type: ignore[union-attr]
        return function(*(_evaluate(argument, variables) for argument in node.args))
    raise ExpressionError(f"unexpected node {type(node).__name__}")
