"""Render BENCH_kernel.json as a markdown summary.

Usage::

    python benchmarks/render_bench.py [BENCH_kernel.json [BENCH_kernel.md]]

CI runs this after the kernel benchmarks and uploads the markdown next to
the JSON (and into the job's step summary). Missing sections are skipped
so the renderer keeps working as the benchmark suite evolves.
"""

from __future__ import annotations

import json
import pathlib
import sys

__all__ = ["render_markdown"]


def _row(cells: list[str]) -> str:
    return "| " + " | ".join(cells) + " |"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    lines = [_row(headers), _row(["---"] * len(headers))]
    lines.extend(_row(row) for row in rows)
    return lines


def render_markdown(results: dict) -> str:
    """The BENCH_kernel.json payload as a readable markdown report."""
    lines = ["# Kernel benchmark summary", ""]
    baseline = results.get("baseline_pr3", {})

    throughput = results.get("event_throughput")
    if throughput:
        pr3 = baseline.get("event_throughput_events_per_sec")
        rows = [
            [
                "raw kernel (timeout churn)",
                f"{throughput['events_per_sec']:,.0f} events/sec",
                f"{throughput['events_per_sec'] / pr3:.2f}x vs PR 3" if pr3 else "—",
            ]
        ]
        table1 = results.get("table1_end_to_end")
        if table1 and "events_per_sec" in table1:
            pr3_wall = baseline.get("table1_jobs1_seconds")
            rows.append(
                [
                    "Table 1 workload (jobs=1)",
                    f"{table1['events_per_sec']:,.0f} events/sec",
                    (
                        f"{pr3_wall / table1['jobs1_seconds']:.2f}x the PR 3 wall-clock"
                        if pr3_wall
                        else "—"
                    ),
                ]
            )
        lines += ["## Throughput", ""]
        lines += _table(["workload", "throughput", "vs baseline"], rows)
        lines.append("")

    micro_rows = []
    copy = results.get("envelope_copy")
    if copy:
        micro_rows.append(
            ["`SoapEnvelope.copy` vs `deep_copy`", f"{copy['speedup']:.1f}x"]
        )
    expr = results.get("expression_eval")
    if expr:
        micro_rows.append(
            ["compiled conditions vs AST walker", f"{expr['speedup']:.1f}x"]
        )
    if micro_rows:
        lines += ["## Hot-path fast paths", ""]
        lines += _table(["fast path", "speedup"], micro_rows)
        lines.append("")

    scaling = results.get("jobs_scaling")
    if scaling:
        cpus = scaling.get("cpu_count", "?")
        rows = [["1", f"{scaling['jobs1_seconds']:.2f}s", "1.00x"]]
        for jobs, entry in sorted(scaling["jobs"].items(), key=lambda kv: int(kv[0])):
            rows.append(
                [jobs, f"{entry['seconds']:.2f}s", f"{entry['speedup_vs_serial']:.2f}x"]
            )
        lines += [f"## Jobs scaling ({cpus} CPU(s))", ""]
        lines += _table(["jobs", "wall-clock", "speedup vs serial"], rows)
        lines.append("")
        table1 = results.get("table1_end_to_end", {})
        if isinstance(cpus, int) and cpus < 2:
            lines.append(
                "Single-core runner: the pool can only add overhead here, so "
                "speedup-vs-serial below 1.0 is expected; the >1.0 gate applies "
                "on multi-core machines."
            )
        elif table1.get("speedup"):
            lines.append(
                f"jobs=4 end to end: {table1['speedup']:.2f}x vs serial "
                f"(byte-identical: {table1.get('byte_identical', '?')})."
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str]) -> int:
    source = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path("BENCH_kernel.json")
    target = pathlib.Path(argv[2]) if len(argv) > 2 else source.with_suffix(".md")
    markdown = render_markdown(json.loads(source.read_text()))
    target.write_text(markdown)
    print(markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
