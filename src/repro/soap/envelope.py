"""SOAP envelope model.

An envelope is addressing headers + optional extension headers + a body that
holds either a payload element or a fault. Serialization produces real XML;
the serialized size feeds the transport's size-dependent latency model
(Figure 5 of the paper sweeps request sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.soap.addressing import AddressingHeaders
from repro.soap.faults import SoapFault
from repro.xmlutils import Element, QName, XmlError, parse_xml, serialize_xml
from repro.xmlutils.element import _escape_cdata

__all__ = ["SOAP_ENV_NS", "SoapEnvelope", "SoapHeader"]

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"

_ENVELOPE_NAME = QName(SOAP_ENV_NS, "Envelope")
_HEADER_NAME = QName(SOAP_ENV_NS, "Header")
_BODY_NAME = QName(SOAP_ENV_NS, "Body")
_MUST_UNDERSTAND_ATTR = QName(SOAP_ENV_NS, "mustUnderstand").clark()


def _borrowed(
    name: QName,
    children: list[Element],
    attributes: dict[str, str] | None = None,
    text: str | None = None,
) -> Element:
    """A throwaway element whose children are shared by reference.

    :meth:`Element.append` reparents, so building a wire tree with the public
    API would detach shared payload/header subtrees from their owners. This
    constructs the node directly instead; the result is a read-only view for
    the serializer (which never touches ``parent``) and must not be mutated.
    """
    node = Element.__new__(Element)
    node.name = name
    node.attributes = attributes if attributes is not None else {}
    node.text = text
    node.parent = None
    node._children = children
    return node


#: Serialized envelope sizes memoized per shared *body* payload tree:
#: body identity -> {addressing shape -> byte length before padding}. Two
#: envelopes that share a body object and agree on which addressing fields
#: are present and on each field's escaped byte length serialize to the same
#: number of bytes (addressing blocks are flat text elements, and namespace
#: prefix assignment depends only on the presence pattern and the body), so
#: the expensive serialize-and-measure runs once per shape. Entries die with
#: the body tree. Envelopes with extension headers or faults never consult
#: the memo. Like the size cache itself, the memo relies on the middleware's
#: copy-on-write discipline: shared body trees are replaced, never edited in
#: place.
_BODY_SIZE_MEMO: "WeakKeyDictionary[Element, dict[tuple, int]]" = WeakKeyDictionary()


def _escaped_size(text: str | None) -> int | None:
    # Inlined escaped_text_size: this runs six times per size-memo lookup.
    # Addressing values are almost always plain ASCII URIs/URNs, where the
    # escaped UTF-8 length is just the string length — skip the regex + encode.
    if text is None:
        return None
    if "&" not in text and "<" not in text and ">" not in text and text.isascii():
        return len(text)
    return len(_escape_cdata(text).encode("utf-8"))


@dataclass
class SoapHeader:
    """An extension header block (anything beyond addressing)."""

    element: Element
    must_understand: bool = False
    #: Transparent headers travel in the serialized XML but are excluded
    #: from :attr:`SoapEnvelope.size_bytes`. Observability metadata (the
    #: ``masc:TraceContext`` header) is stamped transparent so the
    #: transport's size-dependent latency model sees identical bytes
    #: whether tracing is on or off — simulated timings never depend on
    #: whether anyone is watching.
    transparent: bool = False


#: Fields whose reassignment changes the serialized form (and therefore
#: invalidates the cached :attr:`SoapEnvelope.size_bytes`).
_SIZE_FIELDS = frozenset({"addressing", "headers", "body", "fault", "padding"})


@dataclass
class SoapEnvelope:
    """One SOAP message: headers plus a body payload or fault."""

    addressing: AddressingHeaders = field(default_factory=AddressingHeaders)
    headers: list[SoapHeader] = field(default_factory=list)
    body: Element | None = None
    fault: SoapFault | None = None
    #: Extra padding bytes, used by workload generators to sweep request
    #: sizes without fabricating huge payload trees.
    padding: int = 0
    #: Cached serialized size; recomputed lazily after any field write.
    _size_cache: int | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.body is not None and self.fault is not None:
            raise ValueError("an envelope carries either a body payload or a fault, not both")

    def __setattr__(self, name: str, value) -> None:
        if name in _SIZE_FIELDS:
            object.__setattr__(self, "_size_cache", None)
        object.__setattr__(self, name, value)

    # -- classification --------------------------------------------------------

    @property
    def is_fault(self) -> bool:
        return self.fault is not None

    @property
    def action(self) -> str | None:
        return self.addressing.action

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def _fresh(
        cls,
        addressing: AddressingHeaders,
        body: Element | None,
        fault: SoapFault | None,
        padding: int,
    ) -> "SoapEnvelope":
        # The construction fast path: the dataclass __init__ funnels every
        # field write through the cache-invalidation __setattr__, which is
        # pointless for a brand-new envelope. Envelope construction happens
        # several times per simulated request, so the builders below skip it.
        envelope = cls.__new__(cls)
        state = envelope.__dict__
        state["addressing"] = addressing
        state["headers"] = []
        state["body"] = body
        state["fault"] = fault
        state["padding"] = padding
        state["_size_cache"] = None
        return envelope

    @classmethod
    def request(
        cls,
        to: str,
        action: str,
        body: Element,
        reply_to: str | None = None,
        padding: int = 0,
        process_instance_id: str | None = None,
    ) -> "SoapEnvelope":
        """A request message addressed to ``to`` with the given WSA action."""
        return cls._fresh(
            AddressingHeaders(
                to=to,
                action=action,
                reply_to=reply_to,
                process_instance_id=process_instance_id,
            ),
            body,
            None,
            padding,
        )

    def reply(self, body: Element, padding: int = 0) -> "SoapEnvelope":
        """A success reply correlated to this request."""
        return SoapEnvelope._fresh(self.addressing.for_reply(), body, None, padding)

    def reply_fault(self, fault: SoapFault) -> "SoapEnvelope":
        """A fault reply correlated to this request."""
        return SoapEnvelope._fresh(self.addressing.for_reply(), None, fault, 0)

    def copy(self) -> "SoapEnvelope":
        """A header-shallow working copy (the per-attempt retarget copy).

        The headers *list* is fresh — adding headers to the copy never leaks
        into the original — but the header blocks, body and fault are shared
        by reference. That is safe because every mutation site in the
        middleware replaces ``body``/``addressing`` wholesale instead of
        editing the shared element tree in place (pipeline modules that
        enrich a payload copy it first), and it removes a deep element-tree
        copy from every delivery attempt made by ``WsBus._send`` and
        ``RetryQueue._redeliver``. The serialized-size cache carries over;
        reassigning any content field on the copy invalidates it. Use
        :meth:`deep_copy` when the copy's trees must be private.
        """
        duplicate = SoapEnvelope.__new__(SoapEnvelope)
        state = duplicate.__dict__
        state.update(self.__dict__)
        state["headers"] = list(self.headers)
        return duplicate

    def deep_copy(self) -> "SoapEnvelope":
        """A fully private copy: header blocks and body trees are cloned.

        This is the pre-fast-path :meth:`copy` semantics, kept for callers
        that intend to mutate element trees in place and as the reference
        implementation for the equivalence tests and microbenchmarks.
        """
        return SoapEnvelope(
            addressing=self.addressing,
            headers=[
                SoapHeader(h.element.copy(), h.must_understand, h.transparent)
                for h in self.headers
            ],
            body=self.body.copy() if self.body is not None else None,
            fault=self.fault,
            padding=self.padding,
        )

    def header(self, name: QName | str) -> Element | None:
        """The first extension header with the given qualified name."""
        wanted = name if isinstance(name, QName) else QName.parse(name)
        for header in self.headers:
            if header.element.name == wanted:
                return header.element
        return None

    def add_header(
        self,
        element: Element,
        must_understand: bool = False,
        transparent: bool = False,
    ) -> None:
        self.headers.append(SoapHeader(element, must_understand, transparent))
        self._size_cache = None

    # -- XML mapping --------------------------------------------------------------

    def to_element(self) -> Element:
        envelope = Element(QName(SOAP_ENV_NS, "Envelope"))
        header = envelope.add(QName(SOAP_ENV_NS, "Header"))
        for block in self.addressing.to_elements():
            header.append(block)
        for extension in self.headers:
            child = extension.element.copy()
            if extension.must_understand:
                child.attributes[QName(SOAP_ENV_NS, "mustUnderstand").clark()] = "1"
            header.append(child)
        body = envelope.add(QName(SOAP_ENV_NS, "Body"))
        if self.fault is not None:
            body.append(self.fault.to_element())
        elif self.body is not None:
            body.append(self.body.copy())
        return envelope

    def _wire_element(self, visible_only: bool = False) -> Element:
        """The serialization view of this envelope.

        Structurally identical to :meth:`to_element` (and serializes to the
        same bytes) but the payload and extension-header subtrees are shared
        by reference instead of deep-copied: only the envelope scaffolding
        (Envelope/Header/Body, the flat addressing blocks, and a shallow
        wrapper per ``mustUnderstand`` header) is allocated per call. The
        returned tree is a read-only view — callers that hand the tree out
        for mutation must use :meth:`to_element`. With ``visible_only`` the
        view drops transparent headers — the size-accounting form.
        """
        header_children = self.addressing.to_elements()
        for extension in self.headers:
            if visible_only and extension.transparent:
                continue
            element = extension.element
            if extension.must_understand:
                element = _borrowed(
                    element.name,
                    element._children,
                    {**element.attributes, _MUST_UNDERSTAND_ATTR: "1"},
                    element.text,
                )
            header_children.append(element)
        body_children: list[Element] = []
        if self.fault is not None:
            body_children.append(self.fault.to_element())
        elif self.body is not None:
            body_children.append(self.body)
        return _borrowed(
            _ENVELOPE_NAME,
            [
                _borrowed(_HEADER_NAME, header_children),
                _borrowed(_BODY_NAME, body_children),
            ],
        )

    def to_xml(self) -> str:
        return serialize_xml(self._wire_element())

    @property
    def size_bytes(self) -> int:
        """Serialized size plus padding; drives transport latency.

        Serializing is by far the most expensive step of a simulated send,
        and the same envelope's size is read several times per exchange
        (latency sampling on each hop, invocation records), so the value is
        cached. Reassigning any content field — including the retargeting
        reassignment of ``addressing`` — invalidates the cache.

        On a cache miss, plain payload envelopes (no extension headers, no
        fault) first consult the per-body size memo: workload generators
        intern their constant payloads, so the thousands of envelopes that
        share one payload tree pay for serialization once per addressing
        shape instead of once per message.

        Transparent headers (observability metadata) never count: an
        envelope whose only extension headers are transparent sizes
        exactly like a headerless one, so the latency model — and every
        simulated timing derived from it — is untouched by tracing.
        """
        cached = self._size_cache
        if cached is not None:
            return cached
        body = self.body
        headers = self.headers
        if body is not None and (
            not headers or all(header.transparent for header in headers)
        ):
            shapes = _BODY_SIZE_MEMO.get(body)
            if shapes is None:
                shapes = _BODY_SIZE_MEMO.setdefault(body, {})
            addressing = self.addressing
            shape = (
                _escaped_size(addressing.to),
                _escaped_size(addressing.action),
                _escaped_size(addressing.message_id),
                _escaped_size(addressing.relates_to),
                _escaped_size(addressing.reply_to),
                _escaped_size(addressing.process_instance_id),
            )
            size = shapes.get(shape)
            if size is None:
                size = shapes[shape] = len(
                    serialize_xml(self._wire_element(visible_only=True)).encode("utf-8")
                )
            cached = size + self.padding
        else:
            cached = len(
                serialize_xml(self._wire_element(visible_only=True)).encode("utf-8")
            ) + self.padding
        self._size_cache = cached
        return cached

    @classmethod
    def from_element(cls, element: Element) -> "SoapEnvelope":
        if element.name != QName(SOAP_ENV_NS, "Envelope"):
            raise XmlError(f"not a SOAP envelope: {element.name}")
        header = element.find(QName(SOAP_ENV_NS, "Header"))
        body = element.find(QName(SOAP_ENV_NS, "Body"))
        if body is None:
            raise XmlError("SOAP envelope without a Body")
        addressing_blocks: list[Element] = []
        extensions: list[SoapHeader] = []
        mu_attr = QName(SOAP_ENV_NS, "mustUnderstand").clark()
        if header is not None:
            from repro.soap.addressing import MASC_NS, WSA_NS

            for child in header.children:
                if child.name.namespace == WSA_NS or (
                    child.name.namespace == MASC_NS and child.name.local == "ProcessInstanceID"
                ):
                    addressing_blocks.append(child)
                else:
                    extensions.append(
                        SoapHeader(
                            child.copy(),
                            child.attributes.get(mu_attr) == "1",
                            # Observability metadata re-enters transparent, so
                            # a parse/serialize round trip preserves sizing.
                            child.name.namespace == MASC_NS
                            and child.name.local == "TraceContext",
                        )
                    )
        fault: SoapFault | None = None
        payload: Element | None = None
        if body.children:
            first = body.children[0]
            if first.name == QName(SOAP_ENV_NS, "Fault"):
                fault = SoapFault.from_element(first)
            else:
                payload = first.copy()
        return cls(
            addressing=AddressingHeaders.from_elements(addressing_blocks),
            headers=extensions,
            body=payload,
            fault=fault,
        )

    @classmethod
    def from_xml(cls, text: str) -> "SoapEnvelope":
        return cls.from_element(parse_xml(text))
