"""Dynamic modification of running process instances.

Reproduces the WF-based mechanism the paper describes: the adaptation
service "asks the WF runtime engine for a description of the process to be
adapted and gets back a **transient copy** of the process' object
representation. For this copy, MASCAdaptationService performs the changes
specified in the policies... When MASCAdaptationService passes the modified
copy back to the WF runtime, the latter **applies the changes** using
built-in algorithms."

The :class:`ProcessModifier` hands out that transient copy, records each
edit as an operation, performs it immediately on the copy (so the caller
can inspect the result), and on :meth:`~ProcessModifier.apply` replays the
operations onto the live instance tree after validating them against the
instance's execution state:

- the instance must be suspended, or not yet have executed any activity
  (static customization happens between creation and the first activity);
- activities that are *currently executing* cannot be removed or replaced;
- an insertion anchored *before* an already-executed activity is rejected —
  it could only execute out of order.

Edits on composites that are mid-execution take effect because sequences
re-read their child lists on every scheduling step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.orchestration.activities import Activity, Flow, Sequence
from repro.orchestration.errors import ModificationError
from repro.orchestration.instance import InstanceStatus, ProcessInstance

__all__ = ["ModificationOperation", "ProcessModifier", "perform_operation"]


@dataclass(frozen=True)
class ModificationOperation:
    """One staged tree edit; the unit the persistence journal replays."""

    kind: str  # insert_before | insert_after | append_to | remove | replace
    anchor: str
    activity: Activity | None = None


# Backwards-compatible private alias (pre-journal name).
_Operation = ModificationOperation


def _find_with_parent(
    root: Activity, name: str
) -> tuple[Activity | None, Activity | None]:
    """The named activity and its parent composite, or (None, None)."""
    if root.name == name:
        return root, None
    for activity in root.iter_tree():
        for child in activity.children():
            if child.name == name:
                return child, activity
    return None, None


def _container_list(parent: Activity, context: str) -> list[Activity]:
    """The mutable child list of a Sequence/Flow parent."""
    if isinstance(parent, (Sequence, Flow)):
        return parent.activities
    raise ModificationError(
        f"{context}: parent {parent.name!r} is a {type(parent).__name__}; "
        "only Sequence and Flow children can be edited positionally"
    )


class ProcessModifier:
    """Stages and applies edits to one process instance."""

    def __init__(self, instance: ProcessInstance) -> None:
        self.instance = instance
        #: The transient copy of the process object representation.
        self.tree = instance.root.copy()
        self._operations: list[_Operation] = []
        self._variable_bindings: dict[str, Any] = {}
        self.applied = False

    # -- edit operations (performed on the transient copy immediately) ------------

    def insert_before(self, anchor_name: str, activity: Activity) -> None:
        """Insert ``activity`` immediately before the named anchor."""
        self._stage(_Operation("insert_before", anchor_name, activity))

    def insert_after(self, anchor_name: str, activity: Activity) -> None:
        """Insert ``activity`` immediately after the named anchor."""
        self._stage(_Operation("insert_after", anchor_name, activity))

    def append_to(self, container_name: str, activity: Activity) -> None:
        """Append ``activity`` at the end of a Sequence/Flow container."""
        self._stage(_Operation("append_to", container_name, activity))

    def remove(self, activity_name: str) -> None:
        """Remove the named activity from its parent container."""
        self._stage(_Operation("remove", activity_name))

    def replace(self, activity_name: str, activity: Activity) -> None:
        """Replace the named activity with another one."""
        self._stage(_Operation("replace", activity_name, activity))

    def bind_variables(self, bindings: dict[str, Any]) -> None:
        """Stage variable assignments (base↔variation parameter passing)."""
        self._variable_bindings.update(bindings)

    def _stage(self, operation: _Operation) -> None:
        if self.applied:
            raise ModificationError("modifier already applied; create a new one")
        self._perform(self.tree, operation)
        self._operations.append(operation)

    # -- applying to the live instance ------------------------------------------------

    def apply(self) -> None:
        """Validate and replay all staged operations onto the live tree."""
        if self.applied:
            raise ModificationError("modifier already applied")
        instance = self.instance
        tracer = instance.engine.tracer
        span = None
        if tracer.enabled:
            span = tracer.start_span(
                "process.modification",
                correlation_id=instance.id,
                parent=instance.span,
                attributes={
                    "operations": len(self._operations),
                    "dynamic": bool(instance.executed_activities),
                },
            )
            for operation in self._operations:
                span.add_event("operation", kind=operation.kind, anchor=operation.anchor)
        try:
            if instance.status.is_final:
                raise ModificationError(
                    f"instance {instance.id} already {instance.status.value}"
                )
            started = bool(instance.executed_activities)
            if started and instance.status != InstanceStatus.SUSPENDED:
                raise ModificationError(
                    "dynamic modification requires the instance to be suspended "
                    "(MASC suspends, edits, then resumes)"
                )
            for operation in self._operations:
                self._validate_against_execution(operation)
            for operation in self._operations:
                self._perform(instance.root, operation)
        except BaseException as exc:
            if span is not None:
                span.end(status=f"error:{type(exc).__name__}")
            raise
        instance.variables.update(self._variable_bindings)
        self.applied = True
        instance.engine.metrics.counter("engine.modifications.applied").inc()
        # Persistence journaling: runtime services (notably the checkpoint
        # service) record the applied operations so crash recovery can replay
        # them on top of the last dehydrated tree.
        instance.engine.notify(
            "instance_modified", instance, tuple(self._operations), dict(self._variable_bindings)
        )
        if span is not None:
            span.end(status="applied")

    def _validate_against_execution(self, operation: _Operation) -> None:
        instance = self.instance
        if operation.kind in ("remove", "replace"):
            if operation.anchor in instance.active_activities:
                raise ModificationError(
                    f"cannot {operation.kind} activity {operation.anchor!r} "
                    "while it is executing"
                )
            target = instance.find_activity(operation.anchor)
            if target is not None:
                active_descendants = {
                    child.name for child in target.iter_tree()
                } & instance.active_activities
                if active_descendants:
                    raise ModificationError(
                        f"cannot {operation.kind} {operation.anchor!r}: descendants "
                        f"{sorted(active_descendants)} are executing"
                    )
        if operation.kind == "insert_before" and (
            operation.anchor in instance.executed_activities
        ):
            raise ModificationError(
                f"cannot insert before {operation.anchor!r}: it already executed "
                "(the insertion could only run out of order)"
            )
        if (
            operation.kind == "replace"
            and operation.anchor in instance.executed_activities
            and operation.activity is not None
            and operation.activity.name != operation.anchor
        ):
            # A replacement under a *new* name is not in the enclosing
            # sequence's completed set, so the scheduler would run it now —
            # after activities that followed the executed anchor. A same-name
            # replacement is safe: it inherits the anchor's completed status.
            raise ModificationError(
                f"cannot replace executed activity {operation.anchor!r} with "
                f"{operation.activity.name!r}: the renamed replacement would "
                "re-execute out of order"
            )

    # -- the actual tree surgery ---------------------------------------------------------

    def _perform(self, root: Activity, operation: ModificationOperation) -> None:
        perform_operation(root, operation)


def perform_operation(root: Activity, operation: ModificationOperation) -> None:
    """Apply one modification operation to an activity tree.

    Shared by :class:`ProcessModifier` (transient copy + live tree) and the
    persistence layer, which replays journaled operations onto a rehydrated
    tree during crash recovery.
    """
    if operation.activity is not None:
        clashes = {a.name for a in operation.activity.iter_tree()} & {
            a.name for a in root.iter_tree()
        }
        if operation.kind != "replace" and clashes:
            raise ModificationError(
                f"inserted activity names already exist in the process: {sorted(clashes)}"
            )
    if operation.kind == "append_to":
        container = None
        for activity in root.iter_tree():
            if activity.name == operation.anchor:
                container = activity
                break
        if container is None:
            raise ModificationError(f"no container named {operation.anchor!r}")
        assert operation.activity is not None
        _container_list(container, "append_to").append(operation.activity.copy())
        return

    target, parent = _find_with_parent(root, operation.anchor)
    if target is None:
        raise ModificationError(f"no activity named {operation.anchor!r}")
    if parent is None:
        raise ModificationError(f"cannot edit the process root {operation.anchor!r}")
    siblings = _container_list(parent, operation.kind) if operation.kind != "replace" else None

    if operation.kind == "insert_before":
        assert operation.activity is not None and siblings is not None
        siblings.insert(siblings.index(target), operation.activity.copy())
    elif operation.kind == "insert_after":
        assert operation.activity is not None and siblings is not None
        siblings.insert(siblings.index(target) + 1, operation.activity.copy())
    elif operation.kind == "remove":
        assert siblings is not None
        siblings.remove(target)
    elif operation.kind == "replace":
        assert operation.activity is not None
        replacement = operation.activity.copy()
        clashes = ({a.name for a in replacement.iter_tree()} - {target.name}) & (
            {a.name for a in root.iter_tree()} - {a.name for a in target.iter_tree()}
        )
        if clashes:
            raise ModificationError(
                f"replacement activity names already exist: {sorted(clashes)}"
            )
        _replace_child(parent, target, replacement)
    else:  # pragma: no cover - exhaustive
        raise ModificationError(f"unknown operation {operation.kind!r}")


def _replace_child(parent: Activity, target: Activity, replacement: Activity) -> None:
    if isinstance(parent, (Sequence, Flow)):
        index = parent.activities.index(target)
        parent.activities[index] = replacement
        return
    # Structured parents: swap the matching slot.
    for attribute in ("then", "orelse", "body", "compensation"):
        if getattr(parent, attribute, None) is target:
            setattr(parent, attribute, replacement)
            return
    fault_handlers = getattr(parent, "fault_handlers", None)
    if isinstance(fault_handlers, dict):
        for code, handler in fault_handlers.items():
            if handler is target:
                fault_handlers[code] = replacement
                return
    raise ModificationError(
        f"cannot locate {target.name!r} inside parent {parent.name!r} for replacement"
    )
