"""Unit tests for the fault injection harness."""

import pytest

from conftest import ECHO_CONTRACT, run_process
from repro.faultinjection import (
    ApplicationFaultInjector,
    AvailabilityFaultInjector,
    DowntimeLog,
    EndpointFaultProfile,
    QoSDegradationInjector,
)
from repro.services import Invoker
from repro.simulation import RandomSource
from repro.soap import FaultCode, SoapFaultError


class TestDowntimeLog:
    def test_availability_with_no_downtime(self):
        log = DowntimeLog("http://a")
        assert log.availability(100.0) == 1.0

    def test_single_window(self):
        log = DowntimeLog("http://a")
        log.mark_down(10.0)
        log.mark_up(20.0)
        assert log.total_downtime(100.0) == pytest.approx(10.0)
        assert log.availability(100.0) == pytest.approx(0.9)
        assert log.failure_count == 1

    def test_open_window_counts_to_horizon(self):
        log = DowntimeLog("http://a")
        log.mark_down(90.0)
        assert log.total_downtime(100.0) == pytest.approx(10.0)

    def test_close_seals_open_window(self):
        log = DowntimeLog("http://a")
        log.mark_down(50.0)
        log.close(60.0)
        assert log.windows == [(50.0, 60.0)]

    def test_double_mark_down_idempotent(self):
        log = DowntimeLog("http://a")
        log.mark_down(5.0)
        log.mark_down(7.0)
        log.mark_up(10.0)
        assert log.windows == [(5.0, 10.0)]

    def test_zero_horizon(self):
        assert DowntimeLog("http://a").availability(0.0) == 1.0


class TestEndpointFaultProfile:
    def test_nominal_availability(self):
        profile = EndpointFaultProfile("http://a", 95.0, 5.0)
        assert profile.nominal_availability == pytest.approx(0.95)


class TestAvailabilityInjector:
    def test_cycles_toggle_endpoint(self, env, network):
        endpoint = network.register("http://a", lambda req: iter(()))
        injector = AvailabilityFaultInjector(env, network, RandomSource(3))
        log = injector.inject(EndpointFaultProfile("http://a", 10.0, 5.0))
        env.run(until=200.0)
        injector.finalize()
        assert log.failure_count > 0
        assert 0.0 < log.availability(200.0) < 1.0

    def test_observed_availability_tracks_nominal(self, env, network):
        network.register("http://a", lambda req: iter(()))
        injector = AvailabilityFaultInjector(env, network, RandomSource(5))
        log = injector.inject(EndpointFaultProfile("http://a", 90.0, 10.0))
        env.run(until=50_000.0)
        injector.finalize()
        assert log.availability(50_000.0) == pytest.approx(0.9, abs=0.05)

    def test_unknown_endpoint_rejected(self, env, network):
        injector = AvailabilityFaultInjector(env, network)
        with pytest.raises(ValueError):
            injector.inject(EndpointFaultProfile("http://ghost", 10, 1))

    def test_inject_all(self, env, network):
        network.register("http://a", lambda req: iter(()))
        network.register("http://b", lambda req: iter(()))
        injector = AvailabilityFaultInjector(env, network)
        logs = injector.inject_all(
            [
                EndpointFaultProfile("http://a", 10, 1),
                EndpointFaultProfile("http://b", 10, 1),
            ]
        )
        assert set(logs) == {"http://a", "http://b"}


class TestQoSDegradationInjector:
    def test_delay_applied_and_removed(self, env, network):
        endpoint = network.register("http://a", lambda req: iter(()))
        injector = QoSDegradationInjector(env, network, RandomSource(7))
        injector.inject("http://a", mean_time_between_episodes=5.0, mean_episode_duration=2.0, added_delay_seconds=3.0)
        env.run(until=100.0)
        episodes = injector.episodes["http://a"]
        assert episodes, "expected at least one degradation episode"
        # After the horizon the endpoint should not accumulate permanent delay.
        assert endpoint.added_delay_seconds in (0.0, 3.0)

    def test_unknown_endpoint_rejected(self, env, network):
        injector = QoSDegradationInjector(env, network)
        with pytest.raises(ValueError):
            injector.inject("http://ghost", 1, 1, 1)


class TestApplicationFaultInjector:
    def test_injects_service_failures(self, env, network, container, echo_service):
        injector = ApplicationFaultInjector(env, network, RandomSource(1))
        injector.inject("http://test/echo", fault_probability=1.0)
        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            with pytest.raises(SoapFaultError) as excinfo:
                yield from invoker.invoke("http://test/echo", "echo", payload)
            return excinfo.value.fault.code

        assert run_process(env, client()) is FaultCode.SERVICE_FAILURE
        assert injector.injected_counts["http://test/echo"] == 1

    def test_zero_probability_never_injects(self, env, network, container, echo_service):
        injector = ApplicationFaultInjector(env, network, RandomSource(1))
        injector.inject("http://test/echo", fault_probability=0.0)
        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            response = yield from invoker.invoke("http://test/echo", "echo", payload)
            return response.body.child_text("text")

        assert run_process(env, client()) == "x@echo1"

    def test_rate_roughly_honored(self, env, network, container, echo_service):
        injector = ApplicationFaultInjector(env, network, RandomSource(2))
        injector.inject("http://test/echo", fault_probability=0.3)
        invoker = Invoker(env, network)
        failures = 0

        def client():
            nonlocal failures
            for _ in range(300):
                payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
                try:
                    yield from invoker.invoke("http://test/echo", "echo", payload)
                except SoapFaultError:
                    failures += 1

        run_process(env, client())
        assert 60 <= failures <= 120  # ~90 expected

    def test_invalid_probability_rejected(self, env, network, container, echo_service):
        injector = ApplicationFaultInjector(env, network)
        with pytest.raises(ValueError):
            injector.inject("http://test/echo", fault_probability=1.5)
