"""Discrete-event simulated network.

The :class:`Network` owns a table of addressable endpoints. Sending a message
is a simulated process: connect (may be refused), transmit the request
(size-dependent latency), let the endpoint's handler run (its own simulated
process), transmit the response. An optional timeout races the whole round
trip, mirroring the paper's "Web services Invoker component can use timers
to raise timeout faults".
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

from repro.observability.tracing import NULL_TRACER
from repro.observability.trace_context import trace_context_of
from repro.simulation import Environment, Event, RandomSource, Timeout
from repro.simulation.core import _PENDING
from repro.soap import SoapEnvelope

__all__ = [
    "ConnectionRefused",
    "LatencyModel",
    "Network",
    "NetworkEndpoint",
    "TransportError",
    "TransportTimeout",
]


class TransportError(Exception):
    """Base for transport-level failures."""

    def __init__(self, message: str, address: str | None = None) -> None:
        super().__init__(message)
        self.address = address


class ConnectionRefused(TransportError):
    """The target endpoint is unknown or currently unavailable."""


class TransportTimeout(TransportError):
    """No response within the caller's timeout interval."""

    def __init__(self, message: str, address: str | None = None, timeout: float = 0.0) -> None:
        super().__init__(message, address)
        self.timeout = timeout


@dataclass(frozen=True)
class LatencyModel:
    """One-way message latency: ``base + per_kb * size + jitter``.

    ``jitter_fraction`` scales a uniform ±jitter term, seeded per network so
    runs are reproducible. Defaults approximate a fast LAN.
    """

    base_seconds: float = 0.002
    per_kb_seconds: float = 0.0004
    jitter_fraction: float = 0.10

    def sample(self, size_bytes: int, rng) -> float:
        nominal = self.base_seconds + self.per_kb_seconds * (size_bytes / 1024.0)
        if self.jitter_fraction <= 0:
            return nominal
        jitter = nominal * self.jitter_fraction
        return max(0.0, nominal + rng.uniform(-jitter, jitter))


#: An endpoint handler: a callable producing a simulated process (generator)
#: that yields simulation events and returns the response envelope.
Handler = Callable[[SoapEnvelope], Generator]


class NetworkEndpoint:
    """A registered, addressable message handler.

    ``available`` is toggled by the fault injector to open and close
    unavailability windows; while False, connects are refused. An extra
    ``added_delay_seconds`` models injected QoS degradation at the endpoint
    (the paper's test code "picked some service instances and changed their
    QoS values (e.g., introduced delays)").
    """

    def __init__(self, address: str, handler: Handler) -> None:
        self.address = address
        self.handler = handler
        self.available = True
        self.added_delay_seconds = 0.0
        #: When a transparent proxy interposes at this address, the address
        #: of the relocated backend that fault injection should actually
        #: affect (see :meth:`Network.fault_injection_target`). The proxy
        #: itself does not fail when its backend is faulted.
        self.fault_target: str | None = None
        #: Optional per-endpoint latency model overriding the network's
        #: default for traffic to/from this endpoint. Used to model
        #: co-location (e.g. a client-side wsBus reached over loopback).
        self.latency: LatencyModel | None = None
        #: Counters for experiment reporting.
        self.requests_handled = 0
        self.requests_refused = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.available else "down"
        return f"<NetworkEndpoint {self.address} {state}>"


class Network:
    """The simulated wire connecting clients, wsBus and services."""

    def __init__(
        self,
        env: Environment,
        random_source: RandomSource | None = None,
        latency: LatencyModel | None = None,
    ) -> None:
        self.env = env
        self.latency = latency or LatencyModel()
        self._rng = (random_source or RandomSource()).stream("network.latency")
        self._endpoints: dict[str, NetworkEndpoint] = {}
        #: Set by a tracing-enabled wsBus: exchanges whose envelope carries
        #: a ``masc:TraceContext`` header get ``net.exchange`` /
        #: ``service.execute`` spans. Client legs (no header yet) and
        #: untraced runs take the exact pre-tracing path.
        self.tracer = NULL_TRACER

    # -- endpoint management -----------------------------------------------------

    def register(self, address: str, handler: Handler) -> NetworkEndpoint:
        """Attach a handler at ``address`` (replacing any previous one)."""
        endpoint = NetworkEndpoint(address, handler)
        self._endpoints[address] = endpoint
        return endpoint

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def endpoint(self, address: str) -> NetworkEndpoint | None:
        return self._endpoints.get(address)

    def relocate(self, address: str, new_address: str) -> NetworkEndpoint:
        """Move the endpoint at ``address`` to ``new_address``.

        The *same* :class:`NetworkEndpoint` object is re-keyed, preserving
        its availability/delay state, counters and — critically — its
        identity: fault injectors that already hold the object keep
        toggling the service they targeted even after a proxy takes over
        its old address.
        """
        endpoint = self._endpoints.pop(address, None)
        if endpoint is None:
            raise ValueError(f"no endpoint registered at {address!r}")
        endpoint.address = new_address
        self._endpoints[new_address] = endpoint
        return endpoint

    def fault_injection_target(self, address: str) -> NetworkEndpoint | None:
        """The endpoint fault injection at ``address`` should affect.

        Follows :attr:`NetworkEndpoint.fault_target` links, so injecting at
        a transparently proxied address degrades the relocated backend (the
        origin "shares its fate") rather than knocking out the proxy that
        is supposed to mediate the failure.
        """
        endpoint = self._endpoints.get(address)
        seen: set[str] = set()
        while (
            endpoint is not None
            and endpoint.fault_target is not None
            and endpoint.address not in seen
        ):
            seen.add(endpoint.address)
            linked = self._endpoints.get(endpoint.fault_target)
            if linked is None:
                break
            endpoint = linked
        return endpoint

    @property
    def addresses(self) -> list[str]:
        return sorted(self._endpoints)

    # -- message exchange -----------------------------------------------------------

    def send(self, envelope: SoapEnvelope, timeout: float | None = None) -> Generator:
        """Simulated round trip; returns the response envelope.

        Raises :class:`ConnectionRefused` if the target is unknown or down,
        :class:`TransportTimeout` if ``timeout`` elapses first, and
        propagates whatever the handler process raises.
        """
        address = envelope.addressing.to or ""
        if timeout is None:
            return self._exchange(address, envelope)
        return self._exchange_with_timeout(address, envelope, timeout)

    def _exchange(self, address: str, envelope: SoapEnvelope) -> Generator:
        span = None
        if self.tracer.enabled:
            context = trace_context_of(envelope)
            if context is not None:
                span = self.tracer.start_span(
                    "net.exchange", parent=context, attributes={"address": address}
                )
        try:
            response = yield from self._exchange_inner(address, envelope, span)
        except BaseException as error:
            if span is not None:
                span.end(status=f"error:{type(error).__name__}")
            raise
        if span is not None:
            span.end()
        return response

    def _exchange_inner(self, address: str, envelope: SoapEnvelope, span) -> Generator:
        endpoint = self._endpoints.get(address)
        latency = self.latency
        if endpoint is not None and endpoint.latency is not None:
            latency = endpoint.latency
        # Even a refused connect costs one base latency (TCP SYN and reset).
        yield self.env.timeout(latency.sample(0, self._rng))
        if endpoint is None:
            raise ConnectionRefused(f"no endpoint at {address!r}", address)
        if not endpoint.available:
            endpoint.requests_refused += 1
            raise ConnectionRefused(f"endpoint {address!r} is unavailable", address)
        yield self.env.timeout(latency.sample(envelope.size_bytes, self._rng))
        if endpoint.added_delay_seconds > 0:
            yield self.env.timeout(endpoint.added_delay_seconds)
        endpoint.requests_handled += 1
        # The handler generator runs inline in this exchange: it is scoped to
        # exactly this request, so wrapping it in its own process only added
        # allocation and event traffic per message.
        if span is None:
            response = yield from endpoint.handler(envelope)
        else:
            # The handler leg is the service actually executing (or a
            # downstream VEP mediating); its span separates service time
            # from the transit time that stays in ``net.exchange``.
            execute = self.tracer.start_span(
                "service.execute", parent=span, attributes={"address": address}
            )
            try:
                response = yield from endpoint.handler(envelope)
            except BaseException as error:
                execute.end(status=f"error:{type(error).__name__}")
                raise
            execute.end()
        if not isinstance(response, SoapEnvelope):
            raise TransportError(f"handler at {address!r} returned {response!r}", address)
        yield self.env.timeout(latency.sample(response.size_bytes, self._rng))
        return response

    def _exchange_with_timeout(
        self, address: str, envelope: SoapEnvelope, timeout: float
    ) -> Generator:
        # A hand-rolled two-way race instead of AnyOf: every timed request
        # runs through here, and the generic condition machinery (events
        # list, satisfied scan, result-dict collection) costs more than this
        # single callback. Ordering is identical — the race event triggers
        # from the winner's callback exactly as AnyOf's _observe would.
        env = self.env
        exchange = env.process(self._exchange(address, envelope), name=("rtt", address))
        timer = Timeout(env, timeout)
        race = Event(env)

        def _first(event: Event) -> None:
            if race._state != _PENDING:
                # The race is decided; a late-failing loser (an abandoned
                # exchange after a timeout) must not surface as an unhandled
                # simulation error.
                if not event._ok:
                    event.defused = True
                return
            if event._ok:
                race.succeed(event)
            else:
                event.defused = True
                race.fail(event._value)

        exchange.callbacks.append(_first)
        timer.callbacks.append(_first)
        winner = yield race
        if winner is exchange:
            return exchange._value
        raise TransportTimeout(
            f"no response from {address!r} within {timeout}s", address, timeout
        )


