"""Safe declarative expressions over process variables.

Policies and process conditions are *declarative documents*, so their
conditions and assignments are strings, not Python callables. This module
compiles a restricted expression language (a whitelisted subset of Python's
own expression grammar) against a variable namespace:

- literals, names (process variables), attribute-free subscripts
- arithmetic, comparisons (including chained), boolean operators, unary ops
- membership tests (``in`` / ``not in``)
- the builtins ``len``, ``min``, ``max``, ``abs``, ``round``, ``str``,
  ``int``, ``float``, ``bool``, ``sum``

Anything else — attribute access, calls to arbitrary names, lambdas,
comprehensions — is rejected at compile time, so a policy document can never
execute arbitrary code.
"""

from __future__ import annotations

import ast
import operator
from typing import Any

__all__ = ["Expression", "ExpressionError"]


class ExpressionError(Exception):
    """The expression is outside the safe subset or failed to evaluate."""


#: Resource-exhaustion guards: a policy document is untrusted input, so an
#: expression must not be able to hang evaluation (``2**2**30``) or allocate
#: gigabytes (``[0] * 10**9``). Numeric work is bounded; sequence repetition
#: is rejected outright.
_MAX_POW_EXPONENT = 128
_MAX_INT_BITS = 4096
_SEQUENCE_TYPES = (str, bytes, bytearray, list, tuple)


def _check_int_magnitude(value: Any, context: str) -> None:
    if isinstance(value, int) and not isinstance(value, bool) and value.bit_length() > _MAX_INT_BITS:
        raise ExpressionError(
            f"{context}: integer operand exceeds {_MAX_INT_BITS} bits"
        )


def _safe_mult(left: Any, right: Any) -> Any:
    if isinstance(left, _SEQUENCE_TYPES) or isinstance(right, _SEQUENCE_TYPES):
        raise ExpressionError(
            "sequence repetition is not allowed in safe expressions "
            "(it can allocate unbounded memory)"
        )
    _check_int_magnitude(left, "multiplication")
    _check_int_magnitude(right, "multiplication")
    return operator.mul(left, right)


def _safe_pow(base: Any, exponent: Any) -> Any:
    if isinstance(exponent, int) and not isinstance(exponent, bool) and abs(exponent) > _MAX_POW_EXPONENT:
        raise ExpressionError(
            f"exponent {exponent} exceeds the safe-expression bound of {_MAX_POW_EXPONENT}"
        )
    _check_int_magnitude(base, "exponentiation")
    return operator.pow(base, exponent)


_BINARY_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: _safe_mult,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: _safe_pow,
}

_COMPARE_OPS = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}

_UNARY_OPS = {
    ast.Not: operator.not_,
    ast.USub: operator.neg,
    ast.UAdd: operator.pos,
}

_SAFE_FUNCTIONS: dict[str, Any] = {
    "len": len,
    "min": min,
    "max": max,
    "abs": abs,
    "round": round,
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
    "sum": sum,
}


class Expression:
    """A compiled safe expression, evaluated against a variables dict."""

    def __init__(self, source: str) -> None:
        self.source = source
        try:
            tree = ast.parse(source, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"invalid expression {source!r}: {exc}") from exc
        _validate(tree.body, source)
        self._body = tree.body

    def evaluate(self, variables: dict[str, Any]) -> Any:
        """Evaluate with ``variables`` as the namespace."""
        try:
            return _evaluate(self._body, variables)
        except ExpressionError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced as ExpressionError
            raise ExpressionError(f"failed to evaluate {self.source!r}: {exc}") from exc

    def holds(self, variables: dict[str, Any]) -> bool:
        """Evaluate as a condition (truthiness)."""
        return bool(self.evaluate(variables))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expression({self.source!r})"


def _validate(node: ast.AST, source: str) -> None:
    if isinstance(node, ast.Constant):
        return
    if isinstance(node, ast.Name):
        return
    if isinstance(node, ast.BinOp) and type(node.op) in _BINARY_OPS:
        _validate(node.left, source)
        _validate(node.right, source)
        return
    if isinstance(node, ast.UnaryOp) and type(node.op) in _UNARY_OPS:
        _validate(node.operand, source)
        return
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            _validate(value, source)
        return
    if isinstance(node, ast.Compare):
        _validate(node.left, source)
        for op, comparator in zip(node.ops, node.comparators):
            if type(op) not in _COMPARE_OPS:
                raise ExpressionError(f"operator {type(op).__name__} not allowed in {source!r}")
            _validate(comparator, source)
        return
    if isinstance(node, ast.IfExp):
        _validate(node.test, source)
        _validate(node.body, source)
        _validate(node.orelse, source)
        return
    if isinstance(node, (ast.List, ast.Tuple)):
        for element in node.elts:
            _validate(element, source)
        return
    if isinstance(node, ast.Subscript):
        _validate(node.value, source)
        _validate(node.slice, source)
        return
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in _SAFE_FUNCTIONS:
            raise ExpressionError(f"function call not allowed in {source!r}")
        if node.keywords:
            raise ExpressionError(f"keyword arguments not allowed in {source!r}")
        for argument in node.args:
            _validate(argument, source)
        return
    raise ExpressionError(f"construct {type(node).__name__} not allowed in {source!r}")


def _evaluate(node: ast.AST, variables: dict[str, Any]) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in variables:
            return variables[node.id]
        if node.id in _SAFE_FUNCTIONS:
            return _SAFE_FUNCTIONS[node.id]
        raise ExpressionError(f"unknown variable {node.id!r}")
    if isinstance(node, ast.BinOp):
        return _BINARY_OPS[type(node.op)](
            _evaluate(node.left, variables), _evaluate(node.right, variables)
        )
    if isinstance(node, ast.UnaryOp):
        return _UNARY_OPS[type(node.op)](_evaluate(node.operand, variables))
    if isinstance(node, ast.BoolOp):
        if isinstance(node.op, ast.And):
            result: Any = True
            for value in node.values:
                result = _evaluate(value, variables)
                if not result:
                    return result
            return result
        result = False
        for value in node.values:
            result = _evaluate(value, variables)
            if result:
                return result
        return result
    if isinstance(node, ast.Compare):
        left = _evaluate(node.left, variables)
        for op, comparator in zip(node.ops, node.comparators):
            right = _evaluate(comparator, variables)
            if not _COMPARE_OPS[type(op)](left, right):
                return False
            left = right
        return True
    if isinstance(node, ast.IfExp):
        if _evaluate(node.test, variables):
            return _evaluate(node.body, variables)
        return _evaluate(node.orelse, variables)
    if isinstance(node, ast.List):
        return [_evaluate(element, variables) for element in node.elts]
    if isinstance(node, ast.Tuple):
        return tuple(_evaluate(element, variables) for element in node.elts)
    if isinstance(node, ast.Subscript):
        return _evaluate(node.value, variables)[_evaluate(node.slice, variables)]
    if isinstance(node, ast.Call):
        function = _SAFE_FUNCTIONS[node.func.id]  # type: ignore[union-attr]
        return function(*(_evaluate(argument, variables) for argument in node.args))
    raise ExpressionError(f"unexpected node {type(node).__name__}")
