"""wsBus Adaptation Manager.

"Decides and coordinates the execution of appropriate adaptation action(s)
to restore the system to an acceptable state using adaptation policies
configured at the VEP... When multiple adaptation policies are specified
per fault type, policy priorities are used to determine the order of
execution of the adaptation actions. For example, a policy could stipulate
that the VEP should first attempt n retries before failover to a known
backup service."

Messaging-layer actions (retry / substitute / concurrent invocation /
skip) are enacted inline in the message path. Process-layer actions in the
same policy (suspend, extend timeout — the cross-layer coordination) are
dispatched to the process enforcement point *before* the messaging-layer
recovery begins, exactly as the paper orders them ("before retrying
invocation of a faulty service, the adaptation policy might stipulate that
MASCAdaptationService should first suspend the calling process instance...
or increase its timeout interval").
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field, replace

from repro.core.events import MASCEvent
from repro.observability import NULL_METRICS, NULL_TRACER, correlation_id_for
from repro.observability.trace_context import (
    context_of_span,
    format_traceparent,
    parse_traceparent,
)
from repro.policy import AdaptationPolicy, PolicyRepository
from repro.policy.actions import (
    ConcurrentInvokeAction,
    ResilienceAction,
    ResumeProcessAction,
    RetryAction,
    SelectionStrategyAction,
    SkipAction,
    SubstituteAction,
)
from repro.soap import FaultCode, SoapEnvelope, SoapFault, SoapFaultError
from repro.wsbus.retry import DeadLetterEntry, DeadLetterQueue, RetryQueue
from repro.wsbus.selection import SelectionService

__all__ = ["AdaptationManager", "EventAdaptation", "RecoveryOutcome"]


@dataclass
class RecoveryOutcome:
    """Audit record of one recovery attempt."""

    time: float
    vep_name: str
    operation: str
    original_target: str
    fault_code: str
    recovered: bool
    actions_taken: list[str] = field(default_factory=list)
    final_target: str | None = None
    policies_consulted: list[str] = field(default_factory=list)


@dataclass
class EventAdaptation:
    """Audit record of one event-driven (non-message-path) adaptation."""

    time: float
    event: str
    endpoint: str | None
    policy: str
    actions_taken: list[str] = field(default_factory=list)


class AdaptationManager:
    """Enacts corrective adaptation policies at the messaging layer."""

    def __init__(
        self,
        env,
        repository: PolicyRepository,
        selection: SelectionService,
        retry_queue: RetryQueue,
        dead_letters: DeadLetterQueue,
        sender,
        process_enforcement=None,
        tracer=None,
        metrics=None,
        resilience=None,
    ) -> None:
        self.env = env
        self.repository = repository
        self.selection = selection
        self.retry_queue = retry_queue
        self.dead_letters = dead_letters
        self.sender = sender
        #: Optional process-layer enforcement point (cross-layer actions).
        self.process_enforcement = process_enforcement
        #: Optional resilience service: fault-triggered policies may carry
        #: resilience configuration actions as corrective side effects.
        self.resilience = resilience
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.outcomes: list[RecoveryOutcome] = []
        #: VEPs eligible for event-driven adaptation (selection-strategy
        #: switches). The bus shares its live ``veps`` dict after init.
        self.veps: dict = {}
        self.event_adaptations: list[EventAdaptation] = []
        #: Federation hooks: when this manager belongs to a *follower* bus
        #: of a fleet, ``forward_to`` names the leader's manager and
        #: :meth:`handle_event` delegates there instead of enacting
        #: locally — exactly one bus enacts fleet-wide reactions.
        self.forward_to: AdaptationManager | None = None
        #: Display label of the owning bus (set by the fleet) stamped on
        #: adaptation spans so traces show which bus enacted.
        self.owner_label: str | None = None
        self.forwarded_events = 0

    def recover(
        self,
        vep,
        envelope: SoapEnvelope,
        operation: str,
        fault: SoapFault,
        failed_target: str,
        parent_span=None,
    ) -> Generator:
        """Attempt policy-driven recovery of a failed invocation.

        Returns the recovered response envelope, or raises the final
        :class:`~repro.soap.SoapFaultError` after dead-lettering.
        """
        span = None
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "wsbus.adaptation.recover",
                correlation_id=correlation_id_for(envelope),
                parent=parent_span,
                attributes={
                    "vep": vep.name,
                    "operation": operation,
                    "fault": fault.code.value,
                    "failed_target": failed_target,
                },
            )
        self.metrics.counter("wsbus.adaptation.recoveries").inc()
        outcome = RecoveryOutcome(
            time=self.env.now,
            vep_name=vep.name,
            operation=operation,
            original_target=failed_target,
            fault_code=fault.code.value,
            recovered=False,
        )
        self.outcomes.append(outcome)
        subject = {
            "service_type": vep.contract.service_type,
            "endpoint": failed_target,
            "operation": operation,
        }
        policies = self.repository.adaptation_policies_for(
            f"fault.{fault.code.value}", **subject
        )
        context = {
            "fault_code": fault.code.value,
            "fault_reason": fault.reason,
            "operation": operation,
            "target": failed_target,
        }
        last_error: SoapFaultError = fault.to_exception()
        excluded: set[str] = {failed_target}
        for policy in policies:
            outcome.policies_consulted.append(policy.name)
            if not policy.condition_holds(context):
                continue
            subject_key = f"endpoint:{failed_target}"
            if not self.repository.check_state(policy, subject_key):
                continue
            try:
                response = yield from self._enact_policy(
                    policy,
                    vep,
                    envelope,
                    operation,
                    fault,
                    failed_target,
                    excluded,
                    outcome,
                    parent_span=span,
                )
            except SoapFaultError as error:
                last_error = error
                continue
            if response is not None:
                outcome.recovered = True
                self.repository.transition(policy, subject_key)
                self.repository.record_business_value(self.env.now, policy, subject_key)
                self.metrics.counter("wsbus.adaptation.recovered").inc()
                if span is not None:
                    span.set_attribute("recovered_by", policy.name)
                    span.end(status="recovered")
                return response
        # All policies exhausted.
        self.metrics.counter("wsbus.adaptation.exhausted").inc()
        if span is not None:
            span.end(status="exhausted")
        self.dead_letters.add(
            DeadLetterEntry(
                time=self.env.now,
                envelope=envelope,
                operation=operation,
                target=failed_target,
                attempts_made=0,
                reason=f"recovery exhausted: {last_error.fault}",
            )
        )
        raise last_error

    # -- event-driven adaptation ------------------------------------------------------

    def handle_event(self, event: MASCEvent) -> list[EventAdaptation]:
        """Enact adaptation policies triggered by a MASC event.

        This is the non-message-path half of the Adaptation Manager: SLO
        violations (``sloBurnRateExceeded``, ``errorBudgetExhausted``) and
        other detector events arrive here, outside any in-flight request,
        and the matching policies reconfigure the standing machinery —
        switch a VEP's selection strategy, tighten a circuit breaker —
        rather than repair one message. The span tree links back to the
        detection via ``event.trace_parent``, closing the observability
        loop: exemplar → violation event → adaptation.
        """
        if self.forward_to is not None and self.forward_to is not self:
            # Federation follower: the leader's manager enacts fleet-wide
            # reactions; this bus only relays the detection. The event
            # leaves this bus, so its live span reference is reduced to
            # wire form — the same traceparent round trip a serialized
            # MASC event takes — and the leader's adaptation span still
            # joins the originating request's trace.
            self.forwarded_events += 1
            if self.metrics.enabled:
                self.metrics.counter("federation.events.forwarded").inc()
            if event.trace_parent is not None:
                wire = parse_traceparent(
                    format_traceparent(context_of_span(event.trace_parent))
                )
                event = replace(event, trace_parent=wire)
            return self.forward_to.handle_event(event)
        policies = self.repository.adaptation_policies_for(event.name, **event.subject())
        enacted: list[EventAdaptation] = []
        for policy in policies:
            if not policy.condition_holds(event.context):
                continue
            subject_key = event.subject_key()
            if not self.repository.check_state(policy, subject_key):
                continue
            span = None
            if self.tracer.enabled:
                attributes = {
                    "event": event.name,
                    "policy": policy.name,
                    "endpoint": event.endpoint,
                }
                if self.owner_label is not None:
                    attributes["bus"] = self.owner_label
                span = self.tracer.start_span(
                    "wsbus.adaptation.event",
                    parent=event.trace_parent,
                    attributes=attributes,
                )
            record = EventAdaptation(
                time=self.env.now,
                event=event.name,
                endpoint=event.endpoint,
                policy=policy.name,
            )
            for action in policy.actions:
                if span is not None:
                    span.add_event("action", layer=action.layer, action=action.describe())
                if isinstance(action, SelectionStrategyAction):
                    matched, switched = self._switch_selection_strategy(action, policy)
                    if switched:
                        record.actions_taken.append(
                            f"selection strategy -> {action.strategy} on "
                            + ", ".join(switched)
                        )
                    elif matched:
                        record.actions_taken.append(
                            f"no-change: already {action.strategy}"
                        )
                    else:
                        record.actions_taken.append(
                            f"skipped(no-matching-vep): {action.describe()}"
                        )
                elif isinstance(action, ResilienceAction):
                    if self.resilience is not None and self.resilience.apply_action(
                        action, scope=policy.scope
                    ):
                        record.actions_taken.append(f"configured: {action.describe()}")
                    else:
                        record.actions_taken.append(
                            f"skipped(no-resilience): {action.describe()}"
                        )
                elif action.layer == "process":
                    if self.process_enforcement is None:
                        record.actions_taken.append(
                            f"skipped(no-process-layer): {action.describe()}"
                        )
                    else:
                        ok = self.process_enforcement.enact(action, policy, event)
                        record.actions_taken.append(
                            ("cross-layer: " if ok else "cross-layer(no-effect): ")
                            + action.describe()
                        )
                else:
                    record.actions_taken.append(f"unsupported-here: {action.describe()}")
            self.repository.transition(policy, subject_key)
            self.repository.record_business_value(self.env.now, policy, subject_key)
            self.metrics.counter("wsbus.adaptation.event_driven").inc()
            self.event_adaptations.append(record)
            enacted.append(record)
            if span is not None:
                span.end(status="enacted")
        return enacted

    def _switch_selection_strategy(
        self, action: SelectionStrategyAction, policy: AdaptationPolicy
    ) -> tuple[int, list[str]]:
        """Switch the strategy of every scope-matched VEP.

        Returns ``(matched_count, switched_names)`` — a matched VEP that
        already runs the requested strategy counts but is not switched.
        """
        matched = 0
        switched: list[str] = []
        for name in sorted(self.veps):
            vep = self.veps[name]
            if not policy.scope.matches(
                service_type=vep.contract.service_type, endpoint=vep.address
            ):
                continue
            matched += 1
            if vep.selection_strategy != action.strategy:
                vep.selection_strategy = action.strategy
                switched.append(name)
        return matched, switched

    # -- policy enactment -------------------------------------------------------------

    def _enact_policy(
        self,
        policy: AdaptationPolicy,
        vep,
        envelope: SoapEnvelope,
        operation: str,
        fault: SoapFault,
        failed_target: str,
        excluded: set[str],
        outcome: RecoveryOutcome,
        parent_span=None,
    ) -> Generator:
        policy_span = None
        if self.tracer.enabled:
            # The policy-adaptation span: one per WS-Policy4MASC rule that
            # gets a chance to repair this message.
            policy_span = self.tracer.start_span(
                "wsbus.policy.enact",
                correlation_id=correlation_id_for(envelope),
                parent=parent_span,
                attributes={"policy": policy.name, "layer": "messaging"},
            )
        response: SoapEnvelope | None = None
        last_error: SoapFaultError | None = None
        deferred_process_actions = []
        for action in policy.actions:
            if policy_span is not None:
                policy_span.add_event("action", layer=action.layer, action=action.describe())
            if isinstance(action, ResilienceAction):
                # Reconfigure the standing protection machinery; not a
                # repair of this message, so recovery continues below.
                if self.resilience is not None and self.resilience.apply_action(
                    action, scope=policy.scope
                ):
                    outcome.actions_taken.append(f"configured: {action.describe()}")
                else:
                    outcome.actions_taken.append(
                        f"skipped(no-resilience): {action.describe()}"
                    )
                continue
            if action.layer == "process":
                if isinstance(action, ResumeProcessAction):
                    # Resume runs after messaging-layer recovery completes.
                    deferred_process_actions.append(action)
                else:
                    self._enact_process_action(
                        action, policy, envelope, operation, fault, outcome,
                        parent_span=policy_span,
                    )
                continue
            if response is not None:
                continue  # already recovered; remaining messaging actions moot
            try:
                if isinstance(action, RetryAction):
                    response = yield from self._retry(
                        envelope, operation, failed_target, action, fault, outcome,
                        parent_span=policy_span,
                    )
                elif isinstance(action, SubstituteAction):
                    response = yield from self._substitute(
                        vep, envelope, operation, action, excluded, outcome
                    )
                elif isinstance(action, ConcurrentInvokeAction):
                    response = yield from self._concurrent(
                        vep, envelope, operation, action, excluded, outcome
                    )
                elif isinstance(action, SkipAction):
                    response = self._skip(vep, envelope, operation, action, outcome)
            except SoapFaultError as error:
                last_error = error
                continue
        for action in deferred_process_actions:
            self._enact_process_action(
                action, policy, envelope, operation, fault, outcome, parent_span=policy_span
            )
        if response is not None:
            if policy_span is not None:
                policy_span.end(status="recovered")
            return response
        if last_error is not None:
            if policy_span is not None:
                policy_span.end(status="failed")
            raise last_error
        if policy_span is not None:
            policy_span.end(status="no-effect")
        return None

    def _enact_process_action(
        self,
        action,
        policy,
        envelope: SoapEnvelope,
        operation: str,
        fault: SoapFault,
        outcome,
        parent_span=None,
    ) -> None:
        if self.process_enforcement is None:
            outcome.actions_taken.append(f"skipped(no-process-layer): {action.describe()}")
            return
        event = MASCEvent(
            name=f"fault.{fault.code.value}",
            time=self.env.now,
            operation=operation,
            process_instance_id=envelope.addressing.process_instance_id,
            envelope=envelope,
            fault=fault,
            context={"operation": operation},
            trace_parent=parent_span,
        )
        ok = self.process_enforcement.enact(action, policy, event)
        outcome.actions_taken.append(
            ("cross-layer: " if ok else "cross-layer(no-effect): ") + action.describe()
        )

    def _retry(
        self,
        envelope: SoapEnvelope,
        operation: str,
        target: str,
        action: RetryAction,
        fault: SoapFault,
        outcome: RecoveryOutcome,
        parent_span=None,
    ) -> Generator:
        outcome.actions_taken.append(action.describe())
        # The manager dead-letters itself only once *all* recovery actions
        # are exhausted, so the queue must not park the message early.
        completion = self.retry_queue.enqueue(
            envelope,
            operation,
            target,
            action,
            first_fault=fault,
            dead_letter_on_exhaust=False,
            parent_span=parent_span,
        )
        response = yield completion
        outcome.final_target = target
        outcome.actions_taken.append(f"retry succeeded against {target}")
        return response

    def _substitute(
        self,
        vep,
        envelope: SoapEnvelope,
        operation: str,
        action: SubstituteAction,
        excluded: set[str],
        outcome: RecoveryOutcome,
    ) -> Generator:
        outcome.actions_taken.append(action.describe())
        last_error: SoapFaultError | None = None
        # The VEP is a recovery block: keep trying equivalent services (in
        # the strategy's preference order) until one answers or none remain.
        while True:
            if action.strategy == "backup":
                target = (
                    action.backup_address if action.backup_address not in excluded else None
                )
            elif action.strategy == "registry":
                target = None
                if vep.registry is not None:
                    record = vep.registry.find_one(
                        vep.contract.service_type,
                        predicate=lambda r: r.address not in excluded,
                    )
                    target = record.address if record else None
            else:
                strategy = (
                    "round_robin" if action.strategy == "round_robin" else "best_response_time"
                )
                target = self.selection.select(
                    vep.name, strategy, vep.members, envelope=envelope, exclude=excluded
                )
            if target is None:
                if last_error is not None:
                    raise last_error
                raise SoapFaultError(
                    SoapFault(
                        FaultCode.SERVICE_UNAVAILABLE,
                        "no substitute service available",
                        source="wsbus-adaptation",
                    )
                )
            excluded.add(target)
            retargeted = envelope.copy()
            retargeted.addressing = envelope.addressing.retargeted(target)
            try:
                response = yield self.env.process(
                    self.sender(retargeted, operation, target), name=f"substitute:{target}"
                )
            except SoapFaultError as error:
                last_error = error
                outcome.actions_taken.append(f"substitute {target} also failed")
                continue
            outcome.final_target = target
            outcome.actions_taken.append(f"substituted to {target}")
            return response

    def _concurrent(
        self,
        vep,
        envelope: SoapEnvelope,
        operation: str,
        action: ConcurrentInvokeAction,
        excluded: set[str],
        outcome: RecoveryOutcome,
    ) -> Generator:
        outcome.actions_taken.append(action.describe())
        targets = self.selection.broadcast_targets(
            vep.members, action.max_targets, excluded, vep_name=vep.name
        )
        if not targets:
            raise SoapFaultError(
                SoapFault(
                    FaultCode.SERVICE_UNAVAILABLE,
                    "no targets left for concurrent invocation",
                    source="wsbus-adaptation",
                )
            )
        response, winner = yield from broadcast_first_response(
            self.env, self.sender, envelope, operation, targets
        )
        outcome.final_target = winner
        outcome.actions_taken.append(f"first response from {winner}")
        return response

    def _skip(
        self, vep, envelope: SoapEnvelope, operation: str, action: SkipAction, outcome
    ) -> SoapEnvelope:
        outcome.actions_taken.append(action.describe())
        outcome.final_target = "skipped"
        return vep.synthetic_reply(envelope, operation, action.reason)


def broadcast_first_response(
    env, sender, envelope: SoapEnvelope, operation: str, targets: list[str]
) -> Generator:
    """Invoke all targets concurrently; first success wins.

    "The concurrent invocation of equivalent services is accomplished by
    making a copy of the message and modifying its route, then invoking
    multiple target services using concurrent invocation threads"; "all
    pending invocations are then aborted and their responses are ignored".

    Returns ``(response, winning_target)``; raises the last failure if all
    targets fail.
    """
    attempts = {}
    for target in targets:
        copy = envelope.copy()
        copy.addressing = envelope.addressing.retargeted(target)
        attempts[env.process(sender(copy, operation, target), name=f"bcast:{target}")] = target

    pending = dict(attempts)
    last_error: SoapFaultError | None = None
    while pending:
        # any_of fails fast if *any* constituent fails, so wait on each
        # round and discard failures until a success or exhaustion.
        try:
            result = yield env.any_of(list(pending))
        except SoapFaultError as error:
            last_error = error
            for process in list(pending):
                if process.processed:
                    process.defused = True
                    del pending[process]
            continue
        winner_process = next(iter(result))
        response = result[winner_process]
        winner = pending.pop(winner_process)
        for process in pending:
            if process.is_alive:
                process.callbacks.append(_defuse)
            elif not process.processed:
                process.defused = True
        return response, winner
    assert last_error is not None
    raise last_error


def _defuse(event) -> None:
    event.defused = True
