"""Tests for the federated multi-bus fleet: consistent-hash placement,
membership suspicion, gossip QoS convergence, lease-based leader election
with crash failover, and policy-driven fleet configuration."""

import pytest

from conftest import ECHO_CONTRACT, EchoService, run_process
from repro.casestudies.scm import federation_policy_document
from repro.core.events import MASCEvent
from repro.faultinjection import BusCrashInjector
from repro.federation import (
    BusFleet,
    FederationService,
    FleetMembership,
    HashRing,
    LeaderElection,
    QoSGossip,
)
from repro.observability import InMemoryExporter, MetricsRegistry, Tracer
from repro.policy import (
    AdaptationPolicy,
    FederationAction,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
    SelectionStrategyAction,
    ShardRoutingAction,
)
from repro.services import InvocationOutcome, InvocationRecord, Invoker
from repro.wsbus import QoSMeasurementService


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    KEYS = [f"vep-{i}" for i in range(40)]

    def test_routing_is_deterministic(self):
        a = HashRing(["bus-0", "bus-1", "bus-2"])
        b = HashRing(["bus-2", "bus-0", "bus-1"])  # insertion order irrelevant
        assert [a.route(key) for key in self.KEYS] == [b.route(key) for key in self.KEYS]

    def test_removal_only_moves_the_departed_nodes_keys(self):
        ring = HashRing(["bus-0", "bus-1", "bus-2", "bus-3"])
        before = {key: ring.route(key) for key in self.KEYS}
        ring.remove("bus-1")
        for key, owner in before.items():
            if owner != "bus-1":
                assert ring.route(key) == owner
            else:
                assert ring.route(key) != "bus-1"

    def test_addition_reclaims_some_keys(self):
        ring = HashRing(["bus-0", "bus-1"])
        before = {key: ring.route(key) for key in self.KEYS}
        ring.add("bus-2")
        moved = [key for key in self.KEYS if ring.route(key) != before[key]]
        assert moved  # the new node takes ownership of a share...
        assert all(ring.route(key) == "bus-2" for key in moved)  # ...and only it

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().route("anything")

    def test_invalid_virtual_nodes(self):
        with pytest.raises(ValueError):
            HashRing(virtual_nodes=0)


# ---------------------------------------------------------------------------
# Policy-driven configuration
# ---------------------------------------------------------------------------


class TestFederationService:
    def test_inert_without_policies(self):
        service = FederationService(PolicyRepository())
        assert not service.active
        assert service.config() == FederationAction()
        assert service.pinned_bus("retailers-p0") is None

    def test_document_round_trips_and_configures(self):
        repository = PolicyRepository()
        repository.load(
            federation_policy_document(
                heartbeat_interval_seconds=0.25,
                suspicion_multiplier=4.0,
                gossip_interval_seconds=1.5,
                gossip_fanout=2,
                lease_seconds=2.0,
                virtual_nodes=16,
                pin_vep_pattern="orders-*",
                pin_bus="bus-1",
            )
        )
        service = FederationService(repository)
        assert service.active
        config = service.config()
        assert config.heartbeat_interval_seconds == 0.25
        assert config.suspicion_multiplier == 4.0
        assert config.gossip_interval_seconds == 1.5
        assert config.gossip_fanout == 2
        assert config.lease_seconds == 2.0
        assert config.virtual_nodes == 16
        assert service.pinned_bus("orders-7") == "bus-1"
        assert service.pinned_bus("retailers-p0") is None

    def test_fleet_honors_policy_config_and_pins(self, env, network):
        repository = PolicyRepository()
        repository.load(
            federation_policy_document(
                heartbeat_interval_seconds=0.25,
                lease_seconds=2.0,
                virtual_nodes=16,
                pin_vep_pattern="echo-pinned",
                pin_bus="bus-2",
            )
        )
        fleet = BusFleet(env, network, shards=3, repository=repository)
        assert fleet.membership.heartbeat_interval == 0.25
        assert fleet.election.lease_seconds == 2.0
        assert fleet.ring.virtual_nodes == 16
        vep = fleet.create_vep("echo-pinned", ECHO_CONTRACT, members=[])
        assert fleet.veps["echo-pinned"].owner == "bus-2"
        assert vep is fleet.buses["bus-2"].vep("echo-pinned")


# ---------------------------------------------------------------------------
# Membership
# ---------------------------------------------------------------------------


class TestMembership:
    def test_silent_member_is_suspected(self, env):
        membership = FleetMembership(env, heartbeat_interval=1.0, suspicion_multiplier=3.0)
        events = []
        membership.add_listener(lambda kind, name: events.append((env.now, kind, name)))
        membership.join("a")
        membership.join("b")

        def beat():
            while True:
                membership.heartbeat("a")
                yield env.timeout(1.0)

        env.process(beat())
        membership.start()
        env.run(until=10.0)
        assert membership.alive() == ["a"]
        assert membership.members["b"].suspected_at is not None
        assert ("suspect", "b") in [(kind, name) for _, kind, name in events]

    def test_heartbeat_revives_a_suspected_member(self, env):
        membership = FleetMembership(env, heartbeat_interval=1.0, suspicion_multiplier=3.0)
        membership.join("a")
        env.run(until=5.0)
        assert membership.check_now() == ["a"]
        assert not membership.is_alive("a")
        membership.heartbeat("a")
        assert membership.is_alive("a")
        assert membership.members["a"].history[-1] == (5.0, "join")

    def test_graceful_leave_is_not_a_suspicion(self, env):
        membership = FleetMembership(env, heartbeat_interval=1.0)
        membership.join("a")
        membership.leave("a")
        assert membership.alive() == []
        assert membership.members["a"].left_at == 0.0
        assert membership.members["a"].suspected_at is None


# ---------------------------------------------------------------------------
# Gossip anti-entropy
# ---------------------------------------------------------------------------


def _record(target, caller, started, duration, ok=True):
    return InvocationRecord(
        caller=caller,
        target=target,
        operation="echo",
        started_at=started,
        finished_at=started + duration,
        outcome=InvocationOutcome.SUCCESS if ok else InvocationOutcome.FAULT,
    )


class TestGossip:
    def test_round_converges_both_directions(self, env):
        gossip = QoSGossip(env, interval_seconds=1.0)
        qos_a, qos_b = QoSMeasurementService(), QoSMeasurementService()
        gossip.register("a", qos_a)
        gossip.register("b", qos_b)
        qos_a.observe(_record("http://svc/x", "vep@a", 1.0, 0.2))
        qos_b.observe(_record("http://svc/y", "vep@b", 2.0, 0.4))
        moved = gossip.run_round(["a", "b"])
        assert moved == 2
        # Both sides now hold both observations.
        for qos in (qos_a, qos_b):
            assert qos.lookup("response_time", 0, "mean", "http://svc/x") == pytest.approx(0.2)
            assert qos.lookup("response_time", 0, "mean", "http://svc/y") == pytest.approx(0.4)
        # A second round with nothing new moves nothing (no double counting).
        assert gossip.run_round(["a", "b"]) == 0
        assert qos_b.endpoint("http://svc/x").total_invocations == 1

    def test_gossiped_evidence_drives_best_of_selection(self, env):
        """A bus that never mediated an endpoint still selects with the
        fleet's evidence for it after gossip."""
        from repro.simulation import RandomSource
        from repro.wsbus import SelectionService

        gossip = QoSGossip(env, interval_seconds=1.0)
        qos_a, qos_b = QoSMeasurementService(), QoSMeasurementService()
        gossip.register("a", qos_a)
        gossip.register("b", qos_b)
        # Bus A observed: slow member "x", fast member "y".
        qos_a.observe(_record("http://svc/x", "vep@a", 1.0, 0.9))
        qos_a.observe(_record("http://svc/y", "vep@a", 1.0, 0.1))
        selection_b = SelectionService(qos_b, RandomSource(4))
        members = ["http://svc/x", "http://svc/y"]
        # Without gossip bus B has no evidence: falls back to the first member.
        assert selection_b.select("vep", "best_response_time", members) == "http://svc/x"
        gossip.run_round(["a", "b"])
        assert selection_b.select("vep", "best_response_time", members) == "http://svc/y"

    def test_single_member_round_is_a_no_op(self, env):
        gossip = QoSGossip(env, interval_seconds=1.0)
        gossip.register("a", QoSMeasurementService())
        assert gossip.run_round(["a"]) == 0
        assert gossip.rounds == 0


# ---------------------------------------------------------------------------
# Leader election
# ---------------------------------------------------------------------------


class TestLeaderElection:
    def _world(self, env, lease_seconds=3.0):
        membership = FleetMembership(env, heartbeat_interval=0.5)
        election = LeaderElection(env, membership, lease_seconds=lease_seconds)
        return membership, election

    def test_lowest_named_alive_bus_wins(self, env):
        membership, election = self._world(env)
        membership.join("bus-1")
        membership.join("bus-0")
        election.evaluate()
        assert election.leader == "bus-0"
        assert election.epoch == 1

    def test_no_usurping_before_lease_expiry(self, env):
        membership, election = self._world(env, lease_seconds=3.0)
        membership.join("bus-0")
        membership.join("bus-1")
        election.evaluate()
        assert election.leader == "bus-0"
        expires_at = election.lease.expires_at
        # bus-0 goes silent; suspicion alone must not transfer leadership.
        membership.members["bus-0"].alive = False
        env.run(until=expires_at - 0.5)
        election.evaluate()
        assert election.leader == "bus-0"  # lease still held
        env.run(until=expires_at + 0.1)
        election.evaluate()
        assert election.leader == "bus-1"
        assert election.epoch == 2

    def test_renewal_keeps_the_leader(self, env):
        membership, election = self._world(env, lease_seconds=2.0)
        membership.join("bus-0")
        election.start()
        env.run(until=10.0)  # many lease periods; bus-0 stays alive
        assert election.leader == "bus-0"
        assert election.epoch == 1
        assert election.lease.expires_at > 10.0


# ---------------------------------------------------------------------------
# The fleet end to end
# ---------------------------------------------------------------------------


def deploy_members(env, container, names=("a", "b", "c")):
    addresses = []
    for name in names:
        address = f"http://svc/{name}"
        container.deploy(EchoService(env, f"echo-{name}", address))
        addresses.append(address)
    return addresses


def call(env, network, address, text="hi", timeout=30.0):
    invoker = Invoker(env, network, caller="client")

    def client():
        payload = ECHO_CONTRACT.operation("echo").input.build(text=text)
        response = yield from invoker.invoke(address, "echo", payload, timeout=timeout)
        return response.body.child_text("text")

    return run_process(env, client())


class TestBusFleet:
    def test_veps_spread_over_shards_and_serve(self, env, network, container):
        members = deploy_members(env, container)
        fleet = BusFleet(env, network, shards=4, member_timeout=5.0)
        for index in range(8):
            fleet.create_vep(f"echo-{index}", ECHO_CONTRACT, members=members)
        owners = {spec.owner for spec in fleet.veps.values()}
        assert len(owners) > 1  # placement actually shards
        for index in range(8):
            assert call(env, network, f"http://fleet/echo-{index}").endswith("@echo-a")

    def test_exactly_one_leader_enacts_fleet_events(self, env, network, container):
        members = deploy_members(env, container)
        repository = PolicyRepository()
        document = PolicyDocument("fleet-reaction")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="switch-on-alarm",
                triggers=("fleet.alarm",),
                scope=PolicyScope(service_type="Echo"),
                actions=(SelectionStrategyAction(strategy="best_reliability"),),
            )
        )
        repository.load(document)
        tracer = Tracer()
        tracer.rebind_clock(env)
        memory = tracer.add_exporter(InMemoryExporter())
        fleet = BusFleet(
            env, network, shards=3, repository=repository,
            member_timeout=5.0, tracer=tracer,
        )
        fleet.create_vep("echo", ECHO_CONTRACT, members=members)
        assert fleet.leader == "bus-0"
        # The same detection arrives at every bus (leader and followers).
        event = MASCEvent(name="fleet.alarm", time=env.now, service_type="Echo")
        for name in sorted(fleet.buses):
            fleet.buses[name].adaptation.handle_event(event)
        spans = [s for s in memory.spans if s.name == "wsbus.adaptation.event"]
        assert len(spans) == 3
        assert {span.attributes["bus"] for span in spans} == {"bus-0"}
        followers = [fleet.buses[n].adaptation for n in ("bus-1", "bus-2")]
        assert [manager.forwarded_events for manager in followers] == [1, 1]
        assert fleet.buses["bus-0"].adaptation.forwarded_events == 0

    def test_crash_transfers_leadership_and_vep_placement(self, env, network, container):
        members = deploy_members(env, container)
        tracer = Tracer()
        tracer.rebind_clock(env)
        memory = tracer.add_exporter(InMemoryExporter())
        fleet = BusFleet(env, network, shards=3, member_timeout=5.0, tracer=tracer)
        for index in range(6):
            fleet.create_vep(f"echo-{index}", ECHO_CONTRACT, members=members)
        assert fleet.leader == "bus-0"
        owned_by_leader = [
            name for name, spec in fleet.veps.items() if spec.owner == "bus-0"
        ]
        assert owned_by_leader  # the scenario must exercise VEP failover too

        injector = BusCrashInjector(env, fleet, "bus-0", at_time=5.0)
        env.run(until=injector.crashed_event)
        assert injector.crash_time == 5.0
        # The lease has not expired yet: no usurping during the outage window.
        assert fleet.leader == "bus-0"
        env.run(until=20.0)
        assert fleet.leader == "bus-1"
        assert fleet.election.epoch == 2
        # Every VEP moved off the dead bus and still answers at its address.
        for name, spec in fleet.veps.items():
            assert spec.owner != "bus-0"
            assert call(env, network, spec.address).endswith("@echo-a")
        # Followers now forward to the new leader's manager.
        assert fleet.buses["bus-2"].adaptation.forward_to is fleet.buses["bus-1"].adaptation
        assert fleet.buses["bus-1"].adaptation.forward_to is None
        names = [span.name for span in memory.spans]
        assert "federation.bus.crash" in names
        assert "federation.membership.suspect" in names
        assert "federation.leader.transfer" in names
        assert "federation.vep.failover" in names
        transfer = next(s for s in memory.spans if s.name == "federation.leader.transfer")
        assert transfer.attributes == {"leader": "bus-1", "previous": "bus-0", "epoch": "2"}

    def test_graceful_removal_hands_off_immediately(self, env, network, container):
        members = deploy_members(env, container)
        fleet = BusFleet(env, network, shards=2, member_timeout=5.0)
        fleet.create_vep("echo", ECHO_CONTRACT, members=members)
        assert fleet.leader == "bus-0"
        fleet.remove_bus("bus-0")
        # No lease wait on a graceful leave: the lease is released at once.
        assert fleet.leader == "bus-1"
        assert fleet.veps["echo"].owner == "bus-1"
        assert call(env, network, "http://fleet/echo").endswith("@echo-a")

    def test_bus_join_rebalances_and_keeps_serving(self, env, network, container):
        members = deploy_members(env, container)
        fleet = BusFleet(env, network, shards=2, member_timeout=5.0)
        for index in range(8):
            fleet.create_vep(f"echo-{index}", ECHO_CONTRACT, members=members)
        before = {name: spec.owner for name, spec in fleet.veps.items()}
        fleet.add_bus("bus-2")
        after = {name: spec.owner for name, spec in fleet.veps.items()}
        moved = [name for name in before if after[name] != before[name]]
        assert moved  # the new bus takes a share...
        assert all(after[name] == "bus-2" for name in moved)  # ...and only it
        for name in fleet.veps:
            assert call(env, network, fleet.veps[name].address).endswith("@echo-a")

    def test_vep_member_churn_during_operation(self, env, network, container):
        members = deploy_members(env, container, names=("a", "b"))
        fleet = BusFleet(env, network, shards=2, member_timeout=5.0)
        fleet.create_vep(
            "echo", ECHO_CONTRACT, members=members, selection_strategy="round_robin"
        )
        # Round-robin over the two initial members.
        assert call(env, network, "http://fleet/echo") == "hi@echo-a"
        assert call(env, network, "http://fleet/echo") == "hi@echo-b"
        # A third member joins at runtime and enters the rotation.
        container.deploy(EchoService(env, "echo-c", "http://svc/c"))
        fleet.add_vep_member("echo", "http://svc/c")
        picks = {call(env, network, "http://fleet/echo") for _ in range(3)}
        assert picks == {"hi@echo-a", "hi@echo-b", "hi@echo-c"}
        # A member leaves; the rotation shrinks without skipping survivors.
        fleet.remove_vep_member("echo", "http://svc/a")
        picks = [call(env, network, "http://fleet/echo") for _ in range(4)]
        assert "hi@echo-a" not in picks
        assert set(picks) == {"hi@echo-b", "hi@echo-c"}
        # The placement record follows the churn, so failover re-creates
        # the VEP with the *current* membership.
        assert fleet.veps["echo"].members == ["http://svc/b", "http://svc/c"]

    def test_membership_survives_vep_failover(self, env, network, container):
        """Member churn applied before a crash is preserved by failover."""
        members = deploy_members(env, container, names=("a", "b"))
        fleet = BusFleet(env, network, shards=2, member_timeout=5.0)
        for index in range(8):
            fleet.create_vep(f"echo-{index}", ECHO_CONTRACT, members=members)
        moved_name = next(
            name for name, spec in sorted(fleet.veps.items()) if spec.owner == "bus-1"
        )
        container.deploy(EchoService(env, "echo-c", "http://svc/c"))
        fleet.add_vep_member(moved_name, "http://svc/c")
        BusCrashInjector(env, fleet, "bus-1", at_time=1.0)
        env.run(until=15.0)
        spec = fleet.veps[moved_name]
        assert spec.owner == "bus-0"
        assert "http://svc/c" in spec.members
        assert fleet.buses["bus-0"].vep(moved_name).members == spec.members

    def test_fleet_metrics_and_stats(self, env, network, container):
        members = deploy_members(env, container)
        metrics = MetricsRegistry()
        fleet = BusFleet(env, network, shards=2, member_timeout=5.0, metrics=metrics)
        fleet.create_vep("echo", ECHO_CONTRACT, members=members)
        BusCrashInjector(env, fleet, "bus-0", at_time=2.0)
        env.run(until=15.0)
        counters = metrics.snapshot()["counters"]
        assert counters["federation.bus.crashed"] == 1
        assert counters["federation.membership.suspect"] == 1
        assert counters["federation.leader.changes"] == 2
        assert counters["federation.vep.moved"] >= 1
        stats = fleet.stats_summary()
        assert stats["leader"] == "bus-1"
        assert stats["epoch"] == 2
        assert set(stats["buses"]) == {"bus-1"}
        assert stats["placement"]["echo"] == "bus-1"

    def test_duplicate_bus_and_vep_names_rejected(self, env, network):
        fleet = BusFleet(env, network, shards=2, member_timeout=5.0)
        with pytest.raises(ValueError):
            fleet.add_bus("bus-0")
        fleet.create_vep("echo", ECHO_CONTRACT, members=[])
        with pytest.raises(ValueError):
            fleet.create_vep("echo", ECHO_CONTRACT, members=[])

    def test_crash_injector_validates_inputs(self, env, network):
        fleet = BusFleet(env, network, shards=2, member_timeout=5.0)
        with pytest.raises(ValueError):
            BusCrashInjector(env, fleet, "bus-9", at_time=1.0)
        with pytest.raises(ValueError):
            BusCrashInjector(env, fleet, "bus-0", at_time=-1.0)
