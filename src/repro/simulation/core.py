"""Generator-based discrete-event simulation core.

The model follows the classic process-interaction style:

- An :class:`Environment` owns the simulated clock and a priority queue of
  scheduled events.
- An :class:`Event` is a one-shot occurrence that callbacks can be attached
  to. Events either *succeed* with a value or *fail* with an exception.
- A :class:`Process` wraps a generator. Each ``yield`` hands an event back to
  the environment; when that event triggers, the generator is resumed with
  the event's value (or the exception is thrown into it).
- :class:`AnyOf` / :class:`AllOf` compose events, which is how the middleware
  expresses "response or timeout, whichever first" and broadcast invocation.

The implementation is intentionally small and dependency-free; it is the
substrate for the simulated SOAP transport, service containers, fault
injection and the orchestration engine.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel itself."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` is whatever the interrupter supplied; middleware uses it to
    carry e.g. the fault that aborted a pending invocation.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event state markers. PENDING events have not been scheduled; TRIGGERED
# events sit in the queue awaiting processing; PROCESSED events have run
# their callbacks.
_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events start pending, are triggered exactly once with either a value
    (:meth:`succeed`) or an exception (:meth:`fail`), and run their callbacks
    when the environment processes them.
    """

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = _PENDING
        self._ok: bool | None = None
        self._value: Any = None
        #: Set when a failure was handed to a waiting process or inspected,
        #: used to surface unhandled failures at the end of a run.
        self.defused = False

    # -- introspection -----------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._state == _PENDING:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception. Only valid once triggered."""
        if self._state == _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to succeed after ``delay`` simulated seconds."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fail with ``exception`` after ``delay``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exception!r}")
        self._trigger(False, exception, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._state = _TRIGGERED
        self._ok = ok
        self._value = value
        self.env._enqueue(self, delay)

    def _process(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if not self._ok and not self.defused and not callbacks:
            # Nobody is listening for this failure; surface it rather than
            # letting it pass silently.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # Inlined Event.__init__ + _trigger: timeouts are the most frequently
        # allocated event type (every latency hop is one), and they are born
        # triggered, so the generic pending-state bookkeeping is dead weight.
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        self.defused = False
        self.delay = delay
        env._enqueue(self, delay)


class Process(Event):
    """A running simulated activity, driven by a generator.

    The process is itself an event: it triggers when the generator returns
    (success, with the generator's return value) or raises (failure). Other
    processes can therefore ``yield`` a process to wait for it.

    ``name`` may be a string or a tuple of parts joined with ``:`` on first
    access — hot callers pass tuples so no formatting happens for the vast
    majority of processes, whose names are never read.
    """

    __slots__ = ("_generator", "_name", "_waiting_on")

    def __init__(
        self, env: "Environment", generator: Generator, name: str | tuple | None = None
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "throw"):
            raise SimulationError(f"expected a generator, got {generator!r}")
        self._generator = generator
        self._name = name
        self._waiting_on: Event | None = None
        # Kick the generator off at the current simulated instant. Inlined
        # Event construction + succeed(): one bootstrap event is born already
        # triggered per process, and process creation is hot (several per
        # simulated request).
        bootstrap = Event.__new__(Event)
        bootstrap.env = env
        bootstrap.callbacks = [self._resume]
        bootstrap._state = _TRIGGERED
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.defused = False
        env._enqueue(bootstrap, 0.0)

    @property
    def name(self) -> str:
        """The process's debug name, formatted lazily."""
        name = self._name
        if name is None:
            name = getattr(self._generator, "__name__", "process")
            self._name = name
        elif type(name) is tuple:
            name = ":".join(str(part) for part in name)
            self._name = name
        return name

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a process
        twice before it handles the first interrupt queues both.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        event = Event(self.env)
        event.callbacks.append(self._resume)
        event.fail(Interrupt(cause))
        # Detach from whatever we were waiting on so the original event's
        # trigger does not resume us a second time.
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
            self._waiting_on = None

    def _resume(self, event: Event) -> None:
        # The busiest function in the kernel: every yield of every process
        # lands here. Peeks at private state (``_ok``/``_state``) instead of
        # the guarded properties — the event is always triggered by the time
        # a callback runs.
        self._waiting_on = None
        send = self._generator.send
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self._trigger(True, stop.value, 0.0)
                return
            except BaseException as exc:  # noqa: BLE001 - process failure is a value
                self._trigger(False, exc, 0.0)
                return

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self._trigger(True, stop.value, 0.0)
                except BaseException as err:  # noqa: BLE001
                    self._trigger(False, err, 0.0)
                return

            if target._state == _PROCESSED:
                # Already happened: feed its outcome straight back in.
                if not target._ok:
                    target.defused = True
                event = target
                continue

            target.callbacks.append(self._resume)
            self._waiting_on = target
            return


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: list[Event] = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._pending = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.processed:
                self._observe(event, immediate=True)
            else:
                self._pending += 1
                event.callbacks.append(self._observe)
        if self._state == _PENDING and self._satisfied():
            self.succeed(self._collect())

    def _observe(self, event: Event, immediate: bool = False) -> None:
        if not immediate:
            self._pending -= 1
        if self._state != _PENDING:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # "Occurred" means processed: a Timeout is *triggered* (scheduled)
        # the instant it is created, but only counts once it has fired.
        return {event: event.value for event in self.events if event.processed and event.ok}


class AnyOf(_Condition):
    """Succeeds when the first constituent event succeeds.

    The value is a dict mapping the already-succeeded events to their values
    (usually a single entry). Fails if any constituent fails first.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return any(event.processed and event.ok for event in self.events)


class AllOf(_Condition):
    """Succeeds when every constituent event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return all(event.processed and event.ok for event in self.events)


class Environment:
    """Simulated clock plus the event queues that drive it.

    Scheduling uses two lanes that together behave exactly like one heap
    ordered by ``(time, sequence)``:

    - a binary heap for events with a positive delay (timeouts, latencies);
    - a FIFO *immediate lane* for zero-delay events — process bootstraps,
      ``succeed()``/``fail()`` cascades, condition triggers — which are the
      large majority of events in middleware workloads. Immediate events all
      occur at the current instant, and the monotonic sequence counter means
      the lane is already in sequence order, so each one costs a deque
      append/popleft instead of two O(log n) heap operations. Draining the
      lane before the clock may advance is also what batches same-timestamp
      cascades through one tight loop.

    The merge rule at every pop — take the immediate head unless the heap
    holds an event at the same instant with a smaller sequence number —
    reproduces the single-heap order bit for bit, which the byte-identical
    equivalence suite pins down.
    """

    #: Events processed by every environment in this process, accumulated
    #: once per :meth:`run` call. Benchmarks snapshot it around a workload
    #: that builds many environments internally to report true events/sec.
    total_events_processed = 0

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._immediate: deque[tuple[int, Event]] = deque()
        self._sequence = 0
        #: Total events processed over the environment's lifetime; cheap
        #: enough to maintain that benchmarks can report true events/sec.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | tuple | None = None) -> Process:
        """Start a simulated activity from ``generator``.

        ``name`` may be a tuple of parts, joined lazily only if the name is
        ever read (hot paths never format names they do not print).
        """
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: first success wins."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all must succeed."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float) -> None:
        self._sequence += 1
        if delay == 0.0:
            self._immediate.append((self._sequence, event))
        else:
            heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def _pop_next(self) -> Event:
        """The globally next event by ``(time, sequence)`` across both lanes.

        Advances the clock. Immediate-lane entries are always scheduled at
        the current instant, so the only contest is a heap event at the same
        time with a smaller sequence number (a positive delay that collapsed
        onto ``now`` in float arithmetic, enqueued earlier).
        """
        immediate = self._immediate
        queue = self._queue
        if immediate:
            if queue:
                time, seq, event = queue[0]
                if time == self._now and seq < immediate[0][0]:
                    heapq.heappop(queue)
                    return event
            return immediate.popleft()[1]
        if not queue:
            raise SimulationError("no scheduled events")
        time, _seq, event = heapq.heappop(queue)
        self._now = time
        return event

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        event = self._pop_next()
        self.events_processed += 1
        Environment.total_events_processed += 1
        event._process()

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        - ``until`` is ``None``: run until no events remain.
        - ``until`` is a number: run until the clock reaches it.
        - ``until`` is an :class:`Event` (e.g. a :class:`Process`): run until
          it triggers, then return its value (raising its failure).
        """
        # The three loops below are the simulation's hottest code: they
        # inline the two-lane pop with local bindings for both lanes and
        # heappop, which measurably raises events/sec on long runs. Each
        # iteration drains the immediate lane first (the same-timestamp
        # batch) unless the heap holds an earlier-sequenced event at the
        # current instant.
        queue = self._queue
        immediate = self._immediate
        pop = heapq.heappop
        processed = 0
        try:
            if isinstance(until, Event):
                stop = until
                while stop._state != _PROCESSED:
                    if immediate:
                        if queue:
                            time, seq, event = queue[0]
                            if time == self._now and seq < immediate[0][0]:
                                pop(queue)
                            else:
                                event = immediate.popleft()[1]
                        else:
                            event = immediate.popleft()[1]
                    elif queue:
                        time, _seq, event = pop(queue)
                        self._now = time
                    else:
                        raise SimulationError(
                            "simulation ran out of events before the awaited event triggered"
                        )
                    processed += 1
                    event._process()
                if stop._ok:
                    return stop._value
                stop.defused = True
                raise stop._value
            if until is not None:
                horizon = float(until)
                if horizon < self._now:
                    raise SimulationError(f"cannot run backwards to {horizon}")
                while immediate or (queue and queue[0][0] <= horizon):
                    if immediate:
                        if queue:
                            time, seq, event = queue[0]
                            if time == self._now and seq < immediate[0][0]:
                                pop(queue)
                            else:
                                event = immediate.popleft()[1]
                        else:
                            event = immediate.popleft()[1]
                    else:
                        time, _seq, event = pop(queue)
                        self._now = time
                    processed += 1
                    event._process()
                self._now = horizon
                return None
            while immediate or queue:
                if immediate:
                    if queue:
                        time, seq, event = queue[0]
                        if time == self._now and seq < immediate[0][0]:
                            pop(queue)
                        else:
                            event = immediate.popleft()[1]
                    else:
                        event = immediate.popleft()[1]
                else:
                    time, _seq, event = pop(queue)
                    self._now = time
                processed += 1
                event._process()
            return None
        finally:
            self.events_processed += processed
            Environment.total_events_processed += processed

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._immediate:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")
