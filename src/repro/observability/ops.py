"""The operations plane: what an operator sees of the feedback loop.

Three tools, all read-only over the observability substrate:

- :class:`FlightRecorder` — a bounded ring buffer of the most recent
  spans and MASC events, registered like any other span exporter; its
  :meth:`~FlightRecorder.dump` writes everything to one JSON file when a
  fault or crash makes "what just happened" the only question that
  matters.
- :func:`render_top` — the ``python -m repro top`` table: one row per
  VEP member endpoint with availability, latency percentiles, burn rate,
  breaker state and SLO status, pulled live from the bus's QoS
  measurements, :class:`~repro.observability.slo.SloService` and
  :class:`~repro.resilience.ResilienceService`.
- :meth:`MetricsRegistry.render_prometheus()
  <repro.observability.metrics.MetricsRegistry.render_prometheus>`
  (in the metrics module) — the scrape-format snapshot this module's
  consumers archive next to the flight-recorder dump.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.observability.exporters import SpanExporter
from repro.observability.tracing import Span

__all__ = ["FlightRecorder", "render_top"]


class FlightRecorder(SpanExporter):
    """Ring buffer of recent spans + events, dumped on fault or crash.

    Register on a tracer (``tracer.add_exporter(recorder)``) to capture
    spans; feed it MASC events via :meth:`record_event` (the bus's SLO
    sink does this when wired). Only the most recent ``capacity`` entries
    of each kind survive — the recorder is for "the last few seconds
    before it went wrong", not for archival (that's the JSONL exporter).
    """

    def __init__(self, capacity: int = 512, tracer=None) -> None:
        self.capacity = capacity
        #: When given, :meth:`dump` first flushes the tracer's still-open
        #: spans (exported with ``unfinished=true``) so a crash dump shows
        #: what was *in flight*, not just what had completed.
        self.tracer = tracer
        self.spans: deque[dict] = deque(maxlen=capacity)
        self.events: deque[dict] = deque(maxlen=capacity)
        self.dumped: list[str] = []

    def export(self, span: Span) -> None:
        self.spans.append(span.to_dict())

    def record_event(self, event) -> None:
        """Record one MASC event (duck-typed: needs name/time/endpoint)."""
        self.events.append(
            {
                "name": event.name,
                "time": event.time,
                "endpoint": event.endpoint,
                "service_type": event.service_type,
                "raised_by": event.raised_by,
                "context": _plain(event.context),
            }
        )

    def dump(self, path, reason: str = "unspecified") -> Path:
        """Write the buffered spans/events to ``path`` as one JSON object."""
        unfinished = 0
        if self.tracer is not None:
            unfinished = self.tracer.flush_open()
        target = Path(path)
        payload = {
            "reason": reason,
            "capacity": self.capacity,
            "unfinished_spans_flushed": unfinished,
            "spans": list(self.spans),
            "events": list(self.events),
        }
        target.write_text(json.dumps(payload, indent=2, default=str), encoding="utf-8")
        self.dumped.append(str(target))
        return target


def _plain(value):
    """Context values reduced to JSON-safe plain data."""
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def render_top(bus, window_seconds: float = 60.0) -> str:
    """The live per-VEP / per-endpoint operations table of one bus.

    One row per VEP member endpoint: request volume and availability over
    the last ``window_seconds`` (from the SLO engine's sliding windows
    when active, otherwise the QoS Measurement Service), latency
    percentiles, the fast-window burn rate, the breaker state, and the
    worst SLO state of any objective covering the endpoint.
    """
    from repro.metrics.report import Table

    table = Table(
        ["VEP", "Endpoint", "Req", "Avail", "p50", "p95", "p99", "Burn", "Breaker", "SLO"],
        title=f"wsBus top — t={bus.env.now:.1f}s (window {window_seconds:g}s)",
    )
    slo = getattr(bus, "slo", None)
    slo_active = slo is not None and slo.active
    breaker_states = bus.resilience.breaker_states() if bus.resilience.active else {}
    slo_status = slo.status_table() if slo_active else {}
    for vep_name in sorted(bus.veps):
        vep = bus.veps[vep_name]
        for member in vep.members:
            requests = availability = burn = None
            percentiles = {}
            if slo_active:
                requests, failures = slo.endpoint_window(member, window_seconds)
                if requests:
                    availability = 1.0 - failures / requests
                statuses = slo_status.get(member, {})
                if statuses:
                    burn = max(s["fast_burn"] for s in statuses.values())
                histogram = slo._instruments.get(member)
                if histogram is not None:
                    histogram = histogram[2]
                    percentiles = {q: histogram.percentile(q) for q in (50, 95, 99)}
            if availability is None:
                availability = bus.qos.lookup("availability", 0, "mean", member)
            if not percentiles:
                qos = bus.qos.endpoint(member)
                if qos is not None:
                    percentiles = {
                        50: qos.response_time(0, "mean"),
                        95: qos.response_time(0, "p95"),
                        99: qos.response_time(0, "p99"),
                    }
            states = slo_status.get(member, {})
            slo_cell = _worst_state(states) if slo_active else "-"
            table.add_row(
                [
                    f"{vep_name} [{vep.selection_strategy}]",
                    member,
                    "-" if requests is None else requests,
                    _fmt_percent(availability),
                    _fmt_seconds(percentiles.get(50)),
                    _fmt_seconds(percentiles.get(95)),
                    _fmt_seconds(percentiles.get(99)),
                    "-" if burn is None else f"{burn:.1f}x",
                    breaker_states.get(member, "-"),
                    slo_cell,
                ]
            )
    return table.render()


_STATE_ORDER = {"ok": 0, "burning": 1, "exhausted": 2}


def _worst_state(states: dict[str, dict]) -> str:
    if not states:
        return "-"
    return max(
        (status["state"] for status in states.values()),
        key=lambda state: _STATE_ORDER.get(state, 0),
    )


def _fmt_percent(value) -> str:
    return "-" if value is None else f"{value * 100:.1f}%"


def _fmt_seconds(value) -> str:
    return "-" if value is None else f"{value * 1000:.0f}ms"
