"""Unit tests for the policy model: scopes, triggers, actions, values."""

import pytest

from repro.policy import (
    AdaptationPolicy,
    AddActivityAction,
    BusinessValue,
    ConcurrentInvokeAction,
    ExtendTimeoutAction,
    InvokeSpec,
    MonitoringPolicy,
    PolicyDocument,
    PolicyError,
    PolicyScope,
    RetryAction,
    SkipAction,
    SubstituteAction,
)
from repro.policy.actions import ActionError
from repro.policy.assertions import MessageCondition, QoSThreshold
from repro.soap import FaultCode, SoapEnvelope
from repro.xmlutils import Element


class TestPolicyScope:
    def test_empty_scope_matches_anything(self):
        assert PolicyScope().matches(service_type="X", operation="y")

    def test_exact_match(self):
        scope = PolicyScope(service_type="Retailer", operation="getCatalog")
        assert scope.matches(service_type="Retailer", operation="getCatalog")
        assert not scope.matches(service_type="Retailer", operation="submitOrder")

    def test_missing_subject_field_fails_constrained_scope(self):
        scope = PolicyScope(endpoint="http://a")
        assert not scope.matches(service_type="Retailer")

    def test_glob_patterns(self):
        scope = PolicyScope(endpoint="http://scm/retailer*")
        assert scope.matches(endpoint="http://scm/retailerA")
        assert not scope.matches(endpoint="http://scm/warehouse")

    def test_describe(self):
        assert PolicyScope().describe() == "any"
        assert "serviceType=Retailer" in PolicyScope(service_type="Retailer").describe()


class TestMonitoringPolicy:
    def test_requires_events(self):
        with pytest.raises(PolicyError):
            MonitoringPolicy(name="m", events=())

    def test_trigger_matching_with_wildcards(self):
        policy = MonitoringPolicy(name="m", events=("message.*",))
        assert policy.triggered_by("message.request")
        assert not policy.triggered_by("fault.Timeout")

    def test_condition_compiled_at_load(self):
        with pytest.raises(Exception):
            MonitoringPolicy(name="m", events=("e",), condition="not valid ++")

    def test_condition_evaluation(self):
        policy = MonitoringPolicy(name="m", events=("e",), condition="amount > 100")
        assert policy.condition_holds({"amount": 200})
        assert not policy.condition_holds({"amount": 50})

    def test_failing_condition_means_not_relevant(self):
        policy = MonitoringPolicy(name="m", events=("e",), condition="missing_var > 1")
        assert not policy.condition_holds({})


class TestAdaptationPolicy:
    def _policy(self, **kwargs):
        defaults = dict(
            name="a",
            triggers=("fault.Timeout",),
            actions=(RetryAction(),),
        )
        defaults.update(kwargs)
        return AdaptationPolicy(**defaults)

    def test_requires_actions(self):
        with pytest.raises(PolicyError):
            self._policy(actions=())

    def test_requires_triggers(self):
        with pytest.raises(PolicyError):
            self._policy(triggers=())

    def test_adaptation_type_validated(self):
        with pytest.raises(PolicyError):
            self._policy(adaptation_type="magical")

    def test_layers_derived_from_actions(self):
        policy = self._policy(actions=(RetryAction(), ExtendTimeoutAction()))
        assert policy.layers == {"messaging", "process"}

    def test_fault_wildcard_trigger(self):
        policy = self._policy(triggers=("fault.*",))
        assert policy.triggered_by("fault.ServiceUnavailable")
        assert not policy.triggered_by("message.request")


class TestActions:
    def test_retry_delay_backoff(self):
        action = RetryAction(max_retries=3, delay_seconds=2.0, backoff_multiplier=2.0)
        assert action.delay_for_attempt(1) == 2.0
        assert action.delay_for_attempt(2) == 4.0
        assert action.delay_for_attempt(3) == 8.0

    def test_retry_validation(self):
        with pytest.raises(ActionError):
            RetryAction(max_retries=-1)
        with pytest.raises(ActionError):
            RetryAction(delay_seconds=-1)

    def test_substitute_backup_needs_address(self):
        with pytest.raises(ActionError):
            SubstituteAction(strategy="backup")
        SubstituteAction(strategy="backup", backup_address="http://b")

    def test_substitute_unknown_strategy(self):
        with pytest.raises(ActionError):
            SubstituteAction(strategy="astrology")

    def test_invoke_spec_requires_target(self):
        with pytest.raises(ActionError):
            InvokeSpec(name="x", operation="op")

    def test_invoke_spec_to_activity(self):
        spec = InvokeSpec(
            name="cc",
            operation="convert",
            service_type="CurrencyConversion",
            inputs={"amount": "$amount"},
            outputs={"result": "converted"},
        )
        activity = spec.to_activity()
        assert activity.name == "cc"
        assert activity.service_type == "CurrencyConversion"
        assert activity.extract == {"result": "converted"}

    def test_add_activity_builds_single_invoke(self):
        action = AddActivityAction(
            anchor="place-trade",
            invokes=(InvokeSpec(name="one", operation="op", address="http://x"),),
        )
        assert action.build_activity().name == "one"

    def test_add_activity_builds_block(self):
        action = AddActivityAction(
            anchor="a",
            block_name="variation",
            invokes=(
                InvokeSpec(name="one", operation="op", address="http://x"),
                InvokeSpec(name="two", operation="op", address="http://y"),
            ),
        )
        block = action.build_activity()
        assert block.name == "variation"
        assert [child.name for child in block.children()] == ["one", "two"]

    def test_add_activity_position_validated(self):
        with pytest.raises(ActionError):
            AddActivityAction(
                anchor="a",
                position="sideways",
                invokes=(InvokeSpec(name="x", operation="o", address="http://x"),),
            )

    def test_add_activity_requires_invokes(self):
        with pytest.raises(ActionError):
            AddActivityAction(anchor="a")

    def test_describe_strings(self):
        assert "retry" in RetryAction().describe()
        assert "substitute" in SubstituteAction().describe()
        assert "first response wins" in ConcurrentInvokeAction().describe()
        assert "skip" in SkipAction().describe()


class TestAssertions:
    def _envelope(self, **parts):
        body = Element("orderRequest")
        for key, value in parts.items():
            body.add(key, text=str(value))
        return SoapEnvelope(body=body)

    def test_message_condition_operators(self):
        envelope = self._envelope(country="US", amount=500)
        assert MessageCondition("country", "ne", "AU").evaluate(envelope)
        assert MessageCondition("country", "eq", "US").evaluate(envelope)
        assert MessageCondition("amount", "gte", "500").evaluate(envelope)
        assert not MessageCondition("amount", "gt", "500").evaluate(envelope)
        assert MessageCondition("country", "contains", "S").evaluate(envelope)
        assert MessageCondition("country", "matches", "^U").evaluate(envelope)

    def test_exists_and_absent(self):
        envelope = self._envelope(country="US")
        assert MessageCondition("country", "exists").evaluate(envelope)
        assert MessageCondition("ghost", "absent").evaluate(envelope)
        assert not MessageCondition("ghost", "exists").evaluate(envelope)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            MessageCondition("x", "approximately")

    def test_non_numeric_comparison_is_false(self):
        envelope = self._envelope(country="US")
        assert not MessageCondition("country", "gt", "5").evaluate(envelope)

    def test_fault_envelope_body_absent(self):
        from repro.soap import SoapFault

        envelope = SoapEnvelope(fault=SoapFault(FaultCode.SERVER, "x"))
        assert MessageCondition("anything", "absent").evaluate(envelope)
        assert not MessageCondition("anything", "exists").evaluate(envelope)

    def test_qos_threshold_holds(self):
        threshold = QoSThreshold("response_time", "lte", 1.5)
        assert threshold.holds(1.0)
        assert not threshold.holds(2.0)
        assert threshold.holds(None)  # no data yet

    def test_qos_threshold_validation(self):
        with pytest.raises(ValueError):
            QoSThreshold("response_time", "eq", 1.0)
        with pytest.raises(ValueError):
            QoSThreshold("response_time", "lte", 1.0, aggregate="median")


class TestBusinessValue:
    def test_describe_signs(self):
        assert BusinessValue(5.0, "AUD").describe().startswith("+5.0")
        assert BusinessValue(-2.0, "AUD", "fee").describe() == "-2.0 AUD (fee)"

    def test_document_len_and_names(self):
        document = PolicyDocument("d")
        document.monitoring_policies.append(MonitoringPolicy(name="m", events=("e",)))
        document.adaptation_policies.append(
            AdaptationPolicy(name="a", triggers=("e",), actions=(RetryAction(),))
        )
        assert len(document) == 2
        assert document.policy_names() == ["m", "a"]
