"""SOAP envelope model.

An envelope is addressing headers + optional extension headers + a body that
holds either a payload element or a fault. Serialization produces real XML;
the serialized size feeds the transport's size-dependent latency model
(Figure 5 of the paper sweeps request sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soap.addressing import AddressingHeaders
from repro.soap.faults import SoapFault
from repro.xmlutils import Element, QName, XmlError, parse_xml, serialize_xml

__all__ = ["SOAP_ENV_NS", "SoapEnvelope", "SoapHeader"]

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"


@dataclass
class SoapHeader:
    """An extension header block (anything beyond addressing)."""

    element: Element
    must_understand: bool = False


#: Fields whose reassignment changes the serialized form (and therefore
#: invalidates the cached :attr:`SoapEnvelope.size_bytes`).
_SIZE_FIELDS = frozenset({"addressing", "headers", "body", "fault", "padding"})


@dataclass
class SoapEnvelope:
    """One SOAP message: headers plus a body payload or fault."""

    addressing: AddressingHeaders = field(default_factory=AddressingHeaders)
    headers: list[SoapHeader] = field(default_factory=list)
    body: Element | None = None
    fault: SoapFault | None = None
    #: Extra padding bytes, used by workload generators to sweep request
    #: sizes without fabricating huge payload trees.
    padding: int = 0
    #: Cached serialized size; recomputed lazily after any field write.
    _size_cache: int | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.body is not None and self.fault is not None:
            raise ValueError("an envelope carries either a body payload or a fault, not both")

    def __setattr__(self, name: str, value) -> None:
        if name in _SIZE_FIELDS:
            object.__setattr__(self, "_size_cache", None)
        object.__setattr__(self, name, value)

    # -- classification --------------------------------------------------------

    @property
    def is_fault(self) -> bool:
        return self.fault is not None

    @property
    def action(self) -> str | None:
        return self.addressing.action

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def request(
        cls,
        to: str,
        action: str,
        body: Element,
        reply_to: str | None = None,
        padding: int = 0,
    ) -> "SoapEnvelope":
        """A request message addressed to ``to`` with the given WSA action."""
        return cls(
            addressing=AddressingHeaders(to=to, action=action, reply_to=reply_to),
            body=body,
            padding=padding,
        )

    def reply(self, body: Element, padding: int = 0) -> "SoapEnvelope":
        """A success reply correlated to this request."""
        return SoapEnvelope(
            addressing=self.addressing.for_reply(),
            body=body,
            padding=padding,
        )

    def reply_fault(self, fault: SoapFault) -> "SoapEnvelope":
        """A fault reply correlated to this request."""
        return SoapEnvelope(addressing=self.addressing.for_reply(), fault=fault)

    def copy(self) -> "SoapEnvelope":
        """A header-shallow working copy (the per-attempt retarget copy).

        The headers *list* is fresh — adding headers to the copy never leaks
        into the original — but the header blocks, body and fault are shared
        by reference. That is safe because every mutation site in the
        middleware replaces ``body``/``addressing`` wholesale instead of
        editing the shared element tree in place (pipeline modules that
        enrich a payload copy it first), and it removes a deep element-tree
        copy from every delivery attempt made by ``WsBus._send`` and
        ``RetryQueue._redeliver``. The serialized-size cache carries over;
        reassigning any content field on the copy invalidates it. Use
        :meth:`deep_copy` when the copy's trees must be private.
        """
        duplicate = SoapEnvelope(
            addressing=self.addressing,
            headers=list(self.headers),
            body=self.body,
            fault=self.fault,
            padding=self.padding,
        )
        object.__setattr__(duplicate, "_size_cache", self._size_cache)
        return duplicate

    def deep_copy(self) -> "SoapEnvelope":
        """A fully private copy: header blocks and body trees are cloned.

        This is the pre-fast-path :meth:`copy` semantics, kept for callers
        that intend to mutate element trees in place and as the reference
        implementation for the equivalence tests and microbenchmarks.
        """
        return SoapEnvelope(
            addressing=self.addressing,
            headers=[SoapHeader(h.element.copy(), h.must_understand) for h in self.headers],
            body=self.body.copy() if self.body is not None else None,
            fault=self.fault,
            padding=self.padding,
        )

    def header(self, name: QName | str) -> Element | None:
        """The first extension header with the given qualified name."""
        wanted = name if isinstance(name, QName) else QName.parse(name)
        for header in self.headers:
            if header.element.name == wanted:
                return header.element
        return None

    def add_header(self, element: Element, must_understand: bool = False) -> None:
        self.headers.append(SoapHeader(element, must_understand))
        self._size_cache = None

    # -- XML mapping --------------------------------------------------------------

    def to_element(self) -> Element:
        envelope = Element(QName(SOAP_ENV_NS, "Envelope"))
        header = envelope.add(QName(SOAP_ENV_NS, "Header"))
        for block in self.addressing.to_elements():
            header.append(block)
        for extension in self.headers:
            child = extension.element.copy()
            if extension.must_understand:
                child.attributes[QName(SOAP_ENV_NS, "mustUnderstand").clark()] = "1"
            header.append(child)
        body = envelope.add(QName(SOAP_ENV_NS, "Body"))
        if self.fault is not None:
            body.append(self.fault.to_element())
        elif self.body is not None:
            body.append(self.body.copy())
        return envelope

    def to_xml(self) -> str:
        return serialize_xml(self.to_element())

    @property
    def size_bytes(self) -> int:
        """Serialized size plus padding; drives transport latency.

        Serializing is by far the most expensive step of a simulated send,
        and the same envelope's size is read several times per exchange
        (latency sampling on each hop, invocation records), so the value is
        cached. Reassigning any content field — including the retargeting
        reassignment of ``addressing`` — invalidates the cache.
        """
        cached = self._size_cache
        if cached is None:
            cached = len(self.to_xml().encode()) + self.padding
            self._size_cache = cached
        return cached

    @classmethod
    def from_element(cls, element: Element) -> "SoapEnvelope":
        if element.name != QName(SOAP_ENV_NS, "Envelope"):
            raise XmlError(f"not a SOAP envelope: {element.name}")
        header = element.find(QName(SOAP_ENV_NS, "Header"))
        body = element.find(QName(SOAP_ENV_NS, "Body"))
        if body is None:
            raise XmlError("SOAP envelope without a Body")
        addressing_blocks: list[Element] = []
        extensions: list[SoapHeader] = []
        mu_attr = QName(SOAP_ENV_NS, "mustUnderstand").clark()
        if header is not None:
            from repro.soap.addressing import MASC_NS, WSA_NS

            for child in header.children:
                if child.name.namespace == WSA_NS or (
                    child.name.namespace == MASC_NS and child.name.local == "ProcessInstanceID"
                ):
                    addressing_blocks.append(child)
                else:
                    extensions.append(
                        SoapHeader(child.copy(), child.attributes.get(mu_attr) == "1")
                    )
        fault: SoapFault | None = None
        payload: Element | None = None
        if body.children:
            first = body.children[0]
            if first.name == QName(SOAP_ENV_NS, "Fault"):
                fault = SoapFault.from_element(first)
            else:
                payload = first.copy()
        return cls(
            addressing=AddressingHeaders.from_elements(addressing_blocks),
            headers=extensions,
            body=payload,
            fault=fault,
        )

    @classmethod
    def from_xml(cls, text: str) -> "SoapEnvelope":
        return cls.from_element(parse_xml(text))
