"""MASCMonitoringService: the sensor half of the MAPE loop.

Taps the orchestration engine's invoker to introspect every exchanged SOAP
message, stores messages in the :class:`~repro.core.monitoring_store.
MonitoringStore`, and evaluates monitoring policies:

- *detection* policies (no fault classification): when the relevance
  condition and all message conditions **hold**, the policy fires and its
  ``emits`` events are raised with the extracted context — these drive
  dynamic customization ("the MASCMonitoringService module raises an event
  that for a particular process instance it detected... adaptation
  pre-conditions specified in monitoring policies");
- *constraint* policies (with ``classify_as``): when a message condition is
  **violated**, a fault event named ``fault.<Code>`` is raised — "the
  Monitoring service uses ECA rules to assign a meaningful fault type to
  the violation event";
- QoS thresholds are checked against a pluggable QoS lookup (the wsBus QoS
  Measurement Service implements the expected interface), raising
  ``fault.SLAViolation`` events on breach.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.core.events import MASCEvent
from repro.core.monitoring_store import MonitoringStore, StoredMessage
from repro.policy import MonitoringPolicy, PolicyRepository
from repro.services import ServiceRegistry
from repro.soap import FaultCode, SoapEnvelope
from repro.xmlutils import XPath

__all__ = ["MASCMonitoringService"]

#: Signature of a QoS aggregate lookup:
#: (metric, window, aggregate, endpoint) -> observed value or None.
QoSLookup = Callable[[str, int, str, str | None], float | None]


class MASCMonitoringService:
    """Evaluates monitoring policies over observed messages and QoS data."""

    def __init__(
        self,
        env,
        repository: PolicyRepository,
        store: MonitoringStore | None = None,
        registry: ServiceRegistry | None = None,
        qos_lookup: QoSLookup | None = None,
    ) -> None:
        self.env = env
        self.repository = repository
        # NB: `store or ...` would discard an *empty* store (len() == 0 is
        # falsy); identity check required.
        self.store = store if store is not None else MonitoringStore()
        self.registry = registry
        self.qos_lookup = qos_lookup
        self._sinks: list[Callable[[MASCEvent], None]] = []
        self._xpath_cache: dict[str, XPath] = {}
        #: Counters for experiment reporting.
        self.messages_observed = 0
        self.policies_fired = 0
        self.violations_raised = 0

    def add_sink(self, sink: Callable[[MASCEvent], None]) -> None:
        """Subscribe to raised MASC events (the decision maker does this)."""
        self._sinks.append(sink)

    def attach_to_invoker(self, invoker) -> None:
        """Introspect all messages this invoker exchanges."""
        invoker.add_message_tap(self.observe_message)

    # -- observation -------------------------------------------------------------

    def observe_message(
        self, direction: str, envelope: SoapEnvelope, operation: str, target: str
    ) -> None:
        """Entry point for each exchanged message (tap callback)."""
        self.messages_observed += 1
        message = StoredMessage(
            time=self.env.now,
            direction=direction,
            operation=operation,
            target=target,
            envelope=envelope,
            process_instance_id=envelope.addressing.process_instance_id,
        )
        fired_rules = self.store.store(message)
        for rule, context in fired_rules:
            self._raise(
                MASCEvent(
                    name=rule.emits,
                    time=self.env.now,
                    operation=operation,
                    endpoint=target,
                    service_type=self._service_type_of(target),
                    process_instance_id=message.process_instance_id,
                    envelope=envelope,
                    context=context,
                    raised_by=rule.name,
                )
            )
        self._evaluate_policies(message)

    def _service_type_of(self, address: str) -> str | None:
        if self.registry is None:
            return None
        for service_type in self.registry.service_types:
            for record in self.registry.find(service_type):
                if record.address == address:
                    return service_type
        return None

    # -- policy evaluation -----------------------------------------------------------

    def _evaluate_policies(self, message: StoredMessage) -> None:
        event_name = f"message.{message.direction}"
        subject = {
            "service_type": self._service_type_of(message.target),
            "endpoint": message.target,
            "operation": message.operation,
        }
        policies = self.repository.monitoring_policies_for(event_name, **subject)
        for policy in policies:
            self._evaluate_policy(policy, message, subject)

    def _evaluate_policy(
        self, policy: MonitoringPolicy, message: StoredMessage, subject: dict
    ) -> None:
        context = self._extract_context(policy, message.envelope)
        if not policy.condition_holds(context):
            return
        conditions_hold = all(
            condition.evaluate(message.envelope) for condition in policy.conditions
        )
        if policy.classify_as is not None:
            # Constraint semantics: violated conditions raise a typed fault.
            if policy.conditions and not conditions_hold:
                self.violations_raised += 1
                self._raise(
                    MASCEvent(
                        name=f"fault.{policy.classify_as.value}",
                        time=self.env.now,
                        process_instance_id=message.process_instance_id,
                        envelope=message.envelope,
                        context=context,
                        raised_by=policy.name,
                        **subject,
                    )
                )
            self._check_qos(policy, message, subject, context)
            return
        # Detection semantics: all conditions holding fires the policy.
        if conditions_hold:
            self.policies_fired += 1
            for emitted in policy.emits:
                self._raise(
                    MASCEvent(
                        name=emitted,
                        time=self.env.now,
                        process_instance_id=message.process_instance_id,
                        envelope=message.envelope,
                        context=dict(context),
                        raised_by=policy.name,
                        **subject,
                    )
                )
        self._check_qos(policy, message, subject, context)

    def _check_qos(
        self, policy: MonitoringPolicy, message: StoredMessage, subject: dict, context: dict
    ) -> None:
        if not policy.qos_thresholds or self.qos_lookup is None:
            return
        for threshold in policy.qos_thresholds:
            observed = self.qos_lookup(
                threshold.metric, threshold.window, threshold.aggregate, message.target
            )
            if threshold.holds(observed):
                continue
            self.violations_raised += 1
            code = policy.classify_as or FaultCode.SLA_VIOLATION
            violation_context = dict(context)
            violation_context["violated_metric"] = threshold.metric
            violation_context["observed_value"] = observed
            violation_context["threshold_value"] = threshold.value
            self._raise(
                MASCEvent(
                    name=f"fault.{code.value}",
                    time=self.env.now,
                    process_instance_id=message.process_instance_id,
                    envelope=message.envelope,
                    context=violation_context,
                    raised_by=policy.name,
                    **subject,
                )
            )

    def _extract_context(
        self, policy: MonitoringPolicy, envelope: SoapEnvelope
    ) -> dict[str, Any]:
        context: dict[str, Any] = {}
        if envelope.body is None:
            return context
        for variable, xpath in policy.extract.items():
            compiled = self._xpath_cache.get(xpath)
            if compiled is None:
                compiled = XPath(xpath)
                self._xpath_cache[xpath] = compiled
            context[variable] = _coerce(compiled.value(envelope.body))
        return context

    def _raise(self, event: MASCEvent) -> None:
        for sink in self._sinks:
            sink(event)


def _coerce(text: str | None) -> Any:
    if text is None:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text in ("true", "false"):
        return text == "true"
    return text
