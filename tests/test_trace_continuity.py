"""Cross-shard trace continuity under crash, failover and adaptation.

The tentpole scenario: a sharded fleet mediates a partitioned Retailer
workload while one member service goes dark (burning the SLO budget) and
one bus is crashed mid-run (forcing VEP failover and leader-driven
recovery). The ``masc:TraceContext`` wire header must keep each of those
journeys a *single* trace: client mediation root → VEP → send → SLO
violation (via the latency exemplar) → the leader's Adaptation Manager —
even when the chain crosses buses. Asserted from the exported JSONL, the
same artifact ``python -m repro trace`` consumes.
"""

import json

import pytest

from repro.experiments.fleet import run_fleet_storm
from repro.observability import JsonlExporter, Tracer, read_spans_jsonl

#: Deterministic at this seed: bus-1 crashes at t=1.5 while retailerA is
#: dark for t∈[0.5, 3.5), so SLO violations and VEP failover overlap.
SCENARIO = dict(
    seed=7,
    shards=3,
    partitions=6,
    clients_per_partition=2,
    requests=30,
    slo=True,
    crash_bus="bus-1",
    crash_at=1.5,
    outage_endpoint="http://scm/retailerA",
    outage_at=0.5,
    outage_duration=3.0,
)


def _run_traced(path):
    tracer = Tracer()
    tracer.add_exporter(JsonlExporter(path))
    result = run_fleet_storm(tracer=tracer, **SCENARIO)
    tracer.close()
    return result


@pytest.fixture(scope="module")
def continuity(tmp_path_factory):
    path = tmp_path_factory.mktemp("continuity") / "spans.jsonl"
    result = _run_traced(path)
    return result, read_spans_jsonl(path)


class TestScenarioFires:
    def test_crash_outage_and_slo_all_happened(self, continuity):
        result, spans = continuity
        assert result.crash_time == 1.5
        assert result.slo_events > 0
        assert result.forwarded_events > 0
        names = {span.name for span in spans}
        assert "federation.bus.crash" in names
        assert "federation.vep.failover" in names
        assert "slo.violation" in names
        assert "wsbus.adaptation.event" in names


class TestTraceContinuity:
    def test_one_trace_id_spans_client_to_leader_adaptation(self, continuity):
        result, spans = continuity
        by_id = {span.span_id: span for span in spans}
        events = [span for span in spans if span.name == "wsbus.adaptation.event"]
        assert events
        cross_bus_chains = 0
        for event in events:
            # Every adaptation event handled during the run must chain,
            # without a broken parent link, back to a client request root.
            chain = [event]
            cursor = event
            while cursor.parent_id is not None:
                assert cursor.parent_id in by_id, (
                    f"{cursor.name} {cursor.span_id} has an unexported parent"
                )
                cursor = by_id[cursor.parent_id]
                chain.append(cursor)
            root = chain[-1]
            assert root.name == "wsbus.mediate"
            assert len({span.trace_id for span in chain}) == 1
            assert "slo.violation" in {span.name for span in chain}
            # The event landed on the leader's Adaptation Manager.
            assert event.attributes.get("bus") == result.leader
            buses = {span.attributes.get("bus") for span in chain} - {None}
            if len(buses) >= 2:
                cross_bus_chains += 1
        # At least one chain crossed buses: the violation was observed on
        # a follower shard and adapted on the leader.
        assert cross_bus_chains > 0

    def test_member_leg_spans_join_the_client_trace(self, continuity):
        _result, spans = continuity
        by_id = {span.span_id: span for span in spans}
        exchanges = [span for span in spans if span.name == "net.exchange"]
        assert exchanges
        for exchange in exchanges:
            parent = by_id[exchange.parent_id]
            assert parent.name == "wsbus.send"
            assert parent.trace_id == exchange.trace_id

    def test_faulted_sends_carry_error_status_in_the_same_trace(self, continuity):
        _result, spans = continuity
        failed = [
            span
            for span in spans
            if span.name == "wsbus.send" and span.status != "ok"
        ]
        # The outage produced failed deliveries, traced like the rest.
        assert failed
        traces = {span.trace_id for span in spans}
        assert all(span.trace_id in traces for span in failed)


class TestDeterminism:
    def test_same_seed_same_spans_byte_for_byte(self, continuity, tmp_path):
        _result, first = continuity
        path = tmp_path / "repeat.jsonl"
        _run_traced(path)
        second = read_spans_jsonl(path)

        def canonical(spans):
            # Message ids come from a process-global counter, so a repeat
            # run in the same process numbers them differently; rename by
            # first appearance (a bijection) and compare everything else
            # byte for byte.
            renames = {}
            out = []
            for span in spans:
                record = span.to_dict()
                correlation = record["correlation_id"]
                if correlation is not None:
                    record["correlation_id"] = renames.setdefault(
                        correlation, f"corr-{len(renames):06d}"
                    )
                out.append(json.dumps(record, sort_keys=True))
            return out

        assert canonical(first) == canonical(second)
