"""WSDL-style service contracts.

Services are treated as black boxes behind a contract: named operations with
input/output message schemas and declared faults. The wsBus monitoring
service validates "that exchanged messages between participant services...
conform to the service contract expected by the service composition"; the
validation entry points live here.
"""

from repro.wsdl.contract import (
    ContractViolation,
    MessageSchema,
    Operation,
    PartSchema,
    ServiceContract,
)
from repro.wsdl.wsdl_xml import WSDL_NS, WsdlError, contract_to_wsdl, wsdl_to_contract

__all__ = [
    "ContractViolation",
    "MessageSchema",
    "Operation",
    "PartSchema",
    "ServiceContract",
    "WSDL_NS",
    "WsdlError",
    "contract_to_wsdl",
    "wsdl_to_contract",
]
