"""Simulation-kernel fast-path benchmarks.

Measures the two halves of the kernel optimization and the end-to-end win,
and writes the numbers to ``BENCH_kernel.json`` (repo root) so CI can
archive them:

- events/sec through the raw simulation core (timeout churn),
- ``SoapEnvelope.copy`` (header-shallow, cache-carrying) against the
  reference ``deep_copy`` it replaced,
- Table 1 wall-clock sequential (``jobs=1``) vs sharded (``jobs=4``).

Shape assertions are deliberately loose (CI machines vary); the honest
numbers live in the JSON artifact.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.experiments import regenerate_table1
from repro.simulation import Environment
from repro.soap import SoapEnvelope
from repro.xmlutils import Element

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

_RESULTS: dict = {}


def _record(section: str, payload: dict) -> None:
    _RESULTS[section] = payload
    RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _ticker(env, count):
    for _ in range(count):
        yield env.timeout(0.001)


def test_event_throughput_microbench(benchmark):
    """Raw kernel speed: schedule and process timeout events."""
    events = 20_000

    def run():
        env = Environment()
        for _ in range(8):
            env.process(_ticker(env, events // 8))
        env.run()
        return env.now

    benchmark.pedantic(run, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    events_per_sec = events / seconds
    _record(
        "event_throughput",
        {"events": events, "seconds_mean": seconds, "events_per_sec": events_per_sec},
    )
    print(f"\n  {events_per_sec:,.0f} events/sec")
    assert events_per_sec > 50_000  # loose floor: a laptop does millions


def _sample_envelope() -> SoapEnvelope:
    envelope = SoapEnvelope.request(
        "http://svc/a", "urn:op:x", Element("q", text="x" * 64), padding=4096
    )
    envelope.add_header(Element("h", text="meta"))
    envelope.size_bytes  # warm the cache, as middleware hot paths do
    return envelope


def test_envelope_copy_fast_path(benchmark):
    """Header-shallow copy vs the deep reference implementation."""
    envelope = _sample_envelope()
    iterations = 2_000

    def fast():
        for _ in range(iterations):
            envelope.copy().size_bytes

    def deep():
        for _ in range(iterations):
            envelope.deep_copy().size_bytes

    start = time.perf_counter()
    deep()
    deep_seconds = time.perf_counter() - start
    benchmark.pedantic(fast, rounds=3, iterations=1)
    fast_seconds = benchmark.stats.stats.mean
    speedup = deep_seconds / fast_seconds
    _record(
        "envelope_copy",
        {
            "iterations": iterations,
            "deep_copy_seconds": deep_seconds,
            "copy_seconds": fast_seconds,
            "speedup": speedup,
        },
    )
    print(f"\n  copy() {speedup:.1f}x faster than deep_copy()")
    assert speedup > 2.0


def test_table1_end_to_end_jobs1_vs_jobs4(benchmark):
    """The sharded runner on the real Table 1 workload (reduced volume)."""
    kwargs = dict(seeds=(11, 23, 47), clients=2, requests=80)

    start = time.perf_counter()
    sequential = regenerate_table1(jobs=1, **kwargs)
    jobs1_seconds = time.perf_counter() - start

    def sharded():
        return regenerate_table1(jobs=4, **kwargs)

    rows = benchmark.pedantic(sharded, rounds=1, iterations=1)
    jobs4_seconds = benchmark.stats.stats.mean
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    _record(
        "table1_end_to_end",
        {
            "seeds": list(kwargs["seeds"]),
            "clients": kwargs["clients"],
            "requests": kwargs["requests"],
            "cpu_count": cpus,
            "jobs1_seconds": jobs1_seconds,
            "jobs4_seconds": jobs4_seconds,
            "speedup": jobs1_seconds / jobs4_seconds,
        },
    )
    print(
        f"\n  jobs=1 {jobs1_seconds:.2f}s  jobs=4 {jobs4_seconds:.2f}s "
        f"({jobs1_seconds / jobs4_seconds:.2f}x on {cpus} CPU(s))"
    )
    # Identical merged rows — the pool must not change the science.
    assert rows == sequential
    # The speedup scales with cores; on a single-core box the pool can only
    # add overhead, so the hard assertion is "bounded overhead" there and
    # "actually faster" wherever a second core exists.
    if cpus and cpus >= 2:
        assert jobs4_seconds < jobs1_seconds
    else:
        assert jobs4_seconds < jobs1_seconds * 2.0
