"""SOAP envelope model.

An envelope is addressing headers + optional extension headers + a body that
holds either a payload element or a fault. Serialization produces real XML;
the serialized size feeds the transport's size-dependent latency model
(Figure 5 of the paper sweeps request sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soap.addressing import AddressingHeaders
from repro.soap.faults import SoapFault
from repro.xmlutils import Element, QName, XmlError, parse_xml, serialize_xml

__all__ = ["SOAP_ENV_NS", "SoapEnvelope", "SoapHeader"]

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"


@dataclass
class SoapHeader:
    """An extension header block (anything beyond addressing)."""

    element: Element
    must_understand: bool = False


@dataclass
class SoapEnvelope:
    """One SOAP message: headers plus a body payload or fault."""

    addressing: AddressingHeaders = field(default_factory=AddressingHeaders)
    headers: list[SoapHeader] = field(default_factory=list)
    body: Element | None = None
    fault: SoapFault | None = None
    #: Extra padding bytes, used by workload generators to sweep request
    #: sizes without fabricating huge payload trees.
    padding: int = 0

    def __post_init__(self) -> None:
        if self.body is not None and self.fault is not None:
            raise ValueError("an envelope carries either a body payload or a fault, not both")

    # -- classification --------------------------------------------------------

    @property
    def is_fault(self) -> bool:
        return self.fault is not None

    @property
    def action(self) -> str | None:
        return self.addressing.action

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def request(
        cls,
        to: str,
        action: str,
        body: Element,
        reply_to: str | None = None,
        padding: int = 0,
    ) -> "SoapEnvelope":
        """A request message addressed to ``to`` with the given WSA action."""
        return cls(
            addressing=AddressingHeaders(to=to, action=action, reply_to=reply_to),
            body=body,
            padding=padding,
        )

    def reply(self, body: Element, padding: int = 0) -> "SoapEnvelope":
        """A success reply correlated to this request."""
        return SoapEnvelope(
            addressing=self.addressing.for_reply(),
            body=body,
            padding=padding,
        )

    def reply_fault(self, fault: SoapFault) -> "SoapEnvelope":
        """A fault reply correlated to this request."""
        return SoapEnvelope(addressing=self.addressing.for_reply(), fault=fault)

    def copy(self) -> "SoapEnvelope":
        """A deep copy (used when broadcasting to multiple targets)."""
        return SoapEnvelope(
            addressing=self.addressing,
            headers=[SoapHeader(h.element.copy(), h.must_understand) for h in self.headers],
            body=self.body.copy() if self.body is not None else None,
            fault=self.fault,
            padding=self.padding,
        )

    def header(self, name: QName | str) -> Element | None:
        """The first extension header with the given qualified name."""
        wanted = name if isinstance(name, QName) else QName.parse(name)
        for header in self.headers:
            if header.element.name == wanted:
                return header.element
        return None

    def add_header(self, element: Element, must_understand: bool = False) -> None:
        self.headers.append(SoapHeader(element, must_understand))

    # -- XML mapping --------------------------------------------------------------

    def to_element(self) -> Element:
        envelope = Element(QName(SOAP_ENV_NS, "Envelope"))
        header = envelope.add(QName(SOAP_ENV_NS, "Header"))
        for block in self.addressing.to_elements():
            header.append(block)
        for extension in self.headers:
            child = extension.element.copy()
            if extension.must_understand:
                child.attributes[QName(SOAP_ENV_NS, "mustUnderstand").clark()] = "1"
            header.append(child)
        body = envelope.add(QName(SOAP_ENV_NS, "Body"))
        if self.fault is not None:
            body.append(self.fault.to_element())
        elif self.body is not None:
            body.append(self.body.copy())
        return envelope

    def to_xml(self) -> str:
        return serialize_xml(self.to_element())

    @property
    def size_bytes(self) -> int:
        """Serialized size plus padding; drives transport latency."""
        return len(self.to_xml().encode()) + self.padding

    @classmethod
    def from_element(cls, element: Element) -> "SoapEnvelope":
        if element.name != QName(SOAP_ENV_NS, "Envelope"):
            raise XmlError(f"not a SOAP envelope: {element.name}")
        header = element.find(QName(SOAP_ENV_NS, "Header"))
        body = element.find(QName(SOAP_ENV_NS, "Body"))
        if body is None:
            raise XmlError("SOAP envelope without a Body")
        addressing_blocks: list[Element] = []
        extensions: list[SoapHeader] = []
        mu_attr = QName(SOAP_ENV_NS, "mustUnderstand").clark()
        if header is not None:
            from repro.soap.addressing import MASC_NS, WSA_NS

            for child in header.children:
                if child.name.namespace == WSA_NS or (
                    child.name.namespace == MASC_NS and child.name.local == "ProcessInstanceID"
                ):
                    addressing_blocks.append(child)
                else:
                    extensions.append(
                        SoapHeader(child.copy(), child.attributes.get(mu_attr) == "1")
                    )
        fault: SoapFault | None = None
        payload: Element | None = None
        if body.children:
            first = body.children[0]
            if first.name == QName(SOAP_ENV_NS, "Fault"):
                fault = SoapFault.from_element(first)
            else:
                payload = first.copy()
        return cls(
            addressing=AddressingHeaders.from_elements(addressing_blocks),
            headers=extensions,
            body=payload,
            fault=fault,
        )

    @classmethod
    def from_xml(cls, text: str) -> "SoapEnvelope":
        return cls.from_element(parse_xml(text))
