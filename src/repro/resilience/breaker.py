"""Per-endpoint circuit breakers.

The recovery literature the ISSUE cites (Saboohi & Kareem, "Requirements
of a Recovery Solution for Failure of Composite Web Services") argues a
recovery solution must *detect and isolate* a failed constituent rather
than blindly re-invoke it. The breaker is that isolation primitive: it
watches the invocation outcomes already flowing past the QoS Measurement
Service observer hook and, once an endpoint is evidently broken, makes
the cost of discovering "still broken" zero by failing fast.

State machine (the classic three states):

    CLOSED --(failure-rate or consecutive-failure threshold)--> OPEN
    OPEN   --(open_seconds elapsed)--> HALF_OPEN
    HALF_OPEN --(all probes succeed)--> CLOSED
    HALF_OPEN --(any probe fails)-----> OPEN
    HALF_OPEN --(probe outcome lost for open_seconds)--> OPEN

The last edge reclaims wedged probes: an admitted half-open probe whose
request is shed, bulkhead-rejected, or lost mid-flight never reports an
outcome, and without a clock-based escape the probe budget would stay
exhausted and the breaker would reject forever.

Everything is driven by the simulation clock, so a fixed seed yields a
bit-identical transition log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.policy.actions import CircuitBreakerAction

__all__ = ["BreakerState", "BreakerTransition", "CircuitBreaker"]


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerTransition:
    """One edge of the breaker state machine, for audit and metrics."""

    time: float
    endpoint: str
    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """Outcome-driven admission control for one endpoint.

    ``clock`` is a zero-argument callable returning the current simulation
    time (``lambda: env.now``). ``on_transition`` receives each
    :class:`BreakerTransition` as it happens (the resilience service uses
    it to export metrics and span events).
    """

    def __init__(
        self,
        endpoint: str,
        config: CircuitBreakerAction,
        clock,
        on_transition=None,
    ) -> None:
        self.endpoint = endpoint
        self.config = config
        self._clock = clock
        self._on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.transitions: list[BreakerTransition] = []
        self._outcomes: deque[bool] = deque(maxlen=config.window)
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        #: Probes admitted / succeeded since entering HALF_OPEN.
        self._probes_admitted = 0
        self._probes_succeeded = 0
        #: Clock reading of the latest probe admission, for reclaiming
        #: probes whose outcome never arrives.
        self._probe_admitted_at: float | None = None

    # -- admission ---------------------------------------------------------------

    def allow_request(self) -> bool:
        """Admission decision at send time; consumes a probe in half-open."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if not self._open_interval_elapsed():
                return False
            self._transition(BreakerState.HALF_OPEN, "open interval elapsed")
        elif self._probe_timed_out():
            self._transition(BreakerState.OPEN, "half-open probe timed out")
            return False
        if self._probes_admitted < self.config.half_open_probes:
            self._probes_admitted += 1
            self._probe_admitted_at = self._clock()
            return True
        return False

    def would_allow(self) -> bool:
        """Peek used by selection filtering; never consumes probe budget.

        Selection may inspect every member before the VEP commits to one,
        so this must not count as an admission — but it does reclaim a
        timed-out probe, because a wedged breaker whose endpoint selection
        keeps filtering out would otherwise never see another
        ``allow_request`` call to clear it.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            return self._open_interval_elapsed()
        if self._probe_timed_out():
            self._transition(BreakerState.OPEN, "half-open probe timed out")
            return False
        return self._probes_admitted < self.config.half_open_probes

    def _probe_timed_out(self) -> bool:
        """True when every half-open probe was admitted ``open_seconds``
        ago or more without an outcome resolving the state."""
        return (
            self._probes_admitted >= self.config.half_open_probes
            and self._probe_admitted_at is not None
            and self._clock() - self._probe_admitted_at >= self.config.open_seconds
        )

    def _open_interval_elapsed(self) -> bool:
        return (
            self._opened_at is not None
            and self._clock() - self._opened_at >= self.config.open_seconds
        )

    # -- outcome feed ------------------------------------------------------------

    def record_success(self) -> None:
        self._outcomes.append(True)
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probes_succeeded += 1
            if self._probes_succeeded >= self.config.half_open_probes:
                self._transition(BreakerState.CLOSED, "probe succeeded")
                self._outcomes.clear()

    def record_failure(self) -> None:
        self._outcomes.append(False)
        self._consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, "probe failed")
            return
        if self.state is BreakerState.CLOSED:
            reason = self._trip_reason()
            if reason is not None:
                self._transition(BreakerState.OPEN, reason)

    def _trip_reason(self) -> str | None:
        if self._consecutive_failures >= self.config.consecutive_failures:
            return f"{self._consecutive_failures} consecutive failures"
        if len(self._outcomes) >= self.config.min_calls:
            failures = sum(1 for ok in self._outcomes if not ok)
            rate = failures / len(self._outcomes)
            if rate >= self.config.failure_rate_threshold:
                return f"failure rate {rate:.2f} over {len(self._outcomes)} calls"
        return None

    # -- bookkeeping ---------------------------------------------------------------

    def _transition(self, to_state: BreakerState, reason: str) -> None:
        transition = BreakerTransition(
            time=self._clock(),
            endpoint=self.endpoint,
            from_state=self.state.value,
            to_state=to_state.value,
            reason=reason,
        )
        self.state = to_state
        if to_state is BreakerState.OPEN:
            self._opened_at = self._clock()
        self._probes_admitted = 0
        self._probes_succeeded = 0
        self._probe_admitted_at = None
        self.transitions.append(transition)
        if self._on_transition is not None:
            self._on_transition(transition)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CircuitBreaker {self.endpoint} {self.state.value}>"
