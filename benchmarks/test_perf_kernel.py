"""Simulation-kernel and sharded-runner benchmarks (kernel v2).

Measures each layer of the kernel-v2 optimization stack and the end-to-end
win, and writes the numbers to ``BENCH_kernel.json`` (repo root) so CI can
archive them:

- events/sec through the raw simulation core (timeout churn),
- ``SoapEnvelope.copy`` (header-shallow, cache-carrying) against the
  reference ``deep_copy`` it replaced,
- compiled policy-condition expressions against the reference AST walker,
- the Table 1 workload end to end: wall-clock, true events/sec (via the
  kernel's event counter), and the speedup against the frozen PR 3
  baseline,
- a jobs-scaling sweep (1, 2, 4, 8 workers) over the same workload.

Shape assertions are deliberately loose (CI machines vary); the honest
numbers live in the JSON artifact. The jobs=4-beats-jobs=1 gate is
conditioned on ``cpu_count > 1``: on a single-core box the pool can only
add overhead, so the hard assertion there is "bounded overhead".
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.experiments import regenerate_table1
from repro.orchestration.expressions import Expression, _compiled, _evaluate
from repro.simulation import Environment
from repro.soap import SoapEnvelope
from repro.xmlutils import Element

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: The PR 3 numbers this branch is measured against, frozen from the
#: BENCH_kernel.json that PR 3 committed (same reduced Table 1 workload:
#: seeds (11, 23, 47), 2 clients, 80 requests/client, 1-CPU CI box).
PR3_BASELINE = {
    "event_throughput_events_per_sec": 518_506.0,
    "table1_jobs1_seconds": 0.682,
    "table1_jobs4_seconds": 1.241,
    "table1_jobs4_speedup": 0.549,
}

_RESULTS: dict = {"baseline_pr3": PR3_BASELINE}


def _record(section: str, payload: dict) -> None:
    _RESULTS[section] = payload
    RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _cpu_count() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _ticker(env, count):
    for _ in range(count):
        yield env.timeout(0.001)


def test_event_throughput_microbench(benchmark):
    """Raw kernel speed: schedule and process timeout events."""
    events = 20_000

    def run():
        env = Environment()
        for _ in range(8):
            env.process(_ticker(env, events // 8))
        env.run()
        return env.now

    benchmark.pedantic(run, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.min
    events_per_sec = events / seconds
    _record(
        "event_throughput",
        {
            "events": events,
            "seconds_min": seconds,
            "events_per_sec": events_per_sec,
            "vs_pr3": events_per_sec / PR3_BASELINE["event_throughput_events_per_sec"],
        },
    )
    print(f"\n  {events_per_sec:,.0f} events/sec")
    assert events_per_sec > 50_000  # loose floor: a laptop does millions


def _sample_envelope() -> SoapEnvelope:
    envelope = SoapEnvelope.request(
        "http://svc/a", "urn:op:x", Element("q", text="x" * 64), padding=4096
    )
    envelope.add_header(Element("h", text="meta"))
    envelope.size_bytes  # warm the cache, as middleware hot paths do
    return envelope


def test_envelope_copy_fast_path(benchmark):
    """Header-shallow copy vs the deep reference implementation."""
    envelope = _sample_envelope()
    iterations = 2_000

    def fast():
        for _ in range(iterations):
            envelope.copy().size_bytes

    def deep():
        for _ in range(iterations):
            envelope.deep_copy().size_bytes

    start = time.perf_counter()
    deep()
    deep_seconds = time.perf_counter() - start
    benchmark.pedantic(fast, rounds=3, iterations=1)
    fast_seconds = benchmark.stats.stats.mean
    speedup = deep_seconds / fast_seconds
    _record(
        "envelope_copy",
        {
            "iterations": iterations,
            "deep_copy_seconds": deep_seconds,
            "copy_seconds": fast_seconds,
            "speedup": speedup,
        },
    )
    print(f"\n  copy() {speedup:.1f}x faster than deep_copy()")
    assert speedup > 2.0


def test_expression_compile_fast_path(benchmark):
    """Compiled policy conditions vs the reference AST walker."""
    source = "response_time > threshold * 1.5 and (failures >= 3 or availability < 0.95)"
    variables = {
        "response_time": 2.5,
        "threshold": 1.0,
        "failures": 4,
        "availability": 0.99,
    }
    expression = Expression(source)
    body, _run = _compiled(source)
    iterations = 5_000

    def compiled():
        for _ in range(iterations):
            expression.evaluate(variables)

    def walker():
        for _ in range(iterations):
            _evaluate(body, variables)

    start = time.perf_counter()
    walker()
    walker_seconds = time.perf_counter() - start
    benchmark.pedantic(compiled, rounds=3, iterations=1)
    compiled_seconds = benchmark.stats.stats.mean
    speedup = walker_seconds / compiled_seconds
    _record(
        "expression_eval",
        {
            "iterations": iterations,
            "walker_seconds": walker_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup": speedup,
        },
    )
    print(f"\n  compiled conditions {speedup:.1f}x faster than the AST walker")
    assert speedup > 1.5
    assert expression.evaluate(variables) is _evaluate(body, variables)


TABLE1_KWARGS = dict(seeds=(11, 23, 47), clients=2, requests=80)


def test_table1_end_to_end_jobs1_vs_jobs4(benchmark):
    """The sharded runner on the real Table 1 workload (reduced volume)."""
    regenerate_table1(jobs=1, **TABLE1_KWARGS)  # warm import/intern caches

    jobs1_seconds = float("inf")
    events_per_run = 0
    for _ in range(3):
        before = Environment.total_events_processed
        start = time.perf_counter()
        sequential = regenerate_table1(jobs=1, **TABLE1_KWARGS)
        elapsed = time.perf_counter() - start
        events_per_run = Environment.total_events_processed - before
        jobs1_seconds = min(jobs1_seconds, elapsed)

    def sharded():
        return regenerate_table1(jobs=4, **TABLE1_KWARGS)

    rows = benchmark.pedantic(sharded, rounds=2, iterations=1)
    jobs4_seconds = benchmark.stats.stats.min
    cpus = _cpu_count()
    events_per_sec = events_per_run / jobs1_seconds
    speedup_vs_pr3 = PR3_BASELINE["table1_jobs1_seconds"] / jobs1_seconds
    _record(
        "table1_end_to_end",
        {
            "seeds": list(TABLE1_KWARGS["seeds"]),
            "clients": TABLE1_KWARGS["clients"],
            "requests": TABLE1_KWARGS["requests"],
            "cpu_count": cpus,
            "jobs1_seconds": jobs1_seconds,
            "jobs4_seconds": jobs4_seconds,
            "speedup": jobs1_seconds / jobs4_seconds,
            "events_processed": events_per_run,
            "events_per_sec": events_per_sec,
            "workload_speedup_vs_pr3_jobs1": speedup_vs_pr3,
            "byte_identical": rows == sequential,
        },
    )
    print(
        f"\n  jobs=1 {jobs1_seconds:.2f}s ({events_per_sec:,.0f} events/sec, "
        f"{speedup_vs_pr3:.2f}x the PR 3 wall-clock)  jobs=4 {jobs4_seconds:.2f}s "
        f"({jobs1_seconds / jobs4_seconds:.2f}x on {cpus} CPU(s))"
    )
    # Identical merged rows — the pool must not change the science.
    assert rows == sequential
    # The same workload that took PR 3 0.682s of kernel time must now clear
    # 3x; wall-clock on the same box is the comparable ratio (the event
    # *count* also dropped — fewer wrapper processes per request).
    assert speedup_vs_pr3 > 2.0  # loose floor for slow CI; honest number in JSON
    # The speedup scales with cores; on a single-core box the pool can only
    # add overhead, so the hard assertion is "bounded overhead" there and
    # "actually faster" wherever a second core exists.
    if cpus and cpus >= 2:
        assert jobs4_seconds < jobs1_seconds
    else:
        assert jobs4_seconds < jobs1_seconds * 2.0


def test_table1_jobs_scaling(benchmark):
    """Speedup-vs-serial across worker counts, recorded over time in CI."""
    regenerate_table1(jobs=1, **TABLE1_KWARGS)  # warm

    def timed(jobs: int) -> float:
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            regenerate_table1(jobs=jobs, **TABLE1_KWARGS)
            best = min(best, time.perf_counter() - start)
        return best

    benchmark.pedantic(lambda: timed(1), rounds=1, iterations=1)
    serial = timed(1)
    cpus = _cpu_count()
    scaling = {}
    for jobs in (2, 4, 8):
        seconds = timed(jobs)
        scaling[str(jobs)] = {
            "seconds": seconds,
            "speedup_vs_serial": serial / seconds,
        }
    _record(
        "jobs_scaling",
        {"cpu_count": cpus, "jobs1_seconds": serial, "jobs": scaling},
    )
    for jobs, entry in scaling.items():
        print(
            f"\n  jobs={jobs}: {entry['seconds']:.2f}s "
            f"({entry['speedup_vs_serial']:.2f}x vs serial)"
        )
    if cpus and cpus >= 2:
        assert scaling["4"]["speedup_vs_serial"] > 1.0
