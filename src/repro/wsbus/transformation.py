"""Message Adaptation Service: transformation and enrichment modules.

"A Message Processing Module that handles data transformation and
enrichment to resolve incompatibilities between services registered with a
particular VEP (i.e., structural, value and encoding mismatches). Various
transformation patterns are supported, such as transform a message payload
from the one schema to another; attach additional data from external
sources...; split/merge messages; buffer multiple messages and aggregate
them into a single one... These transformation modules can be composed into
a pipeline to transform and relay messages."
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.soap import SoapEnvelope
from repro.wsbus.pipeline import ApplicabilityRule, MessageProcessingModule, PipelineContext
from repro.xmlutils import Element

__all__ = [
    "AggregatorModule",
    "EnrichmentModule",
    "MessageAdaptationService",
    "PayloadTransformModule",
    "SplitterModule",
]


class PayloadTransformModule(MessageProcessingModule):
    """Schema-to-schema payload mapping (structural + value mismatches).

    Declarative mapping: optionally rename the root element, rename parts,
    convert part values, and drop parts. Unmapped parts pass through.
    """

    def __init__(
        self,
        name: str = "payload-transform",
        rename_root: str | None = None,
        rename_parts: dict[str, str] | None = None,
        convert_values: dict[str, Callable[[str], str]] | None = None,
        drop_parts: tuple[str, ...] = (),
        direction: str = "request",  # request | response | both
        rule: ApplicabilityRule | None = None,
    ) -> None:
        super().__init__(name, rule)
        self.rename_root = rename_root
        self.rename_parts = dict(rename_parts or {})
        self.convert_values = dict(convert_values or {})
        self.drop_parts = set(drop_parts)
        self.direction = direction

    def transform(self, payload: Element) -> Element:
        root_name = self.rename_root if self.rename_root else payload.name
        transformed = Element(root_name, attributes=dict(payload.attributes))
        for child in payload.children:
            local = child.name.local
            if local in self.drop_parts:
                continue
            new_child = child.copy()
            if local in self.rename_parts:
                new_child = Element(
                    self.rename_parts[local],
                    attributes=dict(child.attributes),
                    text=child.text,
                    children=[grandchild.copy() for grandchild in child.children],
                )
            converter = self.convert_values.get(local)
            if converter is not None and new_child.text is not None:
                new_child.text = converter(new_child.text)
            transformed.append(new_child)
        return transformed

    def _apply(self, envelope: SoapEnvelope) -> SoapEnvelope:
        if envelope.body is None or envelope.is_fault:
            return envelope
        result = envelope.copy()
        result.body = self.transform(envelope.body)
        return result

    def process_request(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        if self.direction in ("request", "both"):
            return self._apply(envelope)
        return envelope

    def process_response(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        if self.direction in ("response", "both"):
            return self._apply(envelope)
        return envelope


class EnrichmentModule(MessageProcessingModule):
    """Attach additional data from an external source.

    ``source`` is called with (envelope, context) and returns a dict of
    part-name → text to append to the payload — modelling the paper's
    "attach additional data from external sources, such as Web services
    calls or from database queries".
    """

    def __init__(
        self,
        source: Callable[[SoapEnvelope, PipelineContext], dict[str, str]],
        name: str = "enrichment",
        direction: str = "request",
        rule: ApplicabilityRule | None = None,
    ) -> None:
        super().__init__(name, rule)
        self.source = source
        self.direction = direction

    def _apply(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        if envelope.body is None or envelope.is_fault:
            return envelope
        additions = self.source(envelope, context)
        if not additions:
            return envelope
        result = envelope.copy()
        assert envelope.body is not None
        # copy() shares the body tree; take a private copy before enriching
        # it in place so the original message is not mutated.
        result.body = envelope.body.copy()
        for part, text in additions.items():
            result.body.add(part, text=str(text))
        return result

    def process_request(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        if self.direction in ("request", "both"):
            return self._apply(envelope, context)
        return envelope

    def process_response(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        if self.direction in ("response", "both"):
            return self._apply(envelope, context)
        return envelope


class SplitterModule(MessageProcessingModule):
    """Split one message into several, one per repeated payload element.

    Used outside the linear pipeline (splitting changes message
    cardinality): the VEP or bus calls :meth:`split` and routes each part.
    """

    def __init__(self, item_element: str, name: str = "splitter") -> None:
        super().__init__(name)
        self.item_element = item_element

    def split(self, envelope: SoapEnvelope) -> list[SoapEnvelope]:
        if envelope.body is None:
            return [envelope]
        items = envelope.body.find_all(self.item_element)
        if not items:
            return [envelope]
        parts: list[SoapEnvelope] = []
        for item in items:
            part = envelope.copy()
            assert part.body is not None
            body = Element(envelope.body.name, attributes=dict(envelope.body.attributes))
            for child in envelope.body.children:
                if child.name.local != self.item_element:
                    body.append(child.copy())
            body.append(item.copy())
            part.body = body
            parts.append(part)
        return parts


class AggregatorModule(MessageProcessingModule):
    """Buffer messages and merge them into one.

    Collects payload children under a single root once ``batch_size``
    messages have been buffered (or on explicit :meth:`flush`).
    """

    def __init__(
        self, batch_size: int, root_element: str = "Aggregate", name: str = "aggregator"
    ) -> None:
        super().__init__(name)
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.root_element = root_element
        self._buffer: list[SoapEnvelope] = []

    def offer(self, envelope: SoapEnvelope) -> SoapEnvelope | None:
        """Buffer a message; returns the aggregate when the batch is full."""
        self._buffer.append(envelope)
        if len(self._buffer) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> SoapEnvelope | None:
        if not self._buffer:
            return None
        first = self._buffer[0]
        body = Element(self.root_element)
        for message in self._buffer:
            if message.body is not None:
                body.append(message.body.copy())
        self._buffer = []
        aggregate = first.copy()
        aggregate.body = body
        return aggregate

    @property
    def pending(self) -> int:
        return len(self._buffer)


class MessageAdaptationService:
    """Factory/registry for transformation modules attached to a VEP."""

    def __init__(self) -> None:
        self.modules: list[MessageProcessingModule] = []

    def add(self, module: MessageProcessingModule) -> MessageProcessingModule:
        self.modules.append(module)
        return module

    def transform_module(self, **kwargs: Any) -> PayloadTransformModule:
        return self.add(PayloadTransformModule(**kwargs))  # type: ignore[arg-type]

    def enrichment_module(self, source, **kwargs: Any) -> EnrichmentModule:
        return self.add(EnrichmentModule(source, **kwargs))  # type: ignore[arg-type]
