"""The observability layer: spans, metrics, exporters, correlation.

Covers the contract documented in ``docs/observability.md``: span
nesting and ID inheritance, cross-layer correlation of one self-adapting
request, JSONL round-trips, and — critically — that the disabled default
tracer adds zero allocations to the dispatch path.
"""

import json
import tracemalloc

import pytest

from conftest import ECHO_CONTRACT, EchoService
from repro.core import MASC
from repro.observability import (
    NULL_METRICS,
    NULL_TRACER,
    ConsoleSummaryExporter,
    InMemoryExporter,
    JsonlExporter,
    MetricsRegistry,
    Span,
    Tracer,
    correlation_id_for,
    read_spans_jsonl,
    render_trace_tree,
)
from repro.observability.tracing import NULL_SPAN
from repro.orchestration import Invoke, ProcessDefinition, Reply, Sequence
from repro.policy import (
    AdaptationPolicy,
    ExtendTimeoutAction,
    PolicyDocument,
    PolicyScope,
    RetryAction,
    serialize_policy_document,
)
from repro.soap import SoapEnvelope
from repro.wsbus import WsBus
from repro.xmlutils import Element


class TestSpanModel:
    def test_nesting_inherits_trace_and_correlation(self):
        tracer = Tracer(clock=lambda: 1.0)
        parent = tracer.start_span("vep.handle", correlation_id="msg-1")
        child = tracer.start_span("wsbus.retry", parent=parent)
        grandchild = tracer.start_span("wsbus.send", parent=child)
        assert child.parent_id == parent.span_id
        assert grandchild.trace_id == child.trace_id == parent.trace_id
        assert grandchild.correlation_id == "msg-1"

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer(clock=lambda: 0.0)
        first, second = tracer.start_span("a"), tracer.start_span("b")
        assert first.trace_id != second.trace_id
        assert first.span_id != second.span_id

    def test_ids_are_deterministic_counters(self):
        tracer = Tracer(clock=lambda: 0.0)
        span = tracer.start_span("x")
        assert span.span_id == "sp-000001" and span.trace_id == "tr-000001"

    def test_end_is_idempotent_and_exports_once(self):
        tracer = Tracer(clock=lambda: 2.0)
        memory = tracer.add_exporter(InMemoryExporter())
        span = tracer.start_span("x")
        span.end(status="recovered")
        span.end(status="overwritten")
        assert span.status == "recovered"
        assert len(memory.spans) == 1 and tracer.finished_count == 1

    def test_context_manager_records_exception_status(self):
        tracer = Tracer(clock=lambda: 0.0)
        with pytest.raises(ValueError):
            with tracer.span("x"):
                raise ValueError("boom")
        # A fresh span via the tracer still works and the failed one ended.
        memory = tracer.add_exporter(InMemoryExporter())
        with tracer.span("y") as span:
            pass
        assert span.ended
        assert memory.spans[0].status == "ok"

    def test_exception_exit_records_type_and_message_attributes(self):
        tracer = Tracer(clock=lambda: 0.0)
        memory = tracer.add_exporter(InMemoryExporter())
        with pytest.raises(ValueError):
            with tracer.span("x"):
                raise ValueError("boom")
        [span] = memory.spans
        assert span.status == "error:ValueError"
        assert span.attributes["exception.type"] == "ValueError"
        assert span.attributes["exception.message"] == "boom"

    def test_exception_exit_preserves_explicit_status_and_attributes(self):
        tracer = Tracer(clock=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("x") as span:
                span.status = "fault:Timeout"
                span.set_attribute("exception.type", "Timeout")
                raise RuntimeError("late")
        assert span.status == "fault:Timeout"
        assert span.attributes["exception.type"] == "Timeout"

    def test_messageless_exception_omits_message_attribute(self):
        tracer = Tracer(clock=lambda: 0.0)
        with pytest.raises(KeyError):
            with tracer.span("x") as span:
                raise KeyError()
        assert span.attributes["exception.type"] == "KeyError"
        assert "exception.message" not in span.attributes

    def test_events_are_timestamped_on_the_tracer_clock(self):
        now = {"t": 1.0}
        tracer = Tracer(clock=lambda: now["t"])
        span = tracer.start_span("x")
        now["t"] = 3.5
        span.add_event("happened", detail=1)
        assert span.events == [(3.5, "happened", {"detail": 1})]


class TestCorrelationIdFor:
    def test_prefers_process_instance_id(self):
        envelope = SoapEnvelope.request("http://svc/a", "urn:op:echo", Element("echoRequest"))
        envelope.addressing = envelope.addressing.with_process_instance("proc-000007")
        assert correlation_id_for(envelope) == "proc-000007"

    def test_falls_back_to_message_id(self):
        envelope = SoapEnvelope.request("http://svc/a", "urn:op:echo", Element("echoRequest"))
        assert correlation_id_for(envelope) == envelope.addressing.message_id

    def test_none_envelope(self):
        assert correlation_id_for(None) is None


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(clock=lambda: 1.25)
        tracer.add_exporter(JsonlExporter(path))
        span = tracer.start_span(
            "vep.handle", correlation_id="msg-5", attributes={"vep": "echo"}
        )
        span.add_event("member_selected", target="http://svc/a")
        span.end(status="fault:Timeout")
        tracer.close()
        [restored] = read_spans_jsonl(path)
        assert isinstance(restored, Span)
        assert restored.to_dict() == span.to_dict()

    def test_jsonl_exporter_is_a_context_manager(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(clock=lambda: 0.0)
        with JsonlExporter(path) as exporter:
            tracer.add_exporter(exporter)
            tracer.start_span("x").end()
        assert exporter.exported == 1
        assert len(read_spans_jsonl(path)) == 1
        exporter.close()  # idempotent: second close is a no-op

    def test_jsonl_lines_are_readable_before_close(self, tmp_path):
        # Line-buffered writes: a reader (or a crash) sees every complete
        # span line without waiting for close().
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(clock=lambda: 0.0)
        exporter = tracer.add_exporter(JsonlExporter(path))
        tracer.start_span("early").end()
        exporter.flush()
        assert [span.name for span in read_spans_jsonl(path)] == ["early"]
        tracer.close()

    def test_truncated_trailing_line_warns_not_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(clock=lambda: 0.0)
        with JsonlExporter(path) as exporter:
            tracer.add_exporter(exporter)
            tracer.start_span("kept").end()
            tracer.start_span("also-kept").end()
        # Simulate a crash mid-write: chop the final line in half.
        content = path.read_text(encoding="utf-8")
        path.write_text(content[: len(content) - 40], encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="truncated trailing"):
            spans = read_spans_jsonl(path)
        assert [span.name for span in spans] == ["kept"]

    def test_corruption_before_the_tail_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(clock=lambda: 0.0)
        with JsonlExporter(path) as exporter:
            tracer.add_exporter(exporter)
            tracer.start_span("a").end()
            tracer.start_span("b").end()
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][:10]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            read_spans_jsonl(path)

    def test_in_memory_find_and_grouping(self):
        tracer = Tracer(clock=lambda: 0.0)
        memory = tracer.add_exporter(InMemoryExporter())
        tracer.start_span("a", correlation_id="m1").end()
        tracer.start_span("b", correlation_id="m2").end()
        tracer.start_span("a", correlation_id="m2").end()
        assert len(memory.find(name="a")) == 2
        assert len(memory.find(correlation_id="m2")) == 2
        assert sorted(memory.by_correlation()) == ["m1", "m2"]

    def test_console_summary_renders_tree(self):
        tracer = Tracer(clock=lambda: 0.0)
        console = tracer.add_exporter(ConsoleSummaryExporter())
        parent = tracer.start_span("vep.handle")
        tracer.start_span("wsbus.retry", parent=parent).end()
        parent.end()
        rendered = console.render()
        assert "2 spans" in rendered
        assert rendered.index("vep.handle") < rendered.index("wsbus.retry")

    def test_render_trace_tree_indents_children(self):
        tracer = Tracer(clock=lambda: 0.0)
        memory = tracer.add_exporter(InMemoryExporter())
        parent = tracer.start_span("outer")
        tracer.start_span("inner", parent=parent).end()
        parent.end()
        lines = render_trace_tree(memory.spans).splitlines()
        outer = next(line for line in lines if "outer" in line)
        inner = next(line for line in lines if "inner" in line)
        assert len(inner) - len(inner.lstrip()) > len(outer) - len(outer.lstrip())


class TestMetrics:
    def test_counters_and_histograms(self):
        metrics = MetricsRegistry()
        metrics.counter("hits").inc()
        metrics.counter("hits").inc(2)
        for value in (0.1, 0.2, 0.3):
            metrics.histogram("latency").observe(value)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["hits"] == 3
        assert snapshot["histograms"]["latency"]["count"] == 3
        assert snapshot["histograms"]["latency"]["max"] == 0.3

    def test_histogram_percentiles_use_recent_window(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram("h", window=10)
        for value in range(100):
            histogram.observe(float(value))
        # Exact aggregates see everything; percentiles only the window.
        assert histogram.count == 100 and histogram.min == 0.0
        assert histogram.percentile(0) == 90.0

    def test_null_metrics_swallow_everything(self):
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.histogram("y").observe(1.0)
        assert NULL_METRICS.snapshot() == {"counters": {}, "histograms": {}}


class TestZeroOverheadDefault:
    def test_components_default_to_null_tracer(self, env, network):
        from repro.policy import PolicyRepository

        bus = WsBus(env, network, repository=PolicyRepository())
        assert bus.tracer is NULL_TRACER and bus.metrics is NULL_METRICS
        masc = MASC(seed=1)
        assert masc.engine.tracer is NULL_TRACER

    def test_null_tracer_adds_zero_allocations(self):
        """The disabled tracer's dispatch-path cost is a shared singleton:
        no net allocations per traced-site visit."""
        assert NULL_TRACER.start_span("wsbus.dispatch") is NULL_SPAN

        def dispatch_sites(n):
            for _ in range(n):
                span = NULL_TRACER.start_span("wsbus.dispatch")
                span.set_attribute("target", "http://svc/a")
                span.add_event("attempt", n=1)
                span.end(status="ok")

        tracemalloc.start()
        try:
            dispatch_sites(10)  # warm caches inside the traced region
            before = tracemalloc.get_traced_memory()[0]
            dispatch_sites(10_000)
            after = tracemalloc.get_traced_memory()[0]
        finally:
            tracemalloc.stop()
        assert after - before == 0


def _cross_layer_world(tracer):
    masc = MASC(seed=9, tracer=tracer)
    masc.deploy(EchoService(masc.env, "echo1", "http://svc/echo"))
    bus = WsBus(
        masc.env,
        masc.network,
        repository=masc.repository,
        registry=masc.registry,
        process_enforcement=masc.adaptation,
        member_timeout=3.0,
        tracer=tracer,
    )
    vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/echo"])
    document = PolicyDocument("traced")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="extend-then-retry",
            triggers=("fault.ServiceUnavailable", "fault.Timeout"),
            scope=PolicyScope(service_type="Echo"),
            actions=(
                ExtendTimeoutAction(extra_seconds=30.0),
                RetryAction(max_retries=5, delay_seconds=2.0),
            ),
            priority=10,
        )
    )
    masc.load_policies(serialize_policy_document(document))
    definition = ProcessDefinition(
        "caller",
        Sequence(
            "main",
            [
                Invoke(
                    "call",
                    operation="echo",
                    to=vep.address,
                    inputs={"text": "ping"},
                    extract={"echoed": "text"},
                    timeout_seconds=5.0,
                ),
                Reply("r", variable="echoed"),
            ],
        ),
    )
    return masc, bus, definition


class TestCrossLayerTrace:
    """The acceptance scenario: one traced self-adapting request."""

    @pytest.fixture
    def trace(self, tmp_path):
        tracer = Tracer()
        memory = tracer.add_exporter(InMemoryExporter())
        path = tmp_path / "trace.jsonl"
        tracer.add_exporter(JsonlExporter(path))
        masc, bus, definition = _cross_layer_world(tracer)
        endpoint = masc.network.endpoint("http://svc/echo")
        endpoint.available = False

        def repairer():
            yield masc.env.timeout(6.0)
            endpoint.available = True

        masc.env.process(repairer())
        instance = masc.engine.start(definition)
        assert masc.engine.run_to_completion(instance) == "ping@echo1"
        tracer.close()
        return instance, memory, read_spans_jsonl(path)

    def test_retry_and_policy_adaptation_share_correlation_id(self, trace):
        instance, _memory, spans = trace
        by_name = {span.name: span for span in spans}
        retry = by_name["wsbus.retry"]
        policy_enact = by_name["wsbus.policy.enact"]
        assert retry.correlation_id == policy_enact.correlation_id == instance.id

    def test_one_correlated_trace_spans_both_layers(self, trace):
        instance, memory, _spans = trace
        correlated = memory.find(correlation_id=instance.id)
        names = {span.name for span in correlated}
        # Messaging-layer correction...
        assert {"vep.handle", "wsbus.adaptation.recover", "wsbus.retry"} <= names
        # ...and process-layer customization, in the same correlation group.
        assert {"process.instance", "activity.invoke", "masc.enact"} <= names

    def test_cross_layer_parenting_links_enact_under_bus_policy_span(self, trace):
        _instance, memory, _spans = trace
        [policy_enact] = memory.find(name="wsbus.policy.enact")
        [masc_enact] = memory.find(name="masc.enact")
        assert masc_enact.parent_id == policy_enact.span_id
        assert masc_enact.trace_id == policy_enact.trace_id

    def test_timeout_extension_is_visible_on_the_instance_span(self, trace):
        _instance, memory, _spans = trace
        [instance_span] = memory.find(name="process.instance")
        assert any(name == "timeout_extended" for _, name, _ in instance_span.events)
        assert instance_span.status == "ok"

    def test_retry_span_records_failed_attempts(self, trace):
        _instance, memory, _spans = trace
        [retry] = memory.find(name="wsbus.retry")
        assert retry.status == "recovered"
        failed = [event for _, name, event in retry.events if name == "attempt_failed"]
        assert failed and all(e["fault"] == "ServiceUnavailable" for e in failed)

    def test_jsonl_file_holds_the_full_span_set(self, trace):
        _instance, memory, spans = trace
        assert len(spans) == len(memory.spans)
        assert {s.span_id for s in spans} == {s.span_id for s in memory.spans}


class TestBusOnlyCorrelation:
    def test_workload_request_correlates_on_message_id(self, env, network, container):
        """Without an orchestrating process the original message ID is the
        correlation key — substitution's fresh message IDs never leak in."""
        from repro.policy import PolicyRepository

        service = EchoService(env, "echo1", "http://svc/echo")
        container.deploy(service)
        repository = PolicyRepository()
        document = PolicyDocument("retry-doc")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="retry",
                triggers=("fault.*",),
                scope=PolicyScope(service_type="Echo"),
                actions=(RetryAction(max_retries=5, delay_seconds=1.0),),
            )
        )
        repository.load(document)
        tracer = Tracer()
        memory = tracer.add_exporter(InMemoryExporter())
        bus = WsBus(env, network, repository=repository, tracer=tracer)
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/echo"])
        endpoint = network.endpoint("http://svc/echo")
        endpoint.available = False

        def repairer():
            yield env.timeout(2.5)
            endpoint.available = True

        env.process(repairer())
        request = SoapEnvelope.request(
            vep.address,
            "urn:op:echo",
            ECHO_CONTRACT.operation("echo").input.build(text="hi"),
        )
        message_id = request.addressing.message_id

        def client():
            response = yield from network.send(request, timeout=60.0)
            return response

        process = env.process(client())
        env.run(process)
        correlated = {span.name for span in memory.find(correlation_id=message_id)}
        assert {"vep.handle", "wsbus.policy.enact", "wsbus.retry"} <= correlated

    def test_metrics_surface_in_bus_stats_summary(self, env, network, container):
        from repro.policy import PolicyRepository

        container.deploy(EchoService(env, "echo1", "http://svc/echo"))
        metrics = MetricsRegistry()
        bus = WsBus(env, network, repository=PolicyRepository(), metrics=metrics)
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/echo"])
        request = SoapEnvelope.request(
            vep.address,
            "urn:op:echo",
            ECHO_CONTRACT.operation("echo").input.build(text="hi"),
        )

        def client():
            yield from network.send(request, timeout=10.0)

        env.run(env.process(client()))
        summary = bus.stats_summary()
        assert summary["metrics"]["counters"]["wsbus.vep.requests"] == 1
        assert summary["metrics"]["histograms"]["wsbus.vep.handle.seconds"]["count"] == 1
