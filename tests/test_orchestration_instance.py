"""Unit tests for instance control: suspend/resume, terminate, deadlines,
dynamic modification, and the engine's runtime services."""

import pytest

from conftest import EchoService, SlowEchoService
from repro.orchestration import (
    Assign,
    Delay,
    Empty,
    Invoke,
    ModificationError,
    PersistenceService,
    ProcessDefinition,
    ProcessFault,
    ProcessModifier,
    Reply,
    Sequence,
    TrackingService,
    WorkflowEngine,
)
from repro.orchestration.instance import InstanceStatus
from repro.services import ServiceRegistry


@pytest.fixture
def engine(env, network, container):
    container.deploy(EchoService(env, "echo1", "http://test/echo"))
    container.deploy(SlowEchoService(env, "slow", "http://test/slow", delay=50.0))
    return WorkflowEngine(env, network=network)


def three_step_definition():
    return ProcessDefinition(
        "steps",
        Sequence(
            "main",
            [
                Sequence("part1", [Delay("d1", 1.0), Assign("a1", "x", value=1)]),
                Sequence("part2", [Delay("d2", 1.0), Assign("a2", "y", value=2)]),
                Reply("r", variable="y"),
            ],
        ),
    )


class TestSuspendResume:
    def test_suspend_blocks_progress(self, env, engine):
        instance = engine.start(three_step_definition())

        def controller():
            yield env.timeout(0.5)
            instance.suspend()
            yield env.timeout(10.0)
            assert "y" not in instance.variables  # part2 never ran while suspended
            instance.resume()

        env.process(controller())
        assert engine.run_to_completion(instance) == 2
        assert env.now >= 10.5

    def test_suspend_is_idempotent(self, env, engine):
        instance = engine.start(three_step_definition())
        instance.suspend()
        instance.suspend()
        instance.resume()
        assert engine.run_to_completion(instance) == 2

    def test_resume_without_suspend_is_noop(self, env, engine):
        instance = engine.start(three_step_definition())
        instance.resume()
        assert engine.run_to_completion(instance) == 2

    def test_suspend_after_completion_is_noop(self, env, engine):
        instance = engine.start(three_step_definition())
        engine.run_to_completion(instance)
        instance.suspend()
        assert instance.status is InstanceStatus.COMPLETED


class TestTerminate:
    def test_terminate_mid_flight(self, env, engine):
        instance = engine.start(three_step_definition())

        def controller():
            yield env.timeout(0.5)
            instance.terminate("operator request")

        env.process(controller())
        env.run()
        assert instance.status is InstanceStatus.TERMINATED
        assert "y" not in instance.variables

    def test_terminate_suspended_instance(self, env, engine):
        instance = engine.start(three_step_definition())

        def controller():
            yield env.timeout(0.5)
            instance.suspend()
            yield env.timeout(1.0)
            instance.terminate()

        env.process(controller())
        env.run()
        assert instance.status is InstanceStatus.TERMINATED

    def test_terminate_after_completion_is_noop(self, env, engine):
        instance = engine.start(three_step_definition())
        engine.run_to_completion(instance)
        instance.terminate()
        assert instance.status is InstanceStatus.COMPLETED


class TestDeadlinesAndExtension:
    def invoke_definition(self, timeout):
        return ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call-slow",
                        operation="echo",
                        to="http://test/slow",
                        inputs={"text": "x"},
                        extract={"echoed": "text"},
                        timeout_seconds=timeout,
                    ),
                    Reply("r", variable="echoed"),
                ],
            ),
        )

    def test_invoke_deadline_fires(self, env, engine):
        instance = engine.start(self.invoke_definition(timeout=2.0))
        with pytest.raises(ProcessFault) as excinfo:
            engine.run_to_completion(instance)
        assert "deadline" in str(excinfo.value)
        assert env.now == pytest.approx(2.0, abs=0.1)

    def test_extend_timeout_keeps_call_alive(self, env, engine):
        """Cross-layer coordination: pushing the deadline out lets a slow
        call (50s service vs 10s timeout) complete."""
        instance = engine.start(self.invoke_definition(timeout=10.0))

        def extender():
            yield env.timeout(1.0)
            assert instance.extend_timeout("call-slow", 60.0) is True

        env.process(extender())
        assert engine.run_to_completion(instance) == "late"
        assert env.now == pytest.approx(50.0, abs=1.0)

    def test_extend_unknown_activity_returns_false(self, env, engine):
        instance = engine.start(self.invoke_definition(timeout=10.0))
        assert instance.extend_timeout("nothing-pending", 5.0) is False
        with pytest.raises(ProcessFault):
            engine.run_to_completion(instance)


class TestDynamicModification:
    def test_insert_after_executed_anchor(self, env, engine):
        definition = three_step_definition()
        instance = engine.start(definition)

        def meddler():
            yield env.timeout(1.5)  # part1 done, part2 running
            instance.suspend()
            modifier = ProcessModifier(instance)
            modifier.insert_after(
                "part2", Assign("injected", "y", expression=lambda v: v["y"] * 10)
            )
            modifier.apply()
            instance.resume()

        env.process(meddler())
        assert engine.run_to_completion(instance) == 20

    def test_insert_before_executed_anchor_rejected(self, env, engine):
        instance = engine.start(three_step_definition())

        def meddler():
            yield env.timeout(1.5)
            instance.suspend()
            modifier = ProcessModifier(instance)
            modifier.insert_before("part1", Empty("too-late"))
            with pytest.raises(ModificationError):
                modifier.apply()
            instance.resume()

        env.process(meddler())
        engine.run_to_completion(instance)

    def test_modification_requires_suspension_once_started(self, env, engine):
        instance = engine.start(three_step_definition())

        def meddler():
            yield env.timeout(0.5)
            modifier = ProcessModifier(instance)
            modifier.insert_after("part2", Empty("x"))
            with pytest.raises(ModificationError):
                modifier.apply()

        env.process(meddler())
        engine.run_to_completion(instance)

    def test_remove_active_activity_rejected(self, env, engine):
        instance = engine.start(three_step_definition())

        def meddler():
            yield env.timeout(0.5)  # part1/d1 active
            instance.suspend()
            modifier = ProcessModifier(instance)
            with pytest.raises(ModificationError):
                modifier.remove("part1")
                modifier.apply()
            instance.resume()

        env.process(meddler())
        engine.run_to_completion(instance)

    def test_remove_pending_activity(self, env, engine):
        instance = engine.start(three_step_definition())

        def meddler():
            yield env.timeout(0.5)
            instance.suspend()
            modifier = ProcessModifier(instance)
            modifier.remove("part2")
            modifier.apply()
            instance.resume()

        env.process(meddler())
        engine.run_to_completion(instance)
        assert "y" not in instance.variables
        assert instance.status is InstanceStatus.COMPLETED

    def test_replace_pending_activity(self, env, engine):
        instance = engine.start(three_step_definition())

        def meddler():
            yield env.timeout(0.5)
            instance.suspend()
            modifier = ProcessModifier(instance)
            modifier.replace("part2", Assign("alternative", "y", value=99))
            modifier.apply()
            instance.resume()

        env.process(meddler())
        assert engine.run_to_completion(instance) == 99

    def test_duplicate_name_insertion_rejected(self, env, engine):
        instance = engine.start(three_step_definition())
        modifier = ProcessModifier(instance)
        with pytest.raises(ModificationError):
            modifier.insert_after("part1", Empty("part2"))

    def test_bind_variables_applied(self, env, engine):
        definition = ProcessDefinition(
            "p", Sequence("main", [Delay("d", 1.0), Reply("r", variable="injected")])
        )
        instance = engine.start(definition)
        modifier = ProcessModifier(instance)
        modifier.bind_variables({"injected": "value-from-policy"})
        modifier.apply()
        assert engine.run_to_completion(instance) == "value-from-policy"

    def test_modifier_single_use(self, env, engine):
        instance = engine.start(three_step_definition())
        modifier = ProcessModifier(instance)
        modifier.apply()
        with pytest.raises(ModificationError):
            modifier.apply()

    def test_transient_copy_edit_does_not_touch_instance(self, env, engine):
        instance = engine.start(three_step_definition())
        modifier = ProcessModifier(instance)
        modifier.insert_after("part2", Empty("staged-only"))
        # Not applied: the live tree must not contain the staged activity.
        assert instance.find_activity("staged-only") is None
        assert modifier.tree is not instance.root

    def test_unknown_anchor_rejected_at_stage_time(self, env, engine):
        instance = engine.start(three_step_definition())
        modifier = ProcessModifier(instance)
        with pytest.raises(ModificationError):
            modifier.insert_after("ghost", Empty("x"))

    def test_modify_finished_instance_rejected(self, env, engine):
        instance = engine.start(three_step_definition())
        engine.run_to_completion(instance)
        modifier = ProcessModifier(instance)
        modifier.insert_after("part2", Empty("x"))
        with pytest.raises(ModificationError):
            modifier.apply()


class TestEngineServices:
    def test_tracking_records_lifecycle(self, env, network, engine):
        tracking = engine.add_service(TrackingService())
        instance = engine.start(three_step_definition())
        engine.run_to_completion(instance)
        kinds = [event.kind for event in tracking.events_for(instance.id)]
        assert kinds[0] == "instance_created"
        assert kinds[-1] == "instance_completed"
        assert "activity_completed" in kinds

    def test_tracking_executed_names(self, env, engine):
        tracking = engine.add_service(TrackingService())
        instance = engine.start(three_step_definition())
        engine.run_to_completion(instance)
        names = tracking.executed_activity_names(instance.id)
        assert names.index("d1") < names.index("d2")

    def test_persistence_snapshots_variables(self, env, engine):
        persistence = engine.add_service(PersistenceService())
        instance = engine.start(three_step_definition())
        engine.run_to_completion(instance)
        latest = persistence.latest(instance.id)
        assert latest.variables["y"] == 2
        assert latest.status == "running"

    def test_registry_resolution(self, env, network, container):
        container.deploy(EchoService(env, "echo-reg", "http://test/echo"))
        registry = ServiceRegistry()
        registry.register("Echo", "echo1", "http://test/echo")
        engine = WorkflowEngine(env, network=network, registry=registry)
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="echo",
                        service_type="Echo",
                        inputs={"text": "via-registry"},
                        extract={"echoed": "text"},
                    ),
                    Reply("r", variable="echoed"),
                ],
            ),
        )
        instance = engine.start(definition)
        assert engine.run_to_completion(instance) == "via-registry@echo-reg"

    def test_binder_overrides_registry(self, env, network, container):
        container.deploy(EchoService(env, "echo-bind", "http://test/echo"))
        registry = ServiceRegistry()
        registry.register("Echo", "ghost", "http://nowhere")
        engine = WorkflowEngine(env, network=network, registry=registry)
        engine.binder = lambda service_type, instance: "http://test/echo"
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="echo",
                        service_type="Echo",
                        inputs={"text": "x"},
                        extract={"echoed": "text"},
                    ),
                    Reply("r", variable="echoed"),
                ],
            ),
        )
        assert engine.run_to_completion(engine.start(definition)) == "x@echo-bind"

    def test_unresolvable_service_type_faults(self, env, network):
        engine = WorkflowEngine(env, network=network)
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [Invoke("call", operation="echo", service_type="Ghost", inputs={})],
            ),
        )
        instance = engine.start(definition)
        with pytest.raises(ProcessFault):
            engine.run_to_completion(instance)

    def test_instance_ids_unique_and_registered(self, env, engine):
        a = engine.start(three_step_definition())
        b = engine.start(three_step_definition())
        assert a.id != b.id
        assert engine.instances[a.id] is a
