"""Unit tests for the QoS Measurement Service."""

import pytest

from repro.services import InvocationOutcome, InvocationRecord
from repro.soap import FaultCode
from repro.wsbus import QoSMeasurementService
from repro.wsbus.qos import EndpointQoS


def record(target="http://a", start=0.0, duration=0.1, ok=True):
    return InvocationRecord(
        caller="c",
        target=target,
        operation="op",
        started_at=start,
        finished_at=start + duration,
        outcome=InvocationOutcome.SUCCESS if ok else InvocationOutcome.FAULT,
        fault_code=None if ok else FaultCode.TIMEOUT,
    )


class TestEndpointQoS:
    def test_reliability_ratio(self):
        qos = QoSMeasurementService()
        for ok in (True, True, False, True):
            qos.observe(record(ok=ok))
        assert qos.lookup("reliability", 0, "mean", "http://a") == pytest.approx(0.75)

    def test_reliability_window(self):
        qos = QoSMeasurementService()
        qos.observe(record(ok=False, start=0))
        for index in range(3):
            qos.observe(record(ok=True, start=index + 1))
        assert qos.lookup("reliability", 2, "mean", "http://a") == 1.0

    def test_response_time_aggregates(self):
        qos = QoSMeasurementService()
        for duration in (0.1, 0.2, 0.3, 0.4):
            qos.observe(record(duration=duration))
        assert qos.lookup("response_time", 0, "mean", "http://a") == pytest.approx(0.25)
        assert qos.lookup("response_time", 0, "min", "http://a") == pytest.approx(0.1)
        assert qos.lookup("response_time", 0, "max", "http://a") == pytest.approx(0.4)
        assert qos.lookup("response_time", 0, "p95", "http://a") == pytest.approx(0.4)

    def test_response_time_ignores_failures(self):
        qos = QoSMeasurementService()
        qos.observe(record(duration=0.1, ok=True))
        qos.observe(record(duration=30.0, ok=False))
        assert qos.lookup("response_time", 0, "mean", "http://a") == pytest.approx(0.1)

    def test_unknown_endpoint_returns_none(self):
        assert QoSMeasurementService().lookup("reliability", 0, "mean", "http://x") is None

    def test_none_endpoint_returns_none(self):
        assert QoSMeasurementService().lookup("reliability", 0, "mean", None) is None

    def test_unknown_metric_rejected(self):
        qos = QoSMeasurementService()
        qos.observe(record())
        with pytest.raises(ValueError):
            qos.lookup("karma", 0, "mean", "http://a")

    def test_availability_full_uptime(self):
        qos = QoSMeasurementService()
        for index in range(5):
            qos.observe(record(start=float(index)))
        assert qos.lookup("availability", 0, "mean", "http://a") == pytest.approx(1.0)

    def test_availability_with_outage_burst(self):
        qos = QoSMeasurementService()
        # 0-10 ok, 10-15 failing burst, 15-100 ok.
        for start in range(0, 10):
            qos.observe(record(start=float(start), duration=0.5))
        for start in range(10, 15):
            qos.observe(record(start=float(start), duration=1.0, ok=False))
        for start in range(15, 100):
            qos.observe(record(start=float(start), duration=0.5))
        availability = qos.lookup("availability", 0, "mean", "http://a")
        assert 0.90 <= availability < 1.0

    def test_throughput(self):
        qos = QoSMeasurementService()
        for start in range(10):
            qos.observe(record(start=float(start), duration=0.5))
        throughput = qos.lookup("throughput", 0, "mean", "http://a")
        assert throughput == pytest.approx(10 / 9.5, rel=0.01)

    def test_throughput_excludes_trailing_failure_burn(self):
        qos = QoSMeasurementService()
        qos.observe(record(start=0.0, duration=0.5))
        qos.observe(record(start=10.0, duration=20.0, ok=False))
        # One success delivered over its own 0.5s is 2 req/s. The
        # 20-second timeout burn hanging off the end of the window must
        # not dilute the rate (regression: the span ran first record
        # start to last record finish, yielding 1/30).
        assert qos.lookup("throughput", 0, "mean", "http://a") == pytest.approx(2.0)

    def test_throughput_single_success_is_measurable(self):
        qos = QoSMeasurementService()
        qos.observe(record(start=1.0, duration=0.25))
        assert qos.lookup("throughput", 0, "mean", "http://a") == pytest.approx(4.0)

    def test_throughput_no_successes_is_zero(self):
        qos = QoSMeasurementService()
        qos.observe(record(ok=False))
        assert qos.lookup("throughput", 0, "mean", "http://a") == 0.0

    def test_throughput_empty_window_is_none(self):
        from repro.wsbus.qos import EndpointQoS

        assert EndpointQoS("http://a").throughput() is None

    def test_window_eviction(self):
        qos = QoSMeasurementService(window=3)
        for index in range(10):
            qos.observe(record(start=float(index)))
        assert len(qos.endpoint("http://a").records) == 3
        assert qos.endpoint("http://a").total_invocations == 10


class TestBestEndpoint:
    def test_prefers_fastest(self):
        qos = QoSMeasurementService()
        qos.observe(record(target="http://slow", duration=1.0))
        qos.observe(record(target="http://fast", duration=0.1))
        assert qos.best_endpoint(["http://slow", "http://fast"]) == "http://fast"

    def test_prefers_most_reliable(self):
        qos = QoSMeasurementService()
        qos.observe(record(target="http://flaky", ok=False))
        qos.observe(record(target="http://flaky", ok=True))
        qos.observe(record(target="http://solid", ok=True))
        assert (
            qos.best_endpoint(["http://flaky", "http://solid"], metric="reliability")
            == "http://solid"
        )

    def test_measured_beats_unmeasured(self):
        qos = QoSMeasurementService()
        qos.observe(record(target="http://known", duration=5.0))
        assert (
            qos.best_endpoint(["http://unknown", "http://known"]) == "http://known"
        )

    def test_all_unmeasured_picks_first(self):
        assert QoSMeasurementService().best_endpoint(["http://a", "http://b"]) == "http://a"

    def test_empty_candidates(self):
        assert QoSMeasurementService().best_endpoint([]) is None


class TestAvailabilityWindowEdges:
    """MTBF/(MTBF+MTTR) estimation at the awkward edges: outage bursts
    clipped by the observation window, all-failure windows, and
    zero-length horizons."""

    def test_outage_burst_counts_once(self):
        qos = QoSMeasurementService()
        qos.observe(record(start=0.0, duration=1.0, ok=True))
        qos.observe(record(start=2.0, duration=1.0, ok=False))
        qos.observe(record(start=3.0, duration=1.0, ok=False))
        qos.observe(record(start=5.0, duration=1.0, ok=True))
        # One burst from t=2 to t=4 over a t=0..6 horizon.
        assert qos.lookup("availability", 0, "mean", "http://a") == pytest.approx(
            1.0 - 2.0 / 6.0
        )

    def test_burst_spanning_window_boundary_is_clipped(self):
        """A failure burst straddling the window edge: only the in-window
        part of the burst (and of the horizon) is charged."""
        qos = QoSMeasurementService()
        for start in (0.0, 1.0, 2.0):
            qos.observe(record(start=start, duration=1.0, ok=False))
        qos.observe(record(start=3.0, duration=1.0, ok=True))
        # Full history: downtime 3 of horizon 4.
        assert qos.lookup("availability", 0, "mean", "http://a") == pytest.approx(0.25)
        # Window of 2 slices mid-burst: downtime 1 of horizon 2.
        assert qos.lookup("availability", 2, "mean", "http://a") == pytest.approx(0.5)

    def test_all_failure_window_is_zero(self):
        qos = QoSMeasurementService()
        qos.observe(record(start=0.0, duration=1.0, ok=False))
        qos.observe(record(start=1.0, duration=1.0, ok=False))
        assert qos.lookup("availability", 0, "mean", "http://a") == 0.0

    def test_zero_horizon_uses_last_outcome(self):
        ok = EndpointQoS("http://a")
        ok.add(record(start=0.0, duration=0.0, ok=True))
        assert ok.availability() == 1.0
        bad = EndpointQoS("http://b")
        bad.add(record(target="http://b", start=0.0, duration=0.0, ok=False))
        assert bad.availability() == 0.0


class TestThroughputWindowEdges:
    def test_trailing_timeout_burn_does_not_dilute(self):
        """The denominator is the successes' own delivery span: a failed
        30-second timeout hanging off the window edge no longer drags an
        honest 2-in-3-seconds rate down to 2-in-33."""
        qos = QoSMeasurementService()
        qos.observe(record(start=0.0, duration=1.0, ok=True))
        qos.observe(record(start=2.0, duration=1.0, ok=True))
        qos.observe(record(start=3.0, duration=30.0, ok=False))
        assert qos.lookup("throughput", 0, "mean", "http://a") == pytest.approx(
            2.0 / 3.0
        )

    def test_window_slice_recomputes_span(self):
        qos = QoSMeasurementService()
        qos.observe(record(start=0.0, duration=1.0, ok=True))
        qos.observe(record(start=2.0, duration=1.0, ok=True))
        qos.observe(record(start=3.0, duration=30.0, ok=False))
        # Window of 2: one success from t=2..3 → 1 req/s.
        assert qos.lookup("throughput", 2, "mean", "http://a") == pytest.approx(1.0)

    def test_all_failure_window_is_zero_not_none(self):
        qos = QoSMeasurementService()
        qos.observe(record(start=0.0, duration=5.0, ok=False))
        assert qos.lookup("throughput", 0, "mean", "http://a") == 0.0

    def test_single_success_is_a_measurable_rate(self):
        qos = QoSMeasurementService()
        qos.observe(record(start=0.0, duration=0.5, ok=True))
        assert qos.lookup("throughput", 0, "mean", "http://a") == pytest.approx(2.0)

    def test_instantaneous_successes_are_unmeasurable(self):
        qos = QoSMeasurementService()
        qos.observe(record(start=0.0, duration=0.0, ok=True))
        assert qos.lookup("throughput", 0, "mean", "http://a") is None


class TestBestEndpointAllFailureWindows:
    def test_all_failure_candidate_loses_to_any_success(self):
        qos = QoSMeasurementService()
        for start in (0.0, 1.0):
            qos.observe(record(target="http://dead", start=start, ok=False))
        qos.observe(record(target="http://alive", start=0.0, ok=True))
        qos.observe(record(target="http://alive", start=2.0, ok=False))
        for metric in ("availability", "throughput", "reliability"):
            assert (
                qos.best_endpoint(["http://dead", "http://alive"], metric=metric)
                == "http://alive"
            )

    def test_measured_zero_beats_unmeasured(self):
        """Measurement beats optimism even when the measurement is 0.0 —
        an all-failure window is information, absence of history is not."""
        qos = QoSMeasurementService()
        qos.observe(record(target="http://dead", start=0.0, ok=False))
        assert (
            qos.best_endpoint(["http://unknown", "http://dead"], metric="availability")
            == "http://dead"
        )

    def test_every_candidate_all_failures_still_selects(self):
        qos = QoSMeasurementService()
        qos.observe(record(target="http://d1", start=0.0, ok=False))
        qos.observe(record(target="http://d2", start=0.0, ok=False))
        assert qos.best_endpoint(
            ["http://d1", "http://d2"], metric="availability"
        ) in ("http://d1", "http://d2")
