"""Unit tests for conversation management."""

import pytest

from conftest import ECHO_CONTRACT, EchoService, run_process
from repro.soap import MASC_NS, SoapEnvelope
from repro.services import Invoker
from repro.wsbus import ConversationManager, ConversationState
from repro.xmlutils import Element, QName


def message(pid=None, conversation=None, direction="request", operation="op", target="http://svc"):
    envelope = SoapEnvelope(body=Element("payload"))
    if pid:
        envelope.addressing = envelope.addressing.with_process_instance(pid)
    if conversation:
        envelope.add_header(Element(QName(MASC_NS, "ConversationID"), text=conversation))
    return direction, envelope, operation, target


class TestCorrelation:
    def test_process_instance_id_correlates(self, env):
        manager = ConversationManager(env)
        manager.observe_message(*message(pid="proc-1"))
        manager.observe_message(*message(pid="proc-1", direction="response"))
        conversation = manager.conversation("proc-1")
        assert conversation.message_count == 2
        assert conversation.state is ConversationState.ACTIVE

    def test_explicit_header_correlates(self, env):
        manager = ConversationManager(env)
        manager.observe_message(*message(conversation="conv-9"))
        assert manager.conversation("conv-9") is not None

    def test_uncorrelated_messages_ignored(self, env):
        manager = ConversationManager(env)
        manager.observe_message(*message())
        assert manager.conversations == {}

    def test_process_id_takes_precedence(self, env):
        manager = ConversationManager(env)
        direction, envelope, operation, target = message(pid="proc-2", conversation="conv-2")
        manager.observe_message(direction, envelope, operation, target)
        assert manager.conversation("proc-2") is not None
        assert manager.conversation("conv-2") is None

    def test_participants_and_operations_tracked(self, env):
        manager = ConversationManager(env)
        manager.observe_message(*message(pid="p", operation="getCatalog", target="http://a"))
        manager.observe_message(*message(pid="p", operation="submitOrder", target="http://b"))
        conversation = manager.conversation("p")
        assert conversation.participants == {"http://a", "http://b"}
        assert conversation.operations == ["request:getCatalog", "request:submitOrder"]

    def test_fault_counted(self, env):
        manager = ConversationManager(env)
        manager.observe_message(*message(pid="p", direction="fault"))
        assert manager.conversation("p").fault_count == 1


class TestLifecycle:
    def test_complete(self, env):
        manager = ConversationManager(env)
        manager.observe_message(*message(pid="p"))
        assert manager.complete("p") is True
        assert manager.conversation("p").state is ConversationState.COMPLETED
        assert manager.complete("p") is False
        assert manager.complete("ghost") is False

    def test_abandonment_detected(self, env):
        manager = ConversationManager(env, idle_timeout_seconds=10.0)
        events = []
        manager.add_sink(events.append)
        manager.observe_message(*message(pid="p"))
        env.run(until=30.0)
        assert manager.conversation("p").state is ConversationState.ABANDONED
        assert events and events[0].name == "conversation.abandoned"
        assert events[0].context["conversation_id"] == "p"

    def test_active_conversation_not_abandoned(self, env):
        manager = ConversationManager(env, idle_timeout_seconds=10.0)

        def keep_alive():
            for _ in range(10):
                manager.observe_message(*message(pid="p"))
                yield env.timeout(5.0)

        env.process(keep_alive())
        env.run(until=45.0)
        assert manager.conversation("p").state is ConversationState.ACTIVE

    def test_late_message_revives(self, env):
        manager = ConversationManager(env, idle_timeout_seconds=5.0)
        manager.observe_message(*message(pid="p"))
        env.run(until=20.0)
        assert manager.conversation("p").state is ConversationState.ABANDONED
        manager.observe_message(*message(pid="p", direction="response"))
        assert manager.conversation("p").state is ConversationState.ACTIVE

    def test_queries(self, env):
        manager = ConversationManager(env)
        manager.observe_message(*message(pid="p1", target="http://a"))
        manager.observe_message(*message(pid="p2", target="http://b"))
        manager.complete("p1")
        assert [c.conversation_id for c in manager.active_conversations()] == ["p2"]
        assert [c.conversation_id for c in manager.conversations_with("http://a")] == ["p1"]


class TestIntegrationWithInvoker:
    def test_taps_real_traffic(self, env, network, container):
        container.deploy(EchoService(env, "echo1", "http://test/echo"))
        manager = ConversationManager(env)
        invoker = Invoker(env, network, caller="client")
        manager.attach_to_invoker(invoker)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            yield from invoker.invoke(
                "http://test/echo", "echo", payload, process_instance_id="proc-55"
            )

        run_process(env, client())
        conversation = manager.conversation("proc-55")
        assert conversation.message_count == 2  # request + response
        assert conversation.participants == {"http://test/echo"}
