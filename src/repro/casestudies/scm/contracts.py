"""Service contracts for the SCM application."""

from __future__ import annotations

from repro.wsdl import MessageSchema, Operation, PartSchema, ServiceContract

__all__ = [
    "CONFIGURATION_CONTRACT",
    "LOGGING_CONTRACT",
    "MANUFACTURER_CONTRACT",
    "RETAILER_CONTRACT",
    "WAREHOUSE_CONTRACT",
]

RETAILER_CONTRACT = ServiceContract(
    service_type="Retailer",
    operations=(
        Operation(
            name="getCatalog",
            input=MessageSchema("getCatalogRequest", ()),
            output=MessageSchema(
                "getCatalogResponse",
                (PartSchema("catalog"), PartSchema("itemCount", "int")),
            ),
        ),
        Operation(
            name="submitOrder",
            input=MessageSchema(
                "submitOrderRequest",
                (PartSchema("orderId"), PartSchema("items"), PartSchema("customerId")),
            ),
            output=MessageSchema(
                "submitOrderResponse",
                (
                    PartSchema("orderId"),
                    PartSchema("status"),
                    PartSchema("shippedFrom"),
                ),
            ),
        ),
        Operation(
            name="cancelOrder",
            input=MessageSchema("cancelOrderRequest", (PartSchema("orderId"),)),
            output=MessageSchema(
                "cancelOrderResponse",
                (PartSchema("orderId"), PartSchema("status")),
            ),
        ),
        Operation(
            name="collectPayment",
            input=MessageSchema(
                "collectPaymentRequest",
                (
                    PartSchema("orderId"),
                    PartSchema("customerId"),
                    PartSchema("amount", "float"),
                ),
            ),
            output=MessageSchema(
                "collectPaymentResponse",
                (PartSchema("paymentId"), PartSchema("status")),
            ),
        ),
        Operation(
            name="refundPayment",
            input=MessageSchema("refundPaymentRequest", (PartSchema("paymentId"),)),
            output=MessageSchema(
                "refundPaymentResponse",
                (PartSchema("paymentId"), PartSchema("status")),
            ),
        ),
    ),
)

WAREHOUSE_CONTRACT = ServiceContract(
    service_type="Warehouse",
    operations=(
        Operation(
            name="shipGoods",
            input=MessageSchema(
                "shipGoodsRequest",
                (PartSchema("product"), PartSchema("quantity", "int")),
            ),
            output=MessageSchema(
                "shipGoodsResponse",
                (PartSchema("shipped", "bool"), PartSchema("warehouse")),
            ),
        ),
        Operation(
            name="checkStock",
            input=MessageSchema("checkStockRequest", (PartSchema("product"),)),
            output=MessageSchema(
                "checkStockResponse",
                (PartSchema("product"), PartSchema("level", "int")),
            ),
        ),
        Operation(
            name="restock",
            input=MessageSchema(
                "restockRequest",
                (PartSchema("product"), PartSchema("quantity", "int")),
            ),
            output=MessageSchema(
                "restockResponse",
                (PartSchema("product"), PartSchema("level", "int")),
            ),
        ),
    ),
)

MANUFACTURER_CONTRACT = ServiceContract(
    service_type="Manufacturer",
    operations=(
        Operation(
            name="submitPO",
            input=MessageSchema(
                "submitPORequest",
                (PartSchema("product"), PartSchema("quantity", "int")),
            ),
            output=MessageSchema(
                "submitPOResponse",
                (PartSchema("accepted", "bool"), PartSchema("leadTime", "float")),
            ),
        ),
    ),
)

LOGGING_CONTRACT = ServiceContract(
    service_type="LoggingFacility",
    operations=(
        Operation(
            name="logEvent",
            input=MessageSchema(
                "logEventRequest", (PartSchema("source"), PartSchema("event"))
            ),
            output=MessageSchema("logEventResponse", (PartSchema("logged", "bool"),)),
        ),
        Operation(
            name="getEvents",
            input=MessageSchema(
                "getEventsRequest", (PartSchema("source", required=False),)
            ),
            output=MessageSchema(
                "getEventsResponse",
                (PartSchema("events"), PartSchema("count", "int")),
            ),
        ),
    ),
)

CONFIGURATION_CONTRACT = ServiceContract(
    service_type="Configuration",
    operations=(
        Operation(
            name="getImplementations",
            input=MessageSchema(
                "getImplementationsRequest", (PartSchema("serviceType"),)
            ),
            output=MessageSchema(
                "getImplementationsResponse",
                (PartSchema("addresses"), PartSchema("count", "int")),
            ),
        ),
    ),
)
