"""Active QoS probing and external management events.

Two sensor paths from Section 3.1 beyond passive message observation:

- the QoS Measurement Service collects data "either through direct
  computation of QoS metrics... **or via periodic probing for management
  information** from other management intermediaries" —
  :class:`QoSProbe` sends synthetic transactions at a fixed interval and
  feeds the resulting observations into the measurement service;
- "Faults can also be identified based on **management events coming from
  internal or external management systems**, such as hardware or network
  failure faults" — :class:`ManagementEventSource` lets such systems
  report faults for an endpoint, which become classified MASC events and
  can drive the same adaptation policies as observed message faults.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator
from dataclasses import dataclass

from repro.core.events import MASCEvent
from repro.services import Invoker
from repro.soap import FaultCode, SoapFault, SoapFaultError
from repro.xmlutils import Element

__all__ = ["ManagementEventSource", "ProbeResult", "QoSProbe"]


@dataclass(frozen=True)
class ProbeResult:
    """One synthetic-transaction measurement."""

    time: float
    target: str
    succeeded: bool
    response_time: float | None
    fault_code: FaultCode | None = None


class QoSProbe:
    """Periodically probes an endpoint with a synthetic request.

    The probe uses its own invoker; subscribing the QoS Measurement
    Service to it (``qos.attach_to_invoker(probe.invoker)``) folds probe
    observations into the same per-endpoint statistics that passive
    measurement feeds — exactly the "third QoS measurement entity" role.
    """

    def __init__(
        self,
        env,
        network,
        target: str,
        operation: str,
        payload_factory: Callable[[], Element],
        interval_seconds: float = 30.0,
        timeout_seconds: float = 5.0,
        caller: str = "qos-probe",
        window: int = 100,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("probe interval must be positive")
        if window <= 0:
            raise ValueError("probe window must be positive")
        self.env = env
        self.target = target
        self.operation = operation
        self.payload_factory = payload_factory
        self.interval_seconds = interval_seconds
        self.timeout_seconds = timeout_seconds
        self.window = window
        self.invoker = Invoker(env, network, caller=caller, default_timeout=timeout_seconds)
        # Bounded: only the newest ``window`` probes count, so an endpoint
        # that recovers is not haunted forever by faults from hours ago.
        self.results: deque[ProbeResult] = deque(maxlen=window)
        self._running = False

    def start(self) -> None:
        """Begin the probe cycle (idempotent)."""
        if not self._running:
            self._running = True
            self.env.process(self._cycle(), name=f"probe:{self.target}")

    def stop(self) -> None:
        """Stop after the in-flight probe (if any) completes."""
        self._running = False

    def _cycle(self) -> Generator:
        while self._running:
            yield self.env.timeout(self.interval_seconds)
            if not self._running:
                return
            started = self.env.now
            try:
                yield from self.invoker.invoke(
                    self.target,
                    self.operation,
                    self.payload_factory(),
                    timeout=self.timeout_seconds,
                )
            except SoapFaultError as error:
                self.results.append(
                    ProbeResult(
                        time=self.env.now,
                        target=self.target,
                        succeeded=False,
                        response_time=None,
                        fault_code=error.fault.code,
                    )
                )
                continue
            self.results.append(
                ProbeResult(
                    time=self.env.now,
                    target=self.target,
                    succeeded=True,
                    response_time=self.env.now - started,
                )
            )

    @property
    def observed_availability(self) -> float | None:
        """Fraction of the sliding probe window that succeeded.

        None before any probe. Only the newest ``window`` results are
        retained, so availability tracks the endpoint's *current* health
        rather than a lifetime average that old outages would pin down.
        """
        if not self.results:
            return None
        return sum(1 for r in self.results if r.succeeded) / len(self.results)


class ManagementEventSource:
    """Bridge for faults reported by internal/external management systems."""

    def __init__(self, env) -> None:
        self.env = env
        self._sinks: list[Callable[[MASCEvent], None]] = []
        self.reported: list[MASCEvent] = []
        #: ``(event, sink, error)`` triples for sinks that raised during
        #: delivery; kept so operators can see which consumers misbehaved.
        self.sink_errors: list[tuple[MASCEvent, Callable[[MASCEvent], None], Exception]] = []

    def add_sink(self, sink: Callable[[MASCEvent], None]) -> None:
        self._sinks.append(sink)

    def report_fault(
        self,
        endpoint: str,
        code: FaultCode,
        reason: str,
        service_type: str | None = None,
        source_system: str = "external-management",
    ) -> MASCEvent:
        """Report a fault observed by a management system.

        The fault becomes a ``fault.<Code>`` MASC event carrying the
        reporting system's identity, indistinguishable to adaptation
        policies from faults detected on the message path.
        """
        event = MASCEvent(
            name=f"fault.{code.value}",
            time=self.env.now,
            endpoint=endpoint,
            service_type=service_type,
            fault=SoapFault(code, reason, actor=endpoint, source=source_system),
            context={"reported_by": source_system, "fault_reason": reason},
            raised_by=source_system,
        )
        self.reported.append(event)
        # Deliver to every sink before surfacing any failure: one broken
        # consumer must not block fault propagation to the rest.
        first_error: Exception | None = None
        for sink in self._sinks:
            try:
                sink(event)
            except Exception as error:
                self.sink_errors.append((event, sink, error))
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return event
