"""Unit tests for the SOAP envelope model."""

import pytest

from repro.soap import (
    AddressingHeaders,
    FaultCode,
    SoapEnvelope,
    SoapFault,
    SoapFaultError,
    new_message_id,
)
from repro.soap.faults import TRANSIENT_FAULT_CODES, timeout, unavailable
from repro.xmlutils import Element


class TestAddressing:
    def test_message_ids_unique(self):
        assert new_message_id() != new_message_id()

    def test_for_reply_correlates(self):
        request = AddressingHeaders(to="http://svc", action="urn:op:go", reply_to="http://me")
        reply = request.for_reply()
        assert reply.relates_to == request.message_id
        assert reply.to == "http://me"
        assert reply.action == "urn:op:goResponse"

    def test_with_process_instance(self):
        headers = AddressingHeaders().with_process_instance("proc-1")
        assert headers.process_instance_id == "proc-1"

    def test_process_instance_survives_reply(self):
        request = AddressingHeaders().with_process_instance("proc-9")
        assert request.for_reply().process_instance_id == "proc-9"

    def test_retargeted_mints_new_message_id(self):
        original = AddressingHeaders(to="http://a")
        copy = original.retargeted("http://b")
        assert copy.to == "http://b"
        assert copy.message_id != original.message_id

    def test_element_round_trip(self):
        headers = AddressingHeaders(
            to="http://svc", action="urn:x", reply_to="http://me"
        ).with_process_instance("proc-3")
        rebuilt = AddressingHeaders.from_elements(headers.to_elements())
        assert rebuilt == headers


class TestEnvelope:
    def test_request_reply_cycle(self):
        body = Element("ping", children=[Element("x", text="1")])
        request = SoapEnvelope.request("http://svc", "urn:op:ping", body)
        reply = request.reply(Element("pong"))
        assert reply.addressing.relates_to == request.addressing.message_id
        assert reply.body.name.local == "pong"

    def test_body_and_fault_mutually_exclusive(self):
        with pytest.raises(ValueError):
            SoapEnvelope(
                body=Element("x"),
                fault=SoapFault(FaultCode.SERVER, "boom"),
            )

    def test_fault_reply(self):
        request = SoapEnvelope.request("http://svc", "urn:a", Element("q"))
        fault_reply = request.reply_fault(SoapFault(FaultCode.TIMEOUT, "too slow"))
        assert fault_reply.is_fault
        assert fault_reply.fault.code is FaultCode.TIMEOUT

    def test_copy_is_header_shallow(self):
        # copy() shares the body tree (the per-attempt fast path) but owns
        # its headers list: adding headers to the copy never leaks back.
        envelope = SoapEnvelope.request("http://svc", "urn:a", Element("q", text="v"))
        duplicate = envelope.copy()
        assert duplicate.body is envelope.body
        duplicate.add_header(Element("extra"))
        assert envelope.headers == []
        # Replacing the copy's body never touches the original.
        duplicate.body = Element("q", text="changed")
        assert envelope.body.text == "v"

    def test_deep_copy_is_private(self):
        envelope = SoapEnvelope.request("http://svc", "urn:a", Element("q", text="v"))
        envelope.add_header(Element("h", text="x"))
        duplicate = envelope.deep_copy()
        assert duplicate.to_xml() == envelope.to_xml()
        duplicate.body.text = "changed"
        duplicate.headers[0].element.text = "y"
        assert envelope.body.text == "v"
        assert envelope.headers[0].element.text == "x"

    def test_xml_round_trip(self):
        body = Element("order", children=[Element("amount", text="99")])
        envelope = SoapEnvelope.request("http://svc", "urn:op:order", body, padding=0)
        envelope.addressing = envelope.addressing.with_process_instance("proc-5")
        parsed = SoapEnvelope.from_xml(envelope.to_xml())
        assert parsed.addressing.to == "http://svc"
        assert parsed.addressing.process_instance_id == "proc-5"
        assert parsed.body.structurally_equal(envelope.body)

    def test_fault_xml_round_trip(self):
        envelope = SoapEnvelope(fault=SoapFault(FaultCode.SERVICE_UNAVAILABLE, "down", actor="http://x"))
        parsed = SoapEnvelope.from_xml(envelope.to_xml())
        assert parsed.is_fault
        assert parsed.fault.code is FaultCode.SERVICE_UNAVAILABLE
        assert parsed.fault.reason == "down"
        assert parsed.fault.actor == "http://x"

    def test_extension_header_round_trip(self):
        envelope = SoapEnvelope(body=Element("b"))
        envelope.add_header(Element("{urn:ext}Token", text="secret"), must_understand=True)
        parsed = SoapEnvelope.from_xml(envelope.to_xml())
        header = parsed.header("{urn:ext}Token")
        assert header is not None and header.text == "secret"
        assert parsed.headers[0].must_understand

    def test_padding_inflates_size(self):
        envelope = SoapEnvelope(body=Element("b"))
        bare = envelope.size_bytes
        envelope.padding = 1024
        assert envelope.size_bytes == bare + 1024

    def test_size_reflects_body_content(self):
        small = SoapEnvelope(body=Element("b"))
        big_body = Element("b")
        for index in range(50):
            big_body.add(f"part{index}", text="x" * 50)
        big = SoapEnvelope(body=big_body)
        assert big.size_bytes > small.size_bytes


class TestFaults:
    def test_transient_classification(self):
        assert FaultCode.TIMEOUT in TRANSIENT_FAULT_CODES
        assert SoapFault(FaultCode.SERVICE_UNAVAILABLE, "x").is_transient
        assert not SoapFault(FaultCode.CLIENT, "x").is_transient

    def test_exception_carries_fault(self):
        fault = SoapFault(FaultCode.SERVER, "oops")
        error = fault.to_exception()
        assert isinstance(error, SoapFaultError)
        assert error.fault is fault
        assert "oops" in str(error)

    def test_unknown_fault_code_parses_as_server(self):
        element = SoapFault(FaultCode.SERVER, "r").to_element()
        element.find("faultcode").text = "{urn:custom}Weird"
        parsed = SoapFault.from_element(element)
        assert parsed.code is FaultCode.SERVER

    def test_fault_detail_round_trip(self):
        detail = Element("info", children=[Element("k", text="v")])
        fault = SoapFault(FaultCode.SERVICE_FAILURE, "bad", detail=detail)
        parsed = SoapFault.from_element(fault.to_element())
        assert parsed.detail.structurally_equal(detail)

    def test_convenience_constructors(self):
        assert unavailable("down").code is FaultCode.SERVICE_UNAVAILABLE
        assert timeout("slow").code is FaultCode.TIMEOUT

    def test_qname_namespaced(self):
        assert FaultCode.SLA_VIOLATION.qname.local == "SLAViolation"
        assert FaultCode.SLA_VIOLATION.qname.namespace


class TestEnvelopeSharingSafety:
    """Envelope interning/borrowing must never leak state across messages."""

    def test_wire_serialization_matches_copying_reference(self):
        from repro.xmlutils import serialize_xml_reference

        envelope = SoapEnvelope.request(
            "http://svc/a", "urn:op:x", Element("q", text="5 < 6 & more")
        )
        envelope.add_header(Element("{urn:ext}h", text="meta"), must_understand=True)
        assert envelope.to_xml() == serialize_xml_reference(envelope.to_element())

    def test_fault_wire_serialization_matches_copying_reference(self):
        from repro.xmlutils import serialize_xml_reference

        request = SoapEnvelope.request("http://svc/a", "urn:op:x", Element("q"))
        reply = request.reply_fault(SoapFault(FaultCode.TIMEOUT, "too slow"))
        assert reply.to_xml() == serialize_xml_reference(reply.to_element())

    def test_must_understand_serialization_does_not_mutate_the_header(self):
        header_element = Element("{urn:ext}h", text="meta")
        envelope = SoapEnvelope.request("http://svc/a", "urn:op:x", Element("q"))
        envelope.add_header(header_element, must_understand=True)
        assert "mustUnderstand" in envelope.to_xml()
        # The wire view wraps the header; the caller's element is untouched.
        assert header_element.attributes == {}
        assert header_element.parent is None

    def test_serialization_does_not_reparent_the_shared_body(self):
        body = Element("q", text="payload")
        envelope = SoapEnvelope.request("http://svc/a", "urn:op:x", body)
        envelope.to_xml()
        envelope.size_bytes
        assert body.parent is None
        assert envelope.body is body

    def test_reply_gets_fresh_headers_not_the_request_headers(self):
        request = SoapEnvelope.request("http://svc/a", "urn:op:x", Element("q"))
        request.add_header(Element("{urn:ext}h", text="meta"))
        reply = request.reply(Element("ok"))
        assert reply.headers == []
        reply.add_header(Element("{urn:ext}other"))
        assert len(request.headers) == 1

    def test_shared_body_size_memo_tracks_addressing_shape(self):
        # Two envelopes sharing one body tree but differing in the length
        # of an addressing field must not share a memoized size.
        body = Element("q", text="payload")
        short = SoapEnvelope.request("http://svc/a", "urn:op:x", body)
        long = SoapEnvelope.request("http://svc/a-much-longer-address", "urn:op:x", body)
        delta = len("http://svc/a-much-longer-address") - len("http://svc/a")
        assert long.size_bytes - short.size_bytes == delta
        assert short.size_bytes == len(short.to_xml().encode("utf-8"))
        assert long.size_bytes == len(long.to_xml().encode("utf-8"))

    def test_size_memo_same_shape_is_exact_not_stale(self):
        # Same presence pattern and field lengths -> memo hit; the hit must
        # still equal a from-scratch serialization of the second envelope
        # (message ids are fixed-width, so the shapes genuinely match).
        body = Element("q", text="payload")
        first = SoapEnvelope.request("http://svc/a", "urn:op:x", body)
        second = SoapEnvelope.request("http://svc/a", "urn:op:x", body)
        assert first.size_bytes == second.size_bytes
        assert second.size_bytes == len(second.to_xml().encode("utf-8"))

    def test_copy_on_write_body_replacement_invalidates_size(self):
        body = Element("q", text="x")
        original = SoapEnvelope.request("http://svc/a", "urn:op:x", body)
        duplicate = original.copy()
        baseline = original.size_bytes
        assert duplicate.size_bytes == baseline
        duplicate.body = Element("q", text="x" * 100)
        assert duplicate.size_bytes == baseline + 99
        assert original.size_bytes == baseline
        assert original.body is body

    def test_padding_applied_after_memoized_size(self):
        body = Element("q", text="payload")
        plain = SoapEnvelope.request("http://svc/a", "urn:op:x", body)
        padded = SoapEnvelope.request("http://svc/a", "urn:op:x", body, padding=4096)
        assert padded.size_bytes == plain.size_bytes + 4096

    def test_interned_payloads_are_shared_but_validation_safe(self):
        # Workload generators intern constant payloads: same parts, same
        # Element object. Envelopes built around it must still serialize
        # and size independently.
        from repro.casestudies.scm import RETAILER_CONTRACT

        schema = RETAILER_CONTRACT.operation("getCatalog").input
        first = schema.build_interned()
        second = schema.build_interned()
        assert first is second
        distinct = schema.build()
        assert distinct is not first
        assert distinct.structurally_equal(first)
        a = SoapEnvelope.request("http://svc/a", "urn:op:getCatalog", first)
        b = SoapEnvelope.request("http://svc/b-longer", "urn:op:getCatalog", second)
        assert a.size_bytes == len(a.to_xml().encode("utf-8"))
        assert b.size_bytes == len(b.to_xml().encode("utf-8"))
