"""The MASC facade: one object assembling the whole middleware stack.

Wires together the simulation environment, network, service registry,
orchestration engine, policy repository/parser, monitoring service,
decision maker and adaptation service exactly as in Figure 1 of the paper.
Case studies and experiments build on this facade; each part remains
individually replaceable.
"""

from __future__ import annotations

from repro.core.adaptation_service import MASCAdaptationService
from repro.core.decision_maker import MASCPolicyDecisionMaker
from repro.core.monitoring_service import MASCMonitoringService
from repro.core.monitoring_store import MonitoringStore
from repro.core.parser import MASCPolicyParser
from repro.observability import NULL_METRICS, NULL_TRACER
from repro.orchestration import (
    PersistenceService,
    TrackingService,
    WorkflowEngine,
)
from repro.policy import PolicyRepository
from repro.services import ServiceContainer, ServiceRegistry
from repro.simulation import Environment, RandomSource
from repro.transport import LatencyModel, Network

__all__ = ["MASC"]


class MASC:
    """A fully assembled MASC middleware stack on a fresh simulation."""

    def __init__(
        self,
        seed: int = 0,
        latency: LatencyModel | None = None,
        validate_policies: bool = True,
        qos_lookup=None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.env = Environment()
        self.random_source = RandomSource(seed)
        #: One tracer/metrics registry for the whole stack (defaults are
        #: no-ops); pass the same instances to a WsBus sharing this env so
        #: cross-layer spans land in one trace.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer.bind_clock(self.env)
        self.network = Network(self.env, self.random_source, latency=latency)
        self.registry = ServiceRegistry()
        self.container = ServiceContainer(self.env, self.network, self.random_source)

        self.engine = WorkflowEngine(
            self.env,
            network=self.network,
            registry=self.registry,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.tracking = self.engine.add_service(TrackingService())
        self.persistence = self.engine.add_service(PersistenceService())

        self.repository = PolicyRepository()
        self.parser = MASCPolicyParser(self.repository, validate=validate_policies)
        self.store = MonitoringStore()
        self.monitoring = MASCMonitoringService(
            self.env,
            self.repository,
            store=self.store,
            registry=self.registry,
            qos_lookup=qos_lookup,
        )
        self.decision_maker = MASCPolicyDecisionMaker(
            self.env, self.repository, tracer=self.tracer, metrics=self.metrics
        )
        self.adaptation = MASCAdaptationService(self.decision_maker)
        self.engine.add_service(self.adaptation)

        # Sensors feed the decision maker; the engine's outgoing messages
        # are introspected by monitoring.
        self.monitoring.add_sink(self.decision_maker.handle)
        self.monitoring.attach_to_invoker(self.engine.invoker)

    # -- convenience -------------------------------------------------------------

    def deploy(self, service):
        """Host a service and register it in the UDDI-style registry."""
        self.container.deploy(service)
        self.registry.register(service.service_type, service.name, service.address)
        return service

    def load_policies(self, xml_text: str):
        """Import one WS-Policy4MASC XML document."""
        return self.parser.import_xml(xml_text)

    def run(self, until=None):
        """Advance the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until)

    def start_process(self, definition, **kwargs):
        return self.engine.start(definition, **kwargs)
