"""Direct unit tests for the wsBus monitoring service."""

import pytest

from repro.policy import (
    MessageCondition,
    MonitoringPolicy,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
    QoSThreshold,
)
from repro.simulation import Environment
from repro.soap import FaultCode, SoapEnvelope, SoapFault
from repro.wsbus import BusMonitoringService, MonitoringPoint, QoSMeasurementService
from repro.xmlutils import Element


def envelope(**parts):
    body = Element("orderRequest")
    for key, value in parts.items():
        body.add(key, text=str(value))
    return SoapEnvelope(body=body)


def service_with(policies, qos=None):
    env = Environment()
    repository = PolicyRepository()
    document = PolicyDocument("d")
    document.monitoring_policies.extend(policies)
    repository.load(document)
    monitoring = BusMonitoringService(env, repository, qos or QoSMeasurementService())
    events = []
    monitoring.add_sink(events.append)
    return monitoring, events


POINT = MonitoringPoint(service_type="Orders", endpoint="http://svc", operation="submitOrder")


class TestCheckMessage:
    def test_violation_returns_classified_fault(self):
        monitoring, events = service_with(
            [
                MonitoringPolicy(
                    name="amount-cap",
                    events=("message.request",),
                    conditions=(MessageCondition("amount", "lte", "1000"),),
                    classify_as=FaultCode.SERVICE_FAILURE,
                )
            ]
        )
        fault = monitoring.check_message("request", envelope(amount=5000), POINT)
        assert fault is not None and fault.code is FaultCode.SERVICE_FAILURE
        assert monitoring.violations_detected == 1
        assert "amount-cap" in fault.reason

    def test_satisfied_constraint_returns_none(self):
        monitoring, events = service_with(
            [
                MonitoringPolicy(
                    name="amount-cap",
                    events=("message.request",),
                    conditions=(MessageCondition("amount", "lte", "1000"),),
                    classify_as=FaultCode.SERVICE_FAILURE,
                )
            ]
        )
        assert monitoring.check_message("request", envelope(amount=10), POINT) is None

    def test_detection_policy_emits(self):
        monitoring, events = service_with(
            [
                MonitoringPolicy(
                    name="detector",
                    events=("message.request",),
                    conditions=(MessageCondition("amount", "gte", "100"),),
                    extract={"amount": "amount"},
                    emits=("order.large",),
                )
            ]
        )
        assert monitoring.check_message("request", envelope(amount=500), POINT) is None
        assert [e.name for e in events] == ["order.large"]
        assert events[0].context["amount"] == 500

    def test_scope_filters_policies(self):
        monitoring, events = service_with(
            [
                MonitoringPolicy(
                    name="other-scope",
                    events=("message.request",),
                    scope=PolicyScope(service_type="Warehouse"),
                    conditions=(MessageCondition("never", "exists"),),
                    classify_as=FaultCode.SERVICE_FAILURE,
                )
            ]
        )
        assert monitoring.check_message("request", envelope(amount=1), POINT) is None

    def test_qos_threshold_violation(self):
        from repro.services import InvocationOutcome, InvocationRecord

        qos = QoSMeasurementService()
        qos.observe(
            InvocationRecord(
                "c", "http://svc", "submitOrder", 0.0, 3.0, InvocationOutcome.SUCCESS
            )
        )
        monitoring, events = service_with(
            [
                MonitoringPolicy(
                    name="sla",
                    events=("message.response",),
                    qos_thresholds=(QoSThreshold("response_time", "lte", 1.0),),
                )
            ],
            qos=qos,
        )
        fault = monitoring.check_message("response", envelope(status="ok"), POINT)
        assert fault is not None and fault.code is FaultCode.SLA_VIOLATION
        assert events and events[0].name == "fault.SLAViolation"
        assert events[0].context["observed_value"] == pytest.approx(3.0)


class TestClassify:
    def test_reclassification_by_policy(self):
        monitoring, _ = service_with(
            [
                MonitoringPolicy(
                    name="timeouts-are-sla-violations",
                    events=("fault.Timeout",),
                    classify_as=FaultCode.SLA_VIOLATION,
                )
            ]
        )
        original = SoapFault(FaultCode.TIMEOUT, "too slow", actor="http://svc")
        reclassified = monitoring.classify(original, POINT)
        assert reclassified.code is FaultCode.SLA_VIOLATION
        assert reclassified.reason == "too slow"
        assert reclassified.actor == "http://svc"

    def test_no_matching_policy_keeps_code(self):
        monitoring, _ = service_with([])
        fault = SoapFault(FaultCode.TIMEOUT, "x")
        assert monitoring.classify(fault, POINT).code is FaultCode.TIMEOUT

    def test_notify_fault_raises_event(self):
        monitoring, events = service_with([])
        monitoring.notify_fault(SoapFault(FaultCode.TIMEOUT, "x"), envelope(a=1), POINT)
        assert events and events[0].name == "fault.Timeout"
        assert events[0].fault is not None
