"""Report builders: regenerate and render the paper's tables and figures."""

from __future__ import annotations

from repro.experiments.parallel import figure5_cells, run_cells, table1_cells
from repro.metrics import Table, mean

__all__ = [
    "PAPER_TABLE1",
    "regenerate_figure5",
    "regenerate_table1",
    "regenerate_table1_per_seed",
    "render_figure5",
    "render_table1",
]

#: The paper's Table 1 values: (failures per 1000, availability).
PAPER_TABLE1 = {
    "A": (105.0, 0.952),
    "B": (81.0, 0.992),
    "C": (17.0, 0.998),
    "D": (91.0, 0.983),
    "VEP": (6.0, 0.998),
}

TABLE1_LABELS = {
    "A": "Only Retailer A used by the client",
    "B": "Only Retailer B used by the client",
    "C": "Only Retailer C used by the client",
    "D": "Only Retailer D used by the client",
    "VEP": "All 4 Retailers exposed as 1 wsBus VEP",
}


def regenerate_table1_per_seed(
    seeds=(11, 23, 47),
    clients: int = 4,
    requests: int = 250,
    tracer=None,
    jobs: int = 1,
    chunk_size: int | None = None,
):
    """Run every Table 1 cell; returns {(config, seed): Table1Row}.

    ``config`` is one of ``"A"``–``"D"`` (direct) or ``"VEP"``. With
    ``jobs > 1`` the cells fan out over a process pool (``chunk_size``
    cells per pool task; default automatic); the merged mapping is
    identical to the sequential run because every cell is independently
    seeded and the merge order is fixed by the cell key. A non-None
    ``tracer`` forces ``jobs=1`` (spans are recorded in-process).
    """
    if tracer is not None:
        jobs = 1
    cells = table1_cells(seeds, clients=clients, requests=requests, tracer=tracer)
    return run_cells(cells, jobs=jobs, chunk_size=chunk_size)


def regenerate_table1(
    seeds=(11, 23, 47),
    clients: int = 4,
    requests: int = 250,
    tracer=None,
    jobs: int = 1,
    chunk_size: int | None = None,
):
    """Run all five Table 1 configurations; returns {key: (f/1000, avail)}.

    ``tracer`` records spans of the VEP runs (the direct configurations
    bypass the bus and produce none). ``jobs`` shards the (config, seed)
    matrix across worker processes without changing the results.
    """
    per_seed = regenerate_table1_per_seed(
        seeds,
        clients=clients,
        requests=requests,
        tracer=tracer,
        jobs=jobs,
        chunk_size=chunk_size,
    )
    rows: dict[str, tuple[float, float]] = {}
    for key in ("A", "B", "C", "D", "VEP"):
        runs = [per_seed[(key, seed)] for seed in seeds]
        rows[key] = (
            mean([r.failures_per_1000 for r in runs]),
            mean([r.availability for r in runs]),
        )
    return rows


def render_table1(rows) -> str:
    table = Table(
        ["Configuration", "Reliability (ours)", "Paper", "Availability (ours)", "Paper"],
        title="Table 1 — Reliability and availability, direct vs wsBus VEP",
    )
    for key in ("A", "B", "C", "D", "VEP"):
        failures, availability = rows[key]
        paper_failures, paper_availability = PAPER_TABLE1[key]
        table.add_row(
            [
                TABLE1_LABELS[key],
                f"{failures:.0f} failures/1000",
                f"{paper_failures:.0f}",
                f"{availability:.3f}",
                f"{paper_availability:.3f}",
            ]
        )
    return table.render()


DEFAULT_SIZES_KB = (1, 2, 4, 8, 16, 32, 64)


def regenerate_figure5(
    sizes_kb=DEFAULT_SIZES_KB,
    operations=("getCatalog", "submitOrder"),
    requests: int = 150,
    tracer=None,
    jobs: int = 1,
    chunk_size: int | None = None,
):
    """Figure 5 series: {operation: (direct RTTs, wsBus RTTs)} in seconds.

    ``jobs`` shards the (operation, size, direct|bus) sweep across worker
    processes (``chunk_size`` cells per pool task; default automatic); a
    non-None ``tracer`` forces ``jobs=1``.
    """
    if tracer is not None:
        jobs = 1
    cells = figure5_cells(sizes_kb, operations, requests=requests, tracer=tracer)
    points = run_cells(cells, jobs=jobs, chunk_size=chunk_size)
    series = {}
    for operation in operations:
        direct = [points[(operation, size_kb, "direct")] for size_kb in sizes_kb]
        mediated = [points[(operation, size_kb, "bus")] for size_kb in sizes_kb]
        series[operation] = (direct, mediated)
    return series


def render_figure5(series, sizes_kb=DEFAULT_SIZES_KB) -> str:
    parts = []
    for operation, (direct, mediated) in series.items():
        table = Table(
            ["Request size", "Direct RTT (ms)", "wsBus RTT (ms)", "Overhead"],
            title=f"Figure 5 — RTT vs request size: {operation}",
        )
        for size_kb, direct_rtt, bus_rtt in zip(sizes_kb, direct, mediated):
            overhead = (bus_rtt - direct_rtt) / direct_rtt
            table.add_row(
                [
                    f"{size_kb} KB",
                    f"{direct_rtt * 1000:.2f}",
                    f"{bus_rtt * 1000:.2f}",
                    f"{overhead * 100:+.1f}%",
                ]
            )
        parts.append(table.render())
    return "\n\n".join(parts)
