"""Service hosting: simulated Web services, containers, registry, invoker.

Services implement operations as simulated processes (generators) so they
can consume processing time, call other services, and raise SOAP faults.
The :class:`ServiceRegistry` plays the UDDI role; the :class:`Invoker` is the
client-side component that sends requests, applies timeout timers and maps
transport failures onto the wsBus fault taxonomy.
"""

from repro.services.container import ServiceContainer
from repro.services.invoker import InvocationOutcome, InvocationRecord, Invoker
from repro.services.registry import ServiceRecord, ServiceRegistry
from repro.services.service import ProcessingModel, ServiceContext, SimulatedService

__all__ = [
    "InvocationOutcome",
    "InvocationRecord",
    "Invoker",
    "ProcessingModel",
    "ServiceContainer",
    "ServiceContext",
    "ServiceRecord",
    "ServiceRegistry",
    "SimulatedService",
]
