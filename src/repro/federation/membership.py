"""Fleet membership with heartbeat-based failure suspicion.

Each bus of a federated fleet heartbeats into this registry; a monitor
process suspects any member whose last heartbeat is older than
``heartbeat_interval * suspicion_multiplier``. Suspicion, joins and
graceful leaves are pushed to listeners (the fleet re-shards VEPs and the
leader election re-evaluates on every change).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.observability import NULL_METRICS, NULL_TRACER

__all__ = ["BusMember", "FleetMembership"]


@dataclass
class BusMember:
    """One bus instance as the membership layer sees it."""

    name: str
    joined_at: float
    last_heartbeat: float
    alive: bool = True
    suspected_at: float | None = None
    left_at: float | None = None
    history: list[tuple[float, str]] = field(default_factory=list)


class FleetMembership:
    """Service-discovery/membership registry for a bus fleet."""

    def __init__(
        self,
        env,
        heartbeat_interval: float = 0.5,
        suspicion_multiplier: float = 3.0,
        tracer=None,
        metrics=None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be positive: {heartbeat_interval}")
        if suspicion_multiplier <= 1.0:
            raise ValueError(f"suspicion_multiplier must exceed 1: {suspicion_multiplier}")
        self.env = env
        self.heartbeat_interval = heartbeat_interval
        self.suspicion_after = heartbeat_interval * suspicion_multiplier
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.members: dict[str, BusMember] = {}
        #: ``listener(kind, name)`` with kind in {"join", "leave", "suspect"}.
        self._listeners: list[Callable[[str, str], None]] = []
        self._monitoring = False

    def add_listener(self, listener: Callable[[str, str], None]) -> None:
        self._listeners.append(listener)

    def _notify(self, kind: str, name: str) -> None:
        member = self.members.get(name)
        if member is not None:
            member.history.append((self.env.now, kind))
        if self.metrics.enabled:
            self.metrics.counter(f"federation.membership.{kind}").inc()
        for listener in list(self._listeners):
            listener(kind, name)

    # -- lifecycle -----------------------------------------------------------------

    def join(self, name: str) -> BusMember:
        member = BusMember(name=name, joined_at=self.env.now, last_heartbeat=self.env.now)
        self.members[name] = member
        self._notify("join", name)
        return member

    def leave(self, name: str) -> None:
        """Graceful departure (announced, not suspected)."""
        member = self.members.get(name)
        if member is None or not member.alive:
            return
        member.alive = False
        member.left_at = self.env.now
        self._notify("leave", name)

    def heartbeat(self, name: str) -> None:
        member = self.members.get(name)
        if member is not None and member.left_at is None:
            member.last_heartbeat = self.env.now
            if not member.alive:
                # A suspected member heartbeating again rejoins.
                member.alive = True
                member.suspected_at = None
                self._notify("join", name)

    def alive(self) -> list[str]:
        """Sorted names of members currently believed alive."""
        return sorted(name for name, member in self.members.items() if member.alive)

    def is_alive(self, name: str) -> bool:
        member = self.members.get(name)
        return member is not None and member.alive

    # -- failure suspicion ---------------------------------------------------------

    def start(self) -> None:
        """Run the suspicion monitor (idempotent)."""
        if not self._monitoring:
            self._monitoring = True
            self.env.process(self._monitor(), name="fleet-membership-monitor")

    def _monitor(self):
        while True:
            yield self.env.timeout(self.heartbeat_interval)
            self.check_now()

    def check_now(self) -> list[str]:
        """One suspicion sweep; returns the members newly suspected."""
        suspected = []
        for name in sorted(self.members):
            member = self.members[name]
            if not member.alive or member.left_at is not None:
                continue
            if self.env.now - member.last_heartbeat > self.suspicion_after:
                member.alive = False
                member.suspected_at = self.env.now
                suspected.append(name)
                if self.tracer.enabled:
                    span = self.tracer.start_span(
                        "federation.membership.suspect",
                        attributes={
                            "bus": name,
                            "last_heartbeat": str(member.last_heartbeat),
                        },
                    )
                    span.end(status="suspected")
                self._notify("suspect", name)
        return suspected

    def summary(self) -> dict:
        return {
            "alive": self.alive(),
            "members": {
                name: {
                    "alive": member.alive,
                    "joined_at": member.joined_at,
                    "suspected_at": member.suspected_at,
                    "left_at": member.left_at,
                }
                for name, member in sorted(self.members.items())
            },
        }
