"""Shared fixtures for the paper-reproduction benchmarks.

The actual harnesses live in :mod:`repro.experiments` so the command-line
interface (``python -m repro``) and the benchmark suite share one
implementation. Each benchmark regenerates one table or figure from the
paper's evaluation; assertions check the *shape* (who wins, by what
factor, how series move), not absolute numbers.
"""

from repro.experiments.harness import (  # noqa: F401 - re-exported for benchmarks
    OverloadStormResult,
    StormResult,
    Table1Row,
    catalog_plan,
    order_plan,
    run_direct_configuration,
    run_fault_storm,
    run_overload_storm,
    run_rtt_point,
    run_vep_configuration,
)
