"""Orchestration-layer exceptions."""

from __future__ import annotations

from repro.soap import FaultCode, SoapFault

__all__ = [
    "DefinitionError",
    "ModificationError",
    "ProcessFault",
    "ProcessTerminated",
]


class DefinitionError(Exception):
    """A process definition is structurally invalid."""


class ModificationError(Exception):
    """A dynamic-modification request cannot be applied safely."""


class ProcessFault(Exception):
    """A business-process-level fault propagating through scopes.

    Wraps a :class:`~repro.soap.SoapFault` so messaging-layer faults that
    escape an Invoke and process-level Throw activities flow through the
    same handler machinery.
    """

    def __init__(self, fault: SoapFault, activity_name: str | None = None) -> None:
        super().__init__(str(fault))
        self.fault = fault
        self.activity_name = activity_name

    @property
    def code(self) -> FaultCode:
        return self.fault.code


class ProcessTerminated(Exception):
    """Raised inside an instance when a Terminate activity runs or the
    instance is terminated from outside."""

    def __init__(self, reason: str = "terminated") -> None:
        super().__init__(reason)
        self.reason = reason
