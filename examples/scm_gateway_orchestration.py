"""Gateway deployment: a composition running *through* wsBus.

The paper's first deployment mode: "wsBus can be deployed either as a
gateway to a Process Orchestration Engine... the Process Orchestration
Engine should be configured to explicitly direct service calls to the
virtual endpoints configured in wsBus."

This example builds the full WS-I SCM world, puts the four Retailers and
the Logging Facility behind VEPs, binds the workflow engine to the bus
(`bus.bind_engine`), and runs purchase compositions that reference only
*abstract service types* — while retailers crash and recover underneath.

Run:  python examples/scm_gateway_orchestration.py
"""

from repro.casestudies.scm import (
    LOGGING_CONTRACT,
    RETAILER_CONTRACT,
    build_scm_deployment,
    logging_skip_policy_document,
    retailer_recovery_policy_document,
)
from repro.orchestration import (
    Invoke,
    ProcessDefinition,
    Reply,
    Sequence,
    TrackingService,
    WorkflowEngine,
)
from repro.policy import PolicyRepository
from repro.wsbus import WsBus


def purchase_process() -> ProcessDefinition:
    """A composition that only names abstract service types."""
    return ProcessDefinition(
        "purchase-via-gateway",
        Sequence(
            "main",
            [
                Invoke(
                    "get-catalog",
                    operation="getCatalog",
                    service_type="Retailer",  # resolved to the VEP by the binder
                    extract={"catalog": "catalog"},
                    timeout_seconds=60.0,
                ),
                Invoke(
                    "submit-order",
                    operation="submitOrder",
                    service_type="Retailer",
                    inputs={"orderId": "$order_id", "items": "TVx1,Speakersx2",
                            "customerId": "$customer"},
                    extract={"status": "status", "shipped_from": "shippedFrom"},
                    timeout_seconds=60.0,
                ),
                Invoke(
                    "log-purchase",
                    operation="logEvent",
                    service_type="LoggingFacility",
                    inputs={"source": "gateway-demo", "event": "purchase-complete"},
                    timeout_seconds=60.0,
                ),
                Reply("result", variable="status"),
            ],
        ),
        initial_variables={"order_id": "order-1", "customer": "c-1"},
    )


def main() -> None:
    deployment = build_scm_deployment(seed=77, log_events=False)
    repository = PolicyRepository()
    repository.load(retailer_recovery_policy_document())  # retry x3 then failover
    repository.load(logging_skip_policy_document())       # logging is skippable

    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        member_timeout=5.0,
    )
    retailers = bus.create_vep(
        "retailers", RETAILER_CONTRACT,
        members=deployment.retailer_addresses, selection_strategy="round_robin",
    )
    bus.create_vep("logging", LOGGING_CONTRACT, members=[deployment.logging.address])

    engine = WorkflowEngine(
        deployment.env, network=deployment.network, registry=deployment.registry
    )
    engine.add_service(TrackingService())
    bus.bind_engine(engine)  # abstract types now resolve to VEP addresses
    engine.register_definition(purchase_process())

    print("The VEP publishes an abstract WSDL; members are invisible to callers:")
    wsdl = retailers.abstract_wsdl()
    print("  " + "\n  ".join(wsdl.splitlines()[:4]) + "\n  ...")

    def chaos():
        """Take retailers down and up while orders flow."""
        for name in ("A", "B", "C"):
            yield deployment.env.timeout(3.0)
            endpoint = deployment.network.endpoint(deployment.retailers[name].address)
            endpoint.available = False
            print(f"t={deployment.env.now:6.2f}s  !! Retailer{name} crashed")
            yield deployment.env.timeout(9.0)
            endpoint.available = True
            print(f"t={deployment.env.now:6.2f}s  !! Retailer{name} recovered")

    deployment.env.process(chaos())

    def run_orders():
        for index in range(8):
            instance = engine.start(
                "purchase-via-gateway",
                variables={"order_id": f"order-{index}", "customer": f"c-{index}"},
            )
            result = yield instance.process
            print(
                f"t={deployment.env.now:6.2f}s  order-{index}: {result} "
                f"(shipped from {instance.variables.get('shipped_from')})"
            )
            yield deployment.env.timeout(4.0)

    deployment.env.run(deployment.env.process(run_orders()))

    stats = bus.stats_summary()
    print(
        f"\nAll orders fulfilled through the gateway: "
        f"{stats['veps']['retailers']['requests']} retailer requests, "
        f"{stats['veps']['retailers']['recovered']} transparently recovered, "
        f"{stats['dead_letters']} dead-lettered."
    )


if __name__ == "__main__":
    main()
