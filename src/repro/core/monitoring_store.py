"""MonitoringStore: the observed-message database.

Static customization triggers come from single events, but "such events can
also be raised by the MonitoringStore database in situations when adaptation
pre-conditions refer to several different SOAP messages". The store keeps
every observed message (bounded, FIFO-evicted), indexed by process instance
and by operation, and evaluates registered correlation rules over the
history each time a message arrives.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.soap import SoapEnvelope

__all__ = ["CorrelationRule", "MonitoringStore", "StoredMessage"]


@dataclass(frozen=True)
class StoredMessage:
    """One observed message with its observation metadata."""

    time: float
    direction: str  # request | response | fault
    operation: str
    target: str
    envelope: SoapEnvelope
    process_instance_id: str | None


@dataclass(frozen=True)
class CorrelationRule:
    """A cross-message predicate.

    ``predicate`` receives the new message and the full matching history
    (newest last) and returns a context dict when the rule fires, or None.
    ``emits`` is the MASC event raised on firing.
    """

    name: str
    emits: str
    predicate: Callable[[StoredMessage, list[StoredMessage]], dict | None]
    #: Restrict the history handed to the predicate to one operation.
    operation: str | None = None


class MonitoringStore:
    """Bounded in-memory store of observed messages with correlation rules."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._messages: deque[StoredMessage] = deque(maxlen=capacity)
        self._rules: list[CorrelationRule] = []

    def add_rule(self, rule: CorrelationRule) -> None:
        self._rules.append(rule)

    def store(self, message: StoredMessage) -> list[tuple[CorrelationRule, dict]]:
        """Record a message; returns the correlation rules that fired."""
        self._messages.append(message)
        fired: list[tuple[CorrelationRule, dict]] = []
        for rule in self._rules:
            history = self.messages(operation=rule.operation)
            context = rule.predicate(message, history)
            if context is not None:
                fired.append((rule, context))
        return fired

    # -- queries -------------------------------------------------------------

    def messages(
        self,
        operation: str | None = None,
        process_instance_id: str | None = None,
        direction: str | None = None,
        target: str | None = None,
    ) -> list[StoredMessage]:
        """Matching messages, oldest first."""
        return [
            message
            for message in self._messages
            if (operation is None or message.operation == operation)
            and (process_instance_id is None or message.process_instance_id == process_instance_id)
            and (direction is None or message.direction == direction)
            and (target is None or message.target == target)
        ]

    def for_instance(self, process_instance_id: str) -> list[StoredMessage]:
        return self.messages(process_instance_id=process_instance_id)

    def __len__(self) -> int:
        return len(self._messages)
