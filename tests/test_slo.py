"""SLO engine + operations plane: the metrics→policy feedback loop.

Covers the full chain the SLO subsystem adds: WS-Policy4MASC ``Slo`` /
``BurnRateAlert`` / ``SelectionStrategy`` assertions (XML round-trip),
burn-rate evaluation over synthetic series, histogram buckets + exemplars,
the Prometheus/flight-recorder/top operations plane, and the end-to-end
loop test — fault storm + SLO policy ⇒ ``sloBurnRateExceeded`` ⇒
selection-strategy switch, with the trace chain linking exemplar →
violation span → adaptation span.
"""

import json

import pytest

from repro.observability import (
    FlightRecorder,
    Histogram,
    InMemoryExporter,
    JsonlExporter,
    MetricsRegistry,
    SloService,
    Tracer,
    labeled_name,
    read_spans_jsonl,
    render_top,
)
from repro.policy import (
    AdaptationPolicy,
    BurnRateAlertAction,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
    SelectionStrategyAction,
    SloAction,
    parse_policy_document,
    serialize_policy_document,
)
from repro.policy.actions import SELECTION_STRATEGIES
from repro.simulation import Environment


# -- policy assertions ----------------------------------------------------------


class TestSloAssertionsXml:
    def _round_trip(self, document):
        return parse_policy_document(serialize_policy_document(document))

    def test_slo_and_burn_rate_round_trip(self):
        document = PolicyDocument("slo-doc")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="availability-slo",
                triggers=("observability.slo",),
                scope=PolicyScope(endpoint="http://scm/retailer*"),
                actions=(
                    SloAction(
                        name="retailer-availability",
                        availability_target=99.5,
                        latency_target_seconds=0.8,
                        latency_percentile="p95",
                        window_seconds=600.0,
                    ),
                    BurnRateAlertAction(
                        fast_window_seconds=30.0,
                        slow_window_seconds=120.0,
                        fast_burn_threshold=10.0,
                        slow_burn_threshold=2.5,
                        evaluation_interval_seconds=4.0,
                        min_requests=7,
                    ),
                ),
            )
        )
        parsed = self._round_trip(document)
        actions = parsed.adaptation_policies[0].actions
        assert actions == document.adaptation_policies[0].actions

    def test_selection_strategy_round_trips(self):
        document = PolicyDocument("switch-doc")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="switch",
                triggers=("sloBurnRateExceeded",),
                actions=(SelectionStrategyAction(strategy="best_reliability"),),
            )
        )
        parsed = self._round_trip(document)
        assert parsed.adaptation_policies[0].actions == (
            SelectionStrategyAction(strategy="best_reliability"),
        )

    def test_slo_defaults_round_trip(self):
        document = PolicyDocument("defaults")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="defaults",
                triggers=("observability.slo",),
                actions=(SloAction(name="default-slo"), BurnRateAlertAction()),
            )
        )
        parsed = self._round_trip(document)
        assert parsed.adaptation_policies[0].actions == (
            SloAction(name="default-slo"),
            BurnRateAlertAction(),
        )

    def test_invalid_assertions_rejected(self):
        with pytest.raises(Exception):
            SloAction(name="bad", availability_target=101.0)
        with pytest.raises(Exception):
            BurnRateAlertAction(fast_window_seconds=300.0, slow_window_seconds=60.0)
        with pytest.raises(Exception):
            SelectionStrategyAction(strategy="psychic")

    def test_error_budget_derivation(self):
        assert SloAction(name="x", availability_target=99.0).error_budget == pytest.approx(
            0.01
        )

    def test_selection_strategies_match_the_bus(self):
        # actions.py duplicates the tuple to avoid a policy->wsbus import
        # cycle; this pins the two lists together.
        from repro.wsbus.selection import STRATEGIES

        assert SELECTION_STRATEGIES == STRATEGIES


# -- burn-rate evaluation over synthetic series ---------------------------------


def _slo_repository(**overrides):
    defaults = dict(
        fast_window_seconds=10.0,
        slow_window_seconds=30.0,
        fast_burn_threshold=5.0,
        slow_burn_threshold=2.0,
        evaluation_interval_seconds=5.0,
        min_requests=5,
    )
    defaults.update(overrides)
    repository = PolicyRepository()
    document = PolicyDocument("slo")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="slo-config",
            triggers=("observability.slo",),
            scope=PolicyScope(endpoint="http://svc/*"),
            actions=(
                SloAction(name="avail", availability_target=99.0, window_seconds=60.0),
                BurnRateAlertAction(**defaults),
            ),
        )
    )
    repository.load(document)
    return repository


class TestBurnRateEvaluation:
    def _service(self, **overrides):
        env = Environment()
        service = SloService(
            env, _slo_repository(**overrides), metrics=MetricsRegistry()
        )
        service.register_endpoint("http://svc/a", "Svc")
        return env, service

    def _feed(self, service, ok_count, fail_count):
        for _ in range(ok_count):
            service.record("http://svc/a", 0.02, ok=True)
        for _ in range(fail_count):
            service.record("http://svc/a", 0.02, ok=False)

    def test_inactive_without_policies_or_metrics(self):
        env = Environment()
        assert not SloService(env, PolicyRepository(), metrics=MetricsRegistry()).active
        assert not SloService(env, _slo_repository()).active  # NULL_METRICS
        assert SloService(env, _slo_repository(), metrics=MetricsRegistry()).active

    def test_burn_rate_is_failure_fraction_over_budget(self):
        env, service = self._service()
        self._feed(service, ok_count=18, fail_count=2)  # 10% failures, 1% budget
        env.run(until=5.0)
        service.evaluate()
        status = service.status_table()["http://svc/a"]["slo-config/avail"]
        assert status["fast_burn"] == pytest.approx(10.0)
        assert status["slow_burn"] == pytest.approx(10.0)

    def test_event_fires_only_when_both_windows_burn(self):
        env, service = self._service(
            fast_window_seconds=10.0, slow_window_seconds=30.0
        )
        # Seed the slow window with clean traffic, then a short fast blip:
        # the fast window burns but the slow window stays under threshold.
        # (Counter deltas bucket at evaluation ticks, so evaluate once at
        # t=15 to timestamp the clean traffic outside the later fast window.)
        self._feed(service, ok_count=200, fail_count=0)
        env.run(until=15.0)
        service.evaluate()
        self._feed(service, ok_count=8, fail_count=2)
        env.run(until=30.0)
        service.evaluate()
        status = service.status_table()["http://svc/a"]["slo-config/avail"]
        assert status["fast_burn"] >= 5.0
        assert status["slow_burn"] < 2.0
        assert [e["name"] for e in service.events] == []

    def test_sustained_burn_emits_then_recovers(self):
        env, service = self._service()
        self._feed(service, ok_count=10, fail_count=10)
        env.run(until=5.0)
        service.evaluate()
        assert [e["name"] for e in service.events] == ["sloBurnRateExceeded"]
        # The failures are still inside the SLO window: budget exhausted.
        env.run(until=10.0)
        service.evaluate()
        # Clean traffic long enough that every window slides past the burst.
        env.run(until=70.0)
        self._feed(service, ok_count=50, fail_count=0)
        env.run(until=75.0)
        service.evaluate()
        assert [e["name"] for e in service.events] == [
            "sloBurnRateExceeded",
            "errorBudgetExhausted",
            "sloRecovered",
        ]

    def test_low_volume_never_alerts(self):
        env, service = self._service(min_requests=50)
        self._feed(service, ok_count=5, fail_count=5)
        env.run(until=5.0)
        service.evaluate()
        assert service.events == []

    def test_latency_target_violation_emits(self):
        repository = PolicyRepository()
        document = PolicyDocument("slo")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="slo-config",
                triggers=("observability.slo",),
                actions=(
                    SloAction(
                        name="latency",
                        availability_target=50.0,
                        latency_target_seconds=0.1,
                        latency_percentile="p99",
                        window_seconds=60.0,
                    ),
                ),
            )
        )
        repository.load(document)
        env = Environment()
        service = SloService(env, repository, metrics=MetricsRegistry())
        for _ in range(20):
            service.record("http://svc/a", 0.5, ok=True)
        env.run(until=5.0)
        service.evaluate()
        assert [e["name"] for e in service.events] == ["sloBurnRateExceeded"]
        status = service.status_table()["http://svc/a"]["slo-config/latency"]
        assert status["latency_observed"] == pytest.approx(0.5)

    def test_events_carry_exemplar_trace_ids(self):
        env, service = self._service()
        for index in range(10):
            service.record("http://svc/a", 0.02, ok=True, trace_id=f"tr-{index:04d}")
        for index in range(10):
            service.record("http://svc/a", 0.02, ok=False, trace_id=f"tr-f{index:02d}")
        env.run(until=5.0)
        service.evaluate()
        [event] = service.events
        assert event["exemplar_trace_ids"]
        assert all(trace.startswith("tr-") for trace in event["exemplar_trace_ids"])

    def test_same_feed_same_event_sequence(self):
        sequences = []
        for _ in range(2):
            env, service = self._service()
            self._feed(service, ok_count=10, fail_count=10)
            env.run(until=5.0)
            service.evaluate()
            env.run(until=10.0)
            self._feed(service, ok_count=40, fail_count=0)
            service.evaluate()
            sequences.append(service.events)
        assert sequences[0] == sequences[1]


# -- histogram buckets + exemplars ----------------------------------------------


class TestHistogramBucketsAndExemplars:
    def test_empty_percentile_is_none_not_crash(self):
        histogram = Histogram("empty")
        assert histogram.percentile(50) is None
        assert histogram.percentile(99) is None

    def test_single_sample_percentiles_collapse(self):
        histogram = Histogram("one")
        histogram.observe(0.25)
        assert histogram.percentile(50) == 0.25
        assert histogram.percentile(99) == 0.25
        assert histogram.percentile(0) == 0.25

    def test_nearest_rank_interpolation_rule(self):
        # Documented rule: index = round(q/100 * (n-1)) over the sorted
        # window — p50 of [1..4] rounds to index 2.
        histogram = Histogram("rule")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.percentile(50) == 3.0
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 4.0

    def test_bucket_counts_are_per_bucket_not_cumulative(self):
        histogram = Histogram("b", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf

    def test_exemplars_bounded_per_bucket(self):
        histogram = Histogram("ex", buckets=(1.0,))
        for index in range(10):
            histogram.observe(0.5, trace_id=f"tr-{index}", correlation_id=f"c-{index}")
        exemplars = histogram.exemplars()
        assert len(exemplars) == Histogram.EXEMPLARS_PER_BUCKET
        # Most recent samples win.
        assert [e["trace_id"] for e in exemplars] == ["tr-8", "tr-9"]
        assert exemplars[0]["bucket_le"] == 1.0

    def test_observations_without_trace_ids_leave_no_exemplars(self):
        histogram = Histogram("quiet", buckets=(1.0,))
        histogram.observe(0.5)
        assert histogram.exemplars() == []


# -- operations plane -----------------------------------------------------------


class TestPrometheusRendering:
    def test_counters_and_histograms_render(self):
        registry = MetricsRegistry()
        registry.counter("wsbus.send.attempts").inc(3)
        histogram = registry.histogram(
            labeled_name("wsbus.endpoint.seconds", endpoint="http://svc/a"),
            buckets=(0.1, 1.0),
        )
        histogram.observe(0.05, trace_id="tr-000001")
        histogram.observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE wsbus_send_attempts_total counter" in text
        assert "wsbus_send_attempts_total 3" in text
        # Cumulative buckets with labels preserved and +Inf terminal.
        assert (
            'wsbus_endpoint_seconds_bucket{endpoint="http://svc/a",le="0.1"} 1' in text
        )
        assert (
            'wsbus_endpoint_seconds_bucket{endpoint="http://svc/a",le="+Inf"} 2' in text
        )
        assert 'wsbus_endpoint_seconds_count{endpoint="http://svc/a"} 2' in text
        # OpenMetrics-style exemplar on the bucket that holds the sample.
        assert '# {trace_id="tr-000001"}' in text

    def test_unbucketed_histogram_renders_summary_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("plain.seconds")
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'plain_seconds{quantile="0.5"}' in text
        assert "plain_seconds_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_hostile_label_values_are_escaped(self):
        # Backslashes, quotes and newlines in a label value must follow
        # Prometheus exposition escaping or the scrape breaks mid-file.
        registry = MetricsRegistry()
        hostile = 'http://svc/a"b\\c\nd'
        registry.counter(labeled_name("wsbus.requests", endpoint=hostile)).inc()
        histogram = registry.histogram(
            labeled_name("wsbus.endpoint.seconds", endpoint=hostile), buckets=(1.0,)
        )
        histogram.observe(0.5, trace_id='tr-"1\\2\n3')
        text = registry.render_prometheus()
        assert 'endpoint="http://svc/a\\"b\\\\c\\nd"' in text
        assert '# {trace_id="tr-\\"1\\\\2\\n3"}' in text
        # The raw newline never survives into the output, so every sample
        # stays one exposition line.
        assert hostile not in text
        assert 'a"b' not in text


class TestFlightRecorder:
    def test_ring_buffer_keeps_most_recent(self, tmp_path):
        recorder = FlightRecorder(capacity=3)
        tracer = Tracer(clock=lambda: 0.0)
        tracer.add_exporter(recorder)
        for index in range(5):
            tracer.start_span(f"span-{index}").end()
        assert [s["name"] for s in recorder.spans] == ["span-2", "span-3", "span-4"]
        path = recorder.dump(tmp_path / "flight.json", reason="test")
        payload = json.loads(path.read_text())
        assert payload["reason"] == "test"
        assert len(payload["spans"]) == 3
        assert recorder.dumped == [str(path)]

    def test_records_masc_events_as_plain_data(self, tmp_path):
        from repro.core.events import MASCEvent

        recorder = FlightRecorder()
        recorder.record_event(
            MASCEvent(
                name="sloBurnRateExceeded",
                time=5.0,
                endpoint="http://svc/a",
                context={"fast_burn": 10.0, "exemplars": [{"trace_id": "tr-1"}]},
            )
        )
        path = recorder.dump(tmp_path / "flight.json")
        payload = json.loads(path.read_text())
        assert payload["events"][0]["name"] == "sloBurnRateExceeded"
        assert payload["events"][0]["context"]["fast_burn"] == 10.0

    def test_dump_flushes_spans_still_open_at_the_crash(self, tmp_path):
        # A crash mid-mediation leaves open spans; the dump must include
        # them, flagged unfinished, instead of silently dropping them.
        tracer = Tracer(clock=lambda: 3.0)
        recorder = tracer.add_exporter(FlightRecorder(tracer=tracer))
        finished = tracer.start_span("wsbus.mediate")
        finished.end()
        tracer.start_span("net.exchange")  # never ends: the crash
        path = recorder.dump(tmp_path / "flight.json", reason="crash")
        payload = json.loads(path.read_text())
        assert payload["unfinished_spans_flushed"] == 1
        by_name = {record["name"]: record for record in payload["spans"]}
        assert "unfinished" not in by_name["wsbus.mediate"]["attributes"]
        assert by_name["net.exchange"]["attributes"]["unfinished"] is True
        assert by_name["net.exchange"]["end"] == 3.0

    def test_tracer_close_flushes_open_spans_to_every_exporter(self, tmp_path):
        tracer = Tracer(clock=lambda: 1.0)
        recorder = tracer.add_exporter(FlightRecorder(tracer=tracer))
        with JsonlExporter(tmp_path / "spans.jsonl") as exporter:
            tracer.add_exporter(exporter)
            tracer.start_span("wsbus.mediate")
            tracer.close()
        records = read_spans_jsonl(tmp_path / "spans.jsonl")
        assert [r.attributes.get("unfinished") for r in records] == [True]
        assert [s["name"] for s in recorder.spans] == ["wsbus.mediate"]


# -- end-to-end: the closed loop ------------------------------------------------


def _storm(**kwargs):
    from repro.experiments import run_fault_storm

    defaults = dict(seed=7, resilience=True, clients=3, requests=25)
    defaults.update(kwargs)
    return run_fault_storm(**defaults)


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def traced_storm(self):
        tracer = Tracer()
        exporter = tracer.add_exporter(InMemoryExporter())
        result = _storm(slo=True, tracer=tracer)
        return result, exporter

    def test_storm_emits_burn_rate_events(self, traced_storm):
        result, _exporter = traced_storm
        assert result.slo is not None
        names = [event["name"] for event in result.slo["events"]]
        assert "sloBurnRateExceeded" in names

    def test_reaction_policy_switches_selection_strategy(self, traced_storm):
        result, _exporter = traced_storm
        assert result.bus.veps["retailers"].selection_strategy == "best_reliability"
        switches = [
            record
            for record in result.bus.adaptation.event_adaptations
            if any("selection strategy ->" in a for a in record.actions_taken)
        ]
        assert switches and switches[0].policy == "retailer-slo-burn-reaction"

    def test_adaptation_span_parents_under_violation_span(self, traced_storm):
        _result, exporter = traced_storm
        violations = {
            span.span_id: span for span in exporter.find(name="slo.violation")
        }
        adaptations = exporter.find(name="wsbus.adaptation.event")
        assert violations and adaptations
        for span in adaptations:
            assert span.parent_id in violations
            assert violations[span.parent_id].trace_id == span.trace_id

    def test_violation_span_links_an_exemplar_request_trace(self, traced_storm):
        _result, exporter = traced_storm
        violation = exporter.find(name="slo.violation")[0]
        exemplar_trace = violation.attributes.get("exemplar.trace_id")
        assert exemplar_trace is not None
        # The exemplar points at a real recorded request trace.
        assert any(span.trace_id == exemplar_trace for span in exporter.spans)

    def test_same_seed_same_event_sequence(self):
        first = _storm(slo=True)
        second = _storm(slo=True)
        assert first.slo["events"] == second.slo["events"]
        assert first.slo["events"]  # non-trivial sequence

    def test_slo_section_in_stats_summary(self, traced_storm):
        result, _exporter = traced_storm
        summary = result.bus.stats_summary()
        assert "slo" in summary
        assert summary["slo"]["objectives"]

    def test_disabled_slo_is_byte_identical(self):
        baseline = _storm(slo=False)
        assert baseline.slo is None
        assert not baseline.bus.slo.active
        # No SLO instruments leak into the shared registry when disabled.
        assert not any(
            name.startswith(("wsbus.endpoint.", "slo."))
            for section in baseline.metrics.values()
            if isinstance(section, dict)
            for name in section
        )
        repeat = _storm(slo=False)
        assert repeat.metrics == baseline.metrics
        assert repeat.rtt_stats == baseline.rtt_stats


class TestRenderTop:
    def test_top_table_rows_per_member(self):
        result = _storm(slo=True)
        text = render_top(result.bus, window_seconds=60.0)
        assert "wsBus top" in text
        for member in result.bus.veps["retailers"].members:
            assert member in text
        assert "retailers [best_reliability]" in text

    def test_top_without_slo_falls_back_to_qos(self):
        result = _storm(slo=False)
        text = render_top(result.bus, window_seconds=60.0)
        assert "wsBus top" in text
        assert "retailers [round_robin]" in text
