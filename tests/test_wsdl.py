"""Unit tests for service contracts and message validation."""

import pytest

from repro.soap import FaultCode
from repro.wsdl import ContractViolation, MessageSchema, Operation, PartSchema, ServiceContract
from repro.xmlutils import Element

SCHEMA = MessageSchema(
    "orderRequest",
    (
        PartSchema("orderId"),
        PartSchema("amount", "float"),
        PartSchema("count", "int"),
        PartSchema("rush", "bool", required=False),
    ),
)

CONTRACT = ServiceContract(
    service_type="Orders",
    operations=(
        Operation(
            "submit",
            SCHEMA,
            MessageSchema("orderResponse", (PartSchema("status"),)),
        ),
    ),
)


class TestMessageSchema:
    def test_build_produces_valid_payload(self):
        payload = SCHEMA.build(orderId="o-1", amount=9.5, count=2)
        assert SCHEMA.validate(payload) == []
        assert payload.child_text("amount") == "9.5"

    def test_build_serializes_booleans(self):
        payload = SCHEMA.build(orderId="o", amount=1, count=1, rush=True)
        assert payload.child_text("rush") == "true"

    def test_build_rejects_unknown_part(self):
        with pytest.raises(ContractViolation):
            SCHEMA.build(orderId="o", amount=1, count=1, bogus="x")

    def test_build_rejects_missing_required(self):
        with pytest.raises(ContractViolation):
            SCHEMA.build(orderId="o")

    def test_optional_part_may_be_absent(self):
        payload = SCHEMA.build(orderId="o", amount=1, count=1)
        assert SCHEMA.validate(payload) == []

    def test_wrong_root_element(self):
        assert SCHEMA.validate(Element("somethingElse"))

    def test_type_violations_reported(self):
        payload = SCHEMA.build(orderId="o", amount=1, count=1)
        payload.find("count").text = "many"
        violations = SCHEMA.validate(payload)
        assert any("count" in violation for violation in violations)

    def test_missing_required_part_reported(self):
        payload = Element("orderRequest")
        payload.add("orderId", text="o")
        violations = SCHEMA.validate(payload)
        assert any("amount" in v for v in violations)


class TestServiceContract:
    def test_operation_lookup(self):
        assert CONTRACT.operation("submit").name == "submit"
        with pytest.raises(KeyError):
            CONTRACT.operation("ghost")

    def test_has_operation(self):
        assert CONTRACT.has_operation("submit")
        assert not CONTRACT.has_operation("cancel")

    def test_soap_action_round_trip(self):
        action = CONTRACT.operation("submit").soap_action("Orders")
        assert CONTRACT.operation_for_action(action).name == "submit"
        assert CONTRACT.operation_for_action("urn:other:thing") is None

    def test_validate_request_raises_with_details(self):
        bad = Element("orderRequest")
        with pytest.raises(ContractViolation) as excinfo:
            CONTRACT.validate_request("submit", bad)
        assert excinfo.value.violations

    def test_validate_response(self):
        good = Element("orderResponse", children=[Element("status", text="ok")])
        CONTRACT.validate_response("submit", good)  # no raise
        with pytest.raises(ContractViolation):
            CONTRACT.validate_response("submit", Element("orderResponse"))

    def test_default_declared_faults(self):
        assert FaultCode.SERVICE_FAILURE in CONTRACT.operation("submit").declared_faults
