"""Durable checkpointing and crash recovery (``repro.persistence``),
plus regression tests for the adaptation-path correctness sweep.

The rehydration-equivalence tests are the tentpole acceptance check: a
process killed at *every possible* activity boundary and rehydrated into
a fresh engine must finish with the same result, variables, and tracking
event sequence as an uninterrupted same-seed run.
"""

import pytest

from conftest import EchoService
from repro.orchestration import (
    Assign,
    Delay,
    Empty,
    Expression,
    ExpressionError,
    ModificationError,
    PersistenceService,
    ProcessDefinition,
    ProcessModifier,
    Reply,
    Sequence,
    TrackingService,
    While,
    WorkflowEngine,
)
from repro.orchestration.instance import InstanceStatus
from repro.persistence import (
    CHECKPOINT,
    MODIFICATION,
    CheckpointStore,
    CheckpointingService,
    PersistenceError,
    StateEncodingError,
    decode_value,
    decode_variables,
    encode_value,
    encode_variables,
    restore_state,
)
from repro.soap import FaultCode, SoapFault
from repro.xmlutils import Element, serialize_xml


# ---------------------------------------------------------------------------
# Value / variable encoding
# ---------------------------------------------------------------------------


class TestValueEncoding:
    @pytest.mark.parametrize("value", [None, True, 7, 2.5, "text"])
    def test_scalars_pass_through(self, value):
        assert decode_value(encode_value(value)) == value

    def test_xml_element_round_trip(self):
        element = Element("order")
        element.add("item", text="widget")
        restored = decode_value(encode_value(element))
        assert serialize_xml(restored) == serialize_xml(element)

    def test_soap_fault_round_trip(self):
        fault = SoapFault(
            FaultCode.SLA_VIOLATION, "too slow", actor="http://svc", source="bus"
        )
        restored = decode_value(encode_value(fault))
        assert restored.code is FaultCode.SLA_VIOLATION
        assert restored.reason == "too slow"
        assert restored.actor == "http://svc"

    def test_nested_containers_round_trip(self):
        value = {"rows": [(1, "a"), (2, "b")], "tags": {"x", "y"}, 3: "int-key"}
        restored = decode_value(encode_value(value))
        assert restored == value
        assert isinstance(restored["rows"][0], tuple)
        assert isinstance(restored["tags"], set)

    def test_unsupported_type_raises(self):
        with pytest.raises(StateEncodingError):
            encode_value(object())

    def test_variable_errors_name_the_variable(self):
        with pytest.raises(StateEncodingError, match="bad_var"):
            encode_variables({"ok": 1, "bad_var": object()})

    def test_variables_round_trip(self):
        variables = {"x": 1, "nested": {"deep": [1, 2, {"deeper": True}]}}
        assert decode_variables(encode_variables(variables)) == variables


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------


class TestCheckpointStore:
    def test_append_assigns_monotonic_seq(self):
        store = CheckpointStore()
        first = store.append({"type": CHECKPOINT, "instance_id": "i1"})
        second = store.append({"type": MODIFICATION, "instance_id": "i1"})
        assert second["seq"] > first["seq"]
        assert len(store) == 2

    def test_record_queries(self):
        store = CheckpointStore()
        store.append({"type": CHECKPOINT, "instance_id": "i1", "n": 1})
        store.append({"type": MODIFICATION, "instance_id": "i1", "n": 2})
        store.append({"type": CHECKPOINT, "instance_id": "i1", "n": 3})
        store.append({"type": CHECKPOINT, "instance_id": "i2", "n": 4})
        assert store.instance_ids() == ["i1", "i2"]
        assert store.latest_checkpoint("i1")["n"] == 3
        assert [r["n"] for r in store.records("i1", CHECKPOINT)] == [1, 3]
        first_seq = store.records("i1", CHECKPOINT)[0]["seq"]
        assert [r["n"] for r in store.journal_after("i1", first_seq)] == [2]

    def test_file_backed_store_reloads(self, tmp_path):
        path = tmp_path / "checkpoints.jsonl"
        store = CheckpointStore(path)
        store.append({"type": CHECKPOINT, "instance_id": "i1", "n": 1})
        store.append({"type": CHECKPOINT, "instance_id": "i1", "n": 2})
        reopened = CheckpointStore(path)
        assert len(reopened) == 2
        assert reopened.latest_checkpoint("i1")["n"] == 2


# ---------------------------------------------------------------------------
# Engine-level checkpointing and rehydration
# ---------------------------------------------------------------------------


def three_step_definition():
    return ProcessDefinition(
        "steps",
        Sequence(
            "main",
            [
                Sequence("part1", [Delay("d1", 1.0), Assign("a1", "x", value=1)]),
                Sequence("part2", [Delay("d2", 1.0), Assign("a2", "y", value=2)]),
                Reply("r", variable="y"),
            ],
        ),
    )


def loop_definition():
    return ProcessDefinition(
        "looper",
        Sequence(
            "main",
            [
                Assign("init", "x", value=0),
                While(
                    "loop",
                    condition="x < 4",
                    body=Sequence(
                        "body",
                        [Delay("tick", 1.0), Assign("inc", "x", expression="x + 1")],
                    ),
                ),
                Reply("r", variable="x"),
            ],
        ),
    )


@pytest.fixture
def engine(env, network, container):
    container.deploy(EchoService(env, "echo1", "http://test/echo"))
    return WorkflowEngine(env, network=network)


class TestCheckpointing:
    def test_checkpoints_written_at_completions(self, env, network):
        from repro.observability import MetricsRegistry

        engine = WorkflowEngine(env, network=network, metrics=MetricsRegistry())
        store = CheckpointStore()
        engine.add_service(CheckpointingService(store, strict=True))
        instance = engine.start(three_step_definition())
        engine.run_to_completion(instance)
        checkpoints = store.records(instance.id, CHECKPOINT)
        assert checkpoints, "no checkpoints recorded"
        final = checkpoints[-1]
        assert final["status"] == "completed"
        assert decode_variables(final["variables"]) == {"x": 1, "y": 2}
        assert "main" in final["executed"]
        assert engine.metrics.counter("persistence.checkpoints").value == len(
            checkpoints
        )

    def test_restore_state_without_checkpoint_raises(self):
        with pytest.raises(PersistenceError):
            restore_state(CheckpointStore(), "missing")

    def test_rehydrate_resumes_mid_sequence(self, env, network, engine):
        store = CheckpointStore()
        engine.add_service(CheckpointingService(store, strict=True))
        instance = engine.start(three_step_definition())

        def killer():
            yield env.timeout(1.5)  # part1 done, d2 in flight
            engine.crash()

        env.process(killer())
        env.run(until=3.0)
        assert instance.status is InstanceStatus.RUNNING  # frozen, not dead
        state = restore_state(store, instance.id)
        assert "part1" in state.executed
        assert "a2" not in state.completions

        recovery = WorkflowEngine(env, network=network)
        tracking = recovery.add_service(TrackingService())
        recovered = recovery.rehydrate(store, instance.id)
        assert recovery.run_to_completion(recovered) == 2
        assert recovered.variables == {"x": 1, "y": 2}
        replayed = [e for e in tracking.events if e.kind == "activity_replayed"]
        assert replayed, "completed activities should replay, not re-execute"

    def test_rehydrated_loop_converges(self, env, network, engine):
        store = CheckpointStore()
        engine.add_service(CheckpointingService(store, strict=True))
        instance = engine.start(loop_definition())

        def killer():
            yield env.timeout(2.5)  # mid third iteration
            engine.crash()

        env.process(killer())
        env.run(until=4.0)
        recovery = WorkflowEngine(env, network=network)
        recovered = recovery.rehydrate(store, instance.id)
        assert recovery.run_to_completion(recovered) == 4
        assert recovered.variables["x"] == 4

    def test_rehydrate_suspended_instance(self, env, network, engine):
        store = CheckpointStore()
        engine.add_service(CheckpointingService(store, strict=True))
        instance = engine.start(three_step_definition())

        def killer():
            yield env.timeout(1.5)
            instance.suspend()
            yield env.timeout(1.0)
            engine.crash()

        env.process(killer())
        env.run(until=4.0)
        recovery = WorkflowEngine(env, network=network)
        recovered = recovery.rehydrate(store, instance.id)
        assert recovered.status is InstanceStatus.SUSPENDED

        def resumer():
            yield env.timeout(1.0)
            recovered.resume()

        env.process(resumer())
        assert recovery.run_to_completion(recovered) == 2

    def test_crashed_engine_refuses_work(self, env, engine):
        store = CheckpointStore()
        engine.add_service(CheckpointingService(store, strict=True))
        instance = engine.start(three_step_definition())
        env.run(until=1.5)
        engine.crash()
        engine.crash()  # idempotent
        with pytest.raises(RuntimeError, match="crashed"):
            engine.start(three_step_definition())
        with pytest.raises(PersistenceError, match="crashed"):
            engine.rehydrate(store, instance.id)

    def test_rehydrating_completed_instance_rejected(self, env, network, engine):
        store = CheckpointStore()
        engine.add_service(CheckpointingService(store, strict=True))
        instance = engine.start(three_step_definition())
        engine.run_to_completion(instance)
        recovery = WorkflowEngine(env, network=network)
        with pytest.raises(PersistenceError, match="final"):
            recovery.rehydrate(store, instance.id)


class TestModificationJournal:
    def test_modification_journaled_and_replayed(self, env, network, engine):
        store = CheckpointStore()
        engine.add_service(CheckpointingService(store, strict=True))
        instance = engine.start(three_step_definition())

        def meddler():
            yield env.timeout(1.5)
            instance.suspend()
            modifier = ProcessModifier(instance)
            modifier.insert_after("part2", Assign("injected", "y", expression="y * 10"))
            modifier.bind_variables({"z": 99})
            modifier.apply()
            instance.resume()
            yield env.timeout(0.1)
            engine.crash()

        env.process(meddler())
        env.run(until=4.0)
        assert store.records(instance.id, MODIFICATION)

        state = restore_state(store, instance.id)
        assert any(node.name == "injected" for node in state.root.iter_tree())
        assert state.variables["z"] == 99

        recovery = WorkflowEngine(env, network=network)
        recovered = recovery.rehydrate(store, instance.id)
        assert recovery.run_to_completion(recovered) == 20
        assert recovered.variables["y"] == 20


# ---------------------------------------------------------------------------
# Kill-at-every-checkpoint equivalence (property-style, both case studies)
# ---------------------------------------------------------------------------


class TestCrashRecoveryEquivalence:
    """Rehydration equivalence swept over every crash point.

    ``run_crash_recovery`` compares a killed-and-recovered run against an
    uninterrupted same-seed reference: same final status/result, same
    variables, and reference events == pre-crash events + recovered live
    events (replay markers excluded).
    """

    @pytest.mark.parametrize("crash_after", [1, 2, 3, 4])
    def test_scm_equivalent_at_every_boundary(self, crash_after):
        from repro.experiments import run_crash_recovery

        result = run_crash_recovery(
            process="scm", seed=5, crash_after_completions=crash_after
        )
        assert result.equivalent, result.divergences
        # A crash after the last freeze point drains to completion (0
        # replays); any earlier crash replays exactly the completed work.
        assert result.replayed_activities in (crash_after, 0)

    @pytest.mark.parametrize("crash_after", [1, 2, 3, 4, 5, 6])
    def test_trading_equivalent_at_every_boundary(self, crash_after):
        from repro.experiments import run_crash_recovery

        result = run_crash_recovery(
            process="trading", seed=5, crash_after_completions=crash_after
        )
        assert result.equivalent, result.divergences
        assert result.replayed_activities in (crash_after, 0)

    def test_file_backed_store_survives(self, tmp_path):
        from repro.experiments import run_crash_recovery

        path = tmp_path / "scm.jsonl"
        result = run_crash_recovery(
            process="scm", seed=1, crash_after_completions=2, store_path=path
        )
        assert result.equivalent
        reloaded = CheckpointStore(path)
        assert len(reloaded.records(record_type=CHECKPOINT)) == result.checkpoints


# ---------------------------------------------------------------------------
# Satellite regressions: the adaptation-path correctness sweep
# ---------------------------------------------------------------------------


class TestExpressionResourceBounds:
    """Satellite 1: the safe evaluator must also be *cheap* to evaluate."""

    def test_huge_exponent_rejected(self):
        with pytest.raises(ExpressionError):
            Expression("2 ** 2 ** 30").evaluate({})

    def test_sequence_repetition_rejected(self):
        with pytest.raises(ExpressionError, match="sequence repetition"):
            Expression("[0] * 10 ** 9").evaluate({})

    def test_string_repetition_rejected(self):
        with pytest.raises(ExpressionError, match="sequence repetition"):
            Expression("'a' * 3").evaluate({})

    def test_huge_multiplication_operand_rejected(self):
        big = 1 << 5000
        with pytest.raises(ExpressionError, match="bits"):
            Expression("x * 2").evaluate({"x": big})

    def test_ordinary_arithmetic_still_works(self):
        assert Expression("2 ** 10").evaluate({}) == 1024
        assert Expression("3 * 4").evaluate({}) == 12
        assert Expression("2.5 ** -2").evaluate({}) == pytest.approx(0.16)


class TestMonitoringViolationEmits:
    """Satellite 2: a classified violation must still raise its MASC events."""

    def test_classified_violation_delivers_emits(self):
        from test_wsbus_monitoring import POINT, envelope, service_with

        from repro.policy import MessageCondition, MonitoringPolicy

        monitoring, events = service_with(
            [
                MonitoringPolicy(
                    name="amount-cap",
                    events=("message.request",),
                    conditions=(MessageCondition("amount", "lte", "1000"),),
                    classify_as=FaultCode.SERVICE_FAILURE,
                    emits=("order.rejected",),
                )
            ]
        )
        fault = monitoring.check_message("request", envelope(amount=5000), POINT)
        assert fault is not None and fault.code is FaultCode.SERVICE_FAILURE
        assert [e.name for e in events] == ["order.rejected"]
        assert events[0].context["violated_policy"] == "amount-cap"
        assert events[0].fault is fault


class TestReplaceExecutedValidation:
    """Satellite 3: replacing an executed activity re-runs it out of order."""

    def test_replace_of_executed_activity_rejected(self, env, engine):
        instance = engine.start(three_step_definition())

        def meddler():
            yield env.timeout(1.5)  # part1 already executed
            instance.suspend()
            modifier = ProcessModifier(instance)
            modifier.replace("part1", Empty("renamed-part1"))
            with pytest.raises(ModificationError, match="cannot replace executed"):
                modifier.apply()
            instance.resume()

        env.process(meddler())
        engine.run_to_completion(instance)

    def test_same_name_replacement_of_executed_allowed(self, env, engine):
        instance = engine.start(three_step_definition())

        def meddler():
            yield env.timeout(1.5)
            instance.suspend()
            modifier = ProcessModifier(instance)
            modifier.replace("part1", Empty("part1"))
            modifier.apply()
            instance.resume()

        env.process(meddler())
        assert engine.run_to_completion(instance) == 2


class TestSnapshotEncoding:
    """Satellite 4: snapshots keep every variable, including nested ones."""

    def test_nested_variables_survive_snapshot(self, env, engine):
        persistence = engine.add_service(PersistenceService())
        definition = ProcessDefinition(
            "nested",
            Sequence(
                "main",
                [
                    Assign("a1", "config", value={"limits": [1, 2, 3], "on": True}),
                    Delay("d", 1.0),
                    Reply("r", variable="config"),
                ],
            ),
        )
        instance = engine.start(definition)
        engine.run_to_completion(instance)
        latest = persistence.latest(instance.id)
        assert latest.variables["config"] == {"limits": [1, 2, 3], "on": True}
        # The snapshot is an independent copy, not a live reference.
        instance.variables["config"]["on"] = False
        assert latest.variables["config"]["on"] is True


# ---------------------------------------------------------------------------
# Saga crash recovery: kill at every boundary, incl. mid-compensation
# ---------------------------------------------------------------------------


class TestSagaCrashRecovery:
    """The saga compositions swept over *every* activity boundary.

    Both case-study sagas abort after the payment/trade step, so the
    later kill points land inside the compensation chain — a crash
    mid-compensation must rehydrate and finish the remaining
    compensation steps exactly once, matching an uninterrupted
    same-seed run that aborts at the same point.
    """

    @pytest.mark.parametrize("process", ["scm-saga", "trading-saga"])
    def test_equivalent_at_every_boundary(self, process):
        from repro.experiments import count_crash_boundaries, run_crash_recovery

        boundaries = count_crash_boundaries(process, seed=5)
        assert boundaries >= 8, "saga sweep should cover compensation steps too"
        for crash_after in range(1, boundaries + 1):
            result = run_crash_recovery(
                process=process, seed=5, crash_after_completions=crash_after
            )
            assert result.equivalent, (
                f"{process} crash after {crash_after}: {result.divergences}"
            )

    @pytest.mark.parametrize("process", ["scm-saga", "trading-saga"])
    def test_journal_replay_matches_checkpoints_at_every_boundary(
        self, process, tmp_path
    ):
        from repro.experiments import count_crash_boundaries, run_crash_recovery
        from repro.persistence import verify_journal

        boundaries = count_crash_boundaries(process, seed=3)
        for crash_after in range(1, boundaries + 1):
            path = tmp_path / f"{process}-{crash_after}.jsonl"
            result = run_crash_recovery(
                process=process, seed=3, crash_after_completions=crash_after,
                store_path=path,
            )
            assert result.equivalent, result.divergences
            divergences = verify_journal(CheckpointStore(path))
            assert not divergences, (
                f"{process} crash after {crash_after}: journal-derived snapshots "
                f"diverge: {divergences}"
            )


# ---------------------------------------------------------------------------
# Store hardening: truncated trailing record, fsync
# ---------------------------------------------------------------------------


class TestStoreHardening:
    def populated_store(self, path):
        store = CheckpointStore(path)
        store.append({"type": CHECKPOINT, "instance_id": "p-1", "status": "running"})
        store.append({"type": CHECKPOINT, "instance_id": "p-1", "status": "completed"})
        return store

    def test_truncated_trailing_line_dropped_with_warning(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self.populated_store(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "checkpoint", "instance_id": "p-1", "stat')
        with pytest.warns(RuntimeWarning, match="truncated trailing"):
            reloaded = CheckpointStore(path)
        assert len(reloaded.records()) == 2
        # Appending after the drop continues the sequence cleanly.
        record = reloaded.append({"type": MODIFICATION, "instance_id": "p-1"})
        assert record["seq"] == 3

    def test_corruption_before_the_tail_still_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self.populated_store(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][:20]  # damage the *first* record
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(Exception):
            CheckpointStore(path)

    def test_fsync_flag_persists_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        store = CheckpointStore(path, fsync=True)
        store.append({"type": CHECKPOINT, "instance_id": "p-1", "status": "running"})
        assert len(CheckpointStore(path).records()) == 1
