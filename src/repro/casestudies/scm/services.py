"""SCM service implementations."""

from __future__ import annotations

from collections.abc import Generator

from repro.casestudies.scm.contracts import (
    CONFIGURATION_CONTRACT,
    LOGGING_CONTRACT,
    MANUFACTURER_CONTRACT,
    RETAILER_CONTRACT,
    WAREHOUSE_CONTRACT,
)
from repro.services import ServiceRegistry, SimulatedService
from repro.soap import FaultCode, SoapFault, SoapFaultError
from repro.xmlutils import Element

__all__ = [
    "ConfigurationService",
    "DEFAULT_CATALOG",
    "LoggingFacilityService",
    "ManufacturerService",
    "RetailerService",
    "WarehouseService",
    "parse_order_items",
]

#: Electronic goods sold by the sample application (product -> unit price).
DEFAULT_CATALOG: dict[str, float] = {
    "TV": 1299.0,
    "DVD": 199.0,
    "Camcorder": 899.0,
    "Receiver": 499.0,
    "Speakers": 249.0,
    "Projector": 1899.0,
    "Console": 599.0,
    "Headphones": 149.0,
    "Soundbar": 329.0,
    "Turntable": 279.0,
}


def parse_order_items(items_text: str) -> list[tuple[str, int]]:
    """Parse the order line format ``ProductxQty,ProductxQty``."""
    items: list[tuple[str, int]] = []
    for chunk in items_text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        product, _, quantity = chunk.rpartition("x")
        if not product:
            raise SoapFaultError(
                SoapFault(FaultCode.CLIENT, f"malformed order item {chunk!r}")
            )
        items.append((product, int(quantity)))
    return items


class LoggingFacilityService(SimulatedService):
    """The Logging Facility: participants log events, customers track them."""

    contract = LOGGING_CONTRACT

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.events: list[tuple[float, str, str]] = []

    def op_logEvent(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        source = payload.child_text("source", "") or ""
        event = payload.child_text("event", "") or ""
        self.events.append((self.env.now, source, event))
        return LOGGING_CONTRACT.operation("logEvent").output.build(logged=True)

    def op_getEvents(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        source = payload.child_text("source")
        matching = [
            f"{time:.3f}:{src}:{event}"
            for time, src, event in self.events
            if source is None or src == source
        ]
        return LOGGING_CONTRACT.operation("getEvents").output.build(
            events=";".join(matching[-50:]), count=len(matching)
        )


class ManufacturerService(SimulatedService):
    """A manufacturer accepting purchase orders to replenish a warehouse."""

    contract = MANUFACTURER_CONTRACT

    def __init__(self, *args, lead_time_seconds: float = 5.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.lead_time_seconds = lead_time_seconds
        self.orders_accepted = 0

    def op_submitPO(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        self.orders_accepted += 1
        return MANUFACTURER_CONTRACT.operation("submitPO").output.build(
            accepted=True, leadTime=self.lead_time_seconds
        )


class WarehouseService(SimulatedService):
    """A warehouse shipping goods and restocking from its manufacturer.

    "When an item in a Warehouse stock falls below a certain threshold, the
    Warehouse must restock the item from the Manufacturer's inventory."
    Restocking is asynchronous: the PO is submitted inline, stock arrives
    after the manufacturer's lead time.
    """

    contract = WAREHOUSE_CONTRACT

    def __init__(
        self,
        *args,
        manufacturer_address: str | None = None,
        initial_stock: int = 50,
        restock_threshold: int = 10,
        restock_quantity: int = 50,
        catalog: dict[str, float] | None = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.manufacturer_address = manufacturer_address
        self.restock_threshold = restock_threshold
        self.restock_quantity = restock_quantity
        self.stock: dict[str, int] = {
            product: initial_stock for product in (catalog or DEFAULT_CATALOG)
        }
        self._restocking: set[str] = set()
        self.shipments = 0
        self.stockouts = 0
        self.returns = 0

    def op_checkStock(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        product = payload.child_text("product", "") or ""
        return WAREHOUSE_CONTRACT.operation("checkStock").output.build(
            product=product, level=self.stock.get(product, 0)
        )

    def op_restock(self, payload: Element, ctx) -> Generator:
        """Return previously shipped goods to stock (saga compensation)."""
        yield ctx.work()
        product = payload.child_text("product", "") or ""
        quantity = int(payload.child_text("quantity", "0") or 0)
        if quantity <= 0:
            raise SoapFaultError(
                SoapFault(FaultCode.CLIENT, f"invalid quantity {quantity}")
            )
        self.stock[product] = self.stock.get(product, 0) + quantity
        self.returns += 1
        return WAREHOUSE_CONTRACT.operation("restock").output.build(
            product=product, level=self.stock[product]
        )

    def op_shipGoods(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        product = payload.child_text("product", "") or ""
        quantity = int(payload.child_text("quantity", "0") or 0)
        if quantity <= 0:
            raise SoapFaultError(
                SoapFault(FaultCode.CLIENT, f"invalid quantity {quantity}")
            )
        available = self.stock.get(product, 0)
        if available < quantity:
            self.stockouts += 1
            response = WAREHOUSE_CONTRACT.operation("shipGoods").output.build(
                shipped=False, warehouse=self.name
            )
        else:
            self.stock[product] = available - quantity
            self.shipments += 1
            response = WAREHOUSE_CONTRACT.operation("shipGoods").output.build(
                shipped=True, warehouse=self.name
            )
        if (
            self.stock.get(product, 0) < self.restock_threshold
            and product not in self._restocking
            and self.manufacturer_address is not None
        ):
            self._restocking.add(product)
            self.env.process(self._restock(product), name=f"restock:{self.name}:{product}")
        return response

    def _restock(self, product: str) -> Generator:
        """Submit a PO and receive the goods after the lead time."""
        try:
            request = MANUFACTURER_CONTRACT.operation("submitPO").input.build(
                product=product, quantity=self.restock_quantity
            )
            response = yield from self.invoker.invoke(
                self.manufacturer_address, "submitPO", request, timeout=10.0
            )
            lead_time = float(response.body.child_text("leadTime", "5.0") or 5.0)
            yield self.env.timeout(lead_time)
            self.stock[product] = self.stock.get(product, 0) + self.restock_quantity
        except SoapFaultError:
            pass  # manufacturer unavailable: stock stays low until next trigger
        finally:
            self._restocking.discard(product)


class RetailerService(SimulatedService):
    """A retailer fulfilling orders with warehouse fall-through A→B→C."""

    contract = RETAILER_CONTRACT

    def __init__(
        self,
        *args,
        warehouse_addresses: list[str] | None = None,
        logging_address: str | None = None,
        catalog: dict[str, float] | None = None,
        log_events: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.warehouse_addresses = list(warehouse_addresses or ())
        self.logging_address = logging_address
        self.catalog = dict(catalog or DEFAULT_CATALOG)
        #: Rendered catalog reply text, rebuilt only when the catalog changes
        #: (every getCatalog reply is the same string otherwise).
        self._catalog_text: str | None = None
        self._catalog_text_source: dict[str, float] | None = None
        self.log_events = log_events
        self.orders_fulfilled = 0
        self.orders_rejected = 0
        self.orders_cancelled = 0
        self.payments_refunded = 0
        #: Fulfilled-but-cancellable orders:
        #: orderId -> [(product, quantity, warehouse address), ...].
        self.open_orders: dict[str, list[tuple[str, int, str]]] = {}
        #: Collected payments: paymentId -> (customerId, amount).
        self.payments: dict[str, tuple[str, float]] = {}

    def _log(self, event: str) -> Generator:
        """Log a business event; logging failures never fail the use case."""
        if not self.log_events or self.logging_address is None:
            return
        try:
            request = LOGGING_CONTRACT.operation("logEvent").input.build(
                source=self.name, event=event
            )
            yield from self.invoker.invoke(
                self.logging_address, "logEvent", request, timeout=5.0
            )
        except SoapFaultError:
            pass

    def op_getCatalog(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        yield from self._log("getCatalog")
        catalog_text = self._catalog_text
        if catalog_text is None or self._catalog_text_source != self.catalog:
            catalog_text = ";".join(
                f"{product}:{price:.2f}" for product, price in sorted(self.catalog.items())
            )
            self._catalog_text = catalog_text
            self._catalog_text_source = dict(self.catalog)
        return RETAILER_CONTRACT.operation("getCatalog").output.build_interned(
            catalog=catalog_text, itemCount=len(self.catalog)
        )

    def op_submitOrder(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        order_id = payload.child_text("orderId", "") or ""
        items = parse_order_items(payload.child_text("items", "") or "")
        if not items:
            raise SoapFaultError(SoapFault(FaultCode.CLIENT, "order has no items"))
        shipped_from: list[str] = []
        reservations: list[tuple[str, int, str]] = []
        for product, quantity in items:
            if product not in self.catalog:
                raise SoapFaultError(
                    SoapFault(FaultCode.CLIENT, f"unknown product {product!r}")
                )
            fulfilled = yield from self._fulfil(product, quantity)
            if fulfilled is None:
                self.orders_rejected += 1
                yield from self._log(f"submitOrder:{order_id}:rejected")
                return RETAILER_CONTRACT.operation("submitOrder").output.build(
                    orderId=order_id, status="rejected", shippedFrom="none"
                )
            warehouse, address = fulfilled
            shipped_from.append(warehouse)
            reservations.append((product, quantity, address))
        self.orders_fulfilled += 1
        self.open_orders[order_id] = reservations
        yield from self._log(f"submitOrder:{order_id}:fulfilled")
        return RETAILER_CONTRACT.operation("submitOrder").output.build(
            orderId=order_id, status="fulfilled", shippedFrom=",".join(shipped_from)
        )

    def op_cancelOrder(self, payload: Element, ctx) -> Generator:
        """Saga compensation for submitOrder: reverse the reservations."""
        yield ctx.work()
        order_id = payload.child_text("orderId", "") or ""
        reservations = self.open_orders.pop(order_id, None)
        if reservations is None:
            return RETAILER_CONTRACT.operation("cancelOrder").output.build(
                orderId=order_id, status="unknown"
            )
        for product, quantity, address in reservations:
            request = WAREHOUSE_CONTRACT.operation("restock").input.build(
                product=product, quantity=quantity
            )
            try:
                yield from self.invoker.invoke(address, "restock", request, timeout=10.0)
            except SoapFaultError:
                pass  # warehouse unreachable: the goods are written off
        self.orders_cancelled += 1
        yield from self._log(f"cancelOrder:{order_id}:cancelled")
        return RETAILER_CONTRACT.operation("cancelOrder").output.build(
            orderId=order_id, status="cancelled"
        )

    def op_collectPayment(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        order_id = payload.child_text("orderId", "") or ""
        customer_id = payload.child_text("customerId", "") or ""
        amount = float(payload.child_text("amount", "0") or 0.0)
        payment_id = f"pay-{order_id}"
        self.payments[payment_id] = (customer_id, amount)
        yield from self._log(f"collectPayment:{payment_id}:collected")
        return RETAILER_CONTRACT.operation("collectPayment").output.build(
            paymentId=payment_id, status="collected"
        )

    def op_refundPayment(self, payload: Element, ctx) -> Generator:
        """Saga compensation for collectPayment."""
        yield ctx.work()
        payment_id = payload.child_text("paymentId", "") or ""
        if self.payments.pop(payment_id, None) is None:
            return RETAILER_CONTRACT.operation("refundPayment").output.build(
                paymentId=payment_id, status="unknown"
            )
        self.payments_refunded += 1
        yield from self._log(f"refundPayment:{payment_id}:refunded")
        return RETAILER_CONTRACT.operation("refundPayment").output.build(
            paymentId=payment_id, status="refunded"
        )

    def _fulfil(self, product: str, quantity: int) -> Generator:
        """Warehouse fall-through: first warehouse that can ship wins.

        Returns ``(warehouse name, warehouse address)`` — the address is
        kept with the reservation so a cancelOrder can restock the exact
        warehouse that shipped.
        """
        request = WAREHOUSE_CONTRACT.operation("shipGoods").input.build(
            product=product, quantity=quantity
        )
        for address in self.warehouse_addresses:
            try:
                response = yield from self.invoker.invoke(
                    address, "shipGoods", request.copy(), timeout=10.0
                )
            except SoapFaultError:
                continue  # warehouse unreachable: fall through to the next
            if (response.body.child_text("shipped") or "") == "true":
                return (response.body.child_text("warehouse"), address)
        return None


class ConfigurationService(SimulatedService):
    """Lists registered implementations of each service type (UDDI front)."""

    contract = CONFIGURATION_CONTRACT

    def __init__(self, *args, registry: ServiceRegistry | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.registry = registry

    def op_getImplementations(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        service_type = payload.child_text("serviceType", "") or ""
        records = self.registry.find(service_type) if self.registry is not None else []
        return CONFIGURATION_CONTRACT.operation("getImplementations").output.build(
            addresses=",".join(record.address for record in records),
            count=len(records),
        )
