"""The sharded experiment runner: determinism, merge order, crash reporting."""

import json
import os
from dataclasses import asdict

import pytest

from repro.experiments import (
    Cell,
    ShardError,
    regenerate_figure5,
    regenerate_table1_per_seed,
    run_cells,
)

# -- cell functions (module level: picklable by reference) ----------------------


def _double(value):
    return value * 2


def _raise(value):
    raise RuntimeError(f"cell {value} exploded")


def _die(value):
    os._exit(13)  # simulate a hard worker crash (segfault/OOM-kill)


# -- runner mechanics -----------------------------------------------------------


class TestRunCells:
    def test_merge_order_is_sorted_by_key_not_submission(self):
        cells = [Cell(("b",), _double, {"value": 2}), Cell(("a",), _double, {"value": 1})]
        merged = run_cells(cells, jobs=1)
        assert list(merged) == [("a",), ("b",)]
        assert merged == {("a",): 2, ("b",): 4}

    def test_duplicate_keys_rejected(self):
        cells = [Cell(("a",), _double, {"value": 1}), Cell(("a",), _double, {"value": 2})]
        with pytest.raises(ValueError, match="duplicate"):
            run_cells(cells, jobs=1)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failed_cell_is_reported_by_key_not_dropped(self, jobs):
        cells = [
            Cell(("ok",), _double, {"value": 1}),
            Cell(("boom",), _raise, {"value": 2}),
        ]
        with pytest.raises(ShardError) as excinfo:
            run_cells(cells, jobs=jobs)
        assert ("boom",) in excinfo.value.failures
        assert "exploded" in str(excinfo.value)

    def test_dead_worker_process_surfaces_as_shard_error(self):
        # A worker that dies mid-cell (not a Python exception: the process
        # itself exits) must neither hang the merge nor silently drop the
        # cell — the pool error is attributed to the cell's key. (A second
        # cell keeps the run off the single-cell inline path.)
        cells = [
            Cell(("dead",), _die, {"value": 1}),
            Cell(("ok",), _double, {"value": 1}),
        ]
        with pytest.raises(ShardError) as excinfo:
            run_cells(cells, jobs=2)
        assert ("dead",) in excinfo.value.failures

    def test_dead_worker_discards_pool_and_next_run_recovers(self):
        # BrokenProcessPool poisons the executor; run_cells must drop the
        # cached pool so the *next* call gets healthy workers again.
        from repro.experiments import parallel

        with pytest.raises(ShardError):
            run_cells(
                [Cell(("dead",), _die, {"value": 1}), Cell(("ok",), _double, {"value": 1})],
                jobs=2,
            )
        assert parallel._pool is None
        merged = run_cells(
            [Cell(("a",), _double, {"value": 1}), Cell(("b",), _double, {"value": 2})],
            jobs=2,
        )
        assert merged == {("a",): 2, ("b",): 4}

    def test_pool_persists_across_run_cells_calls(self):
        # The whole point of runner v2: fork once, reuse the workers.
        from repro.experiments import parallel

        cells = [Cell(("a",), _double, {"value": 1}), Cell(("b",), _double, {"value": 2})]
        run_cells(cells, jobs=2)
        first = parallel._pool
        assert first is not None
        run_cells(cells, jobs=2)
        assert parallel._pool is first

    def test_explicit_chunk_size_changes_batching_not_results(self):
        cells = [Cell((name,), _double, {"value": i}) for i, name in enumerate("abcdef")]
        expected = run_cells(cells, jobs=1)
        for chunk_size in (1, 2, 6, 99):
            assert run_cells(cells, jobs=2, chunk_size=chunk_size) == expected

    def test_failing_cell_does_not_lose_its_chunk_mates(self):
        # One bad cell in a multi-cell chunk: the others still report, and
        # only the bad key lands in the failure map.
        cells = [
            Cell(("a",), _double, {"value": 1}),
            Cell(("boom",), _raise, {"value": 2}),
            Cell(("c",), _double, {"value": 3}),
        ]
        with pytest.raises(ShardError) as excinfo:
            run_cells(cells, jobs=2, chunk_size=3)
        assert list(excinfo.value.failures) == [("boom",)]


class TestPoolFallbacks:
    """run_cells must degrade gracefully on platforms without fork."""

    def test_no_fork_falls_back_to_spawn_with_warning(self, monkeypatch):
        from repro.experiments import parallel

        parallel.shutdown_pool()
        monkeypatch.setattr(parallel, "_warned_no_fork", False)
        monkeypatch.setattr(
            parallel.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        cells = [Cell(("a",), _double, {"value": 1}), Cell(("b",), _double, {"value": 2})]
        with pytest.warns(RuntimeWarning, match="falling back to 'spawn'"):
            merged = run_cells(cells, jobs=2)
        assert merged == {("a",): 2, ("b",): 4}
        parallel.shutdown_pool()  # do not leave spawn workers to later tests

    def test_pool_creation_failure_falls_back_to_serial_with_warning(self, monkeypatch):
        from repro.experiments import parallel

        parallel.shutdown_pool()

        def _no_pool(*args, **kwargs):
            raise OSError("no process support on this platform")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _no_pool)
        cells = [Cell(("a",), _double, {"value": 1}), Cell(("b",), _double, {"value": 2})]
        with pytest.warns(RuntimeWarning, match="running experiment cells serially"):
            merged = run_cells(cells, jobs=2)
        assert merged == {("a",): 2, ("b",): 4}
        assert parallel._pool is None


# -- experiment determinism -----------------------------------------------------


def _table1_fingerprint(per_seed):
    return json.dumps(
        {repr(key): asdict(row) for key, row in per_seed.items()}, sort_keys=True
    )


class TestShardedDeterminism:
    def test_table1_jobs4_byte_identical_to_jobs1(self):
        kwargs = dict(seeds=(11, 23), clients=2, requests=40)
        sequential = regenerate_table1_per_seed(jobs=1, **kwargs)
        sharded = regenerate_table1_per_seed(jobs=4, **kwargs)
        assert list(sequential) == list(sharded)
        assert _table1_fingerprint(sequential) == _table1_fingerprint(sharded)

    def test_figure5_jobs4_identical_to_jobs1(self):
        kwargs = dict(sizes_kb=(1, 4), requests=20)
        sequential = regenerate_figure5(jobs=1, **kwargs)
        sharded = regenerate_figure5(jobs=4, **kwargs)
        assert json.dumps(sequential, sort_keys=True) == json.dumps(
            sharded, sort_keys=True
        )

    def test_tracer_forces_sequential_run(self):
        from repro.observability import Tracer

        tracer = Tracer()
        rows = regenerate_table1_per_seed(
            seeds=(11,), clients=2, requests=20, tracer=tracer, jobs=4
        )
        # Spans only exist if the cells ran in-process.
        assert tracer.finished_count > 0
        assert ("VEP", 11) in rows

    def test_slo_storm_jobs4_identical_to_jobs1(self):
        # The SLO engine rides the resilience-on arm: metrics snapshots,
        # SLO event sequences, and burn-rate status must survive the
        # pickle round-trip through the pool byte-identically.
        from repro.experiments import run_cells, storm_cells

        kwargs = dict(seed=7, clients=3, requests=25, slo=True)
        sequential = run_cells(storm_cells(**kwargs), jobs=1)
        sharded = run_cells(storm_cells(**kwargs), jobs=4)
        assert list(sequential) == list(sharded)
        for key in sequential:
            a, b = asdict(sequential[key]), asdict(sharded[key])
            assert json.dumps(a, sort_keys=True, default=str) == json.dumps(
                b, sort_keys=True, default=str
            )
        on = sequential[(7, "on")]
        assert on.slo is not None and on.slo["events"]
        assert sequential[(7, "off")].slo is None


class TestChunkedDeterminism:
    """jobs=8 with explicit chunking stays byte-identical to jobs=1."""

    def test_table1_jobs8_chunked_byte_identical_to_jobs1(self):
        kwargs = dict(seeds=(11, 23), clients=2, requests=30)
        sequential = regenerate_table1_per_seed(jobs=1, **kwargs)
        chunked = regenerate_table1_per_seed(jobs=8, chunk_size=2, **kwargs)
        assert list(sequential) == list(chunked)
        assert _table1_fingerprint(sequential) == _table1_fingerprint(chunked)

    def test_figure5_jobs8_chunked_byte_identical_to_jobs1(self):
        kwargs = dict(sizes_kb=(1, 4, 16), requests=15)
        sequential = regenerate_figure5(jobs=1, **kwargs)
        chunked = regenerate_figure5(jobs=8, chunk_size=3, **kwargs)
        assert json.dumps(sequential, sort_keys=True) == json.dumps(
            chunked, sort_keys=True
        )

    def test_slo_storm_jobs8_chunked_byte_identical_to_jobs1(self):
        from repro.experiments import run_cells, storm_cells

        kwargs = dict(seed=7, clients=3, requests=20, slo=True)
        sequential = run_cells(storm_cells(**kwargs), jobs=1)
        chunked = run_cells(storm_cells(**kwargs), jobs=8, chunk_size=2)
        assert list(sequential) == list(chunked)
        for key in sequential:
            a, b = asdict(sequential[key]), asdict(chunked[key])
            assert json.dumps(a, sort_keys=True, default=str) == json.dumps(
                b, sort_keys=True, default=str
            )


class TestMetricSnapshotMerge:
    def test_counters_sum_and_histograms_combine(self):
        from repro.observability import MetricsRegistry, merge_metric_snapshots

        first = MetricsRegistry()
        first.counter("x").inc(2)
        first.histogram("h").observe(1.0)
        second = MetricsRegistry()
        second.counter("x").inc(3)
        second.counter("y").inc(1)
        second.histogram("h").observe(3.0)
        merged = merge_metric_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counters"] == {"x": 5, "y": 1}
        combined = merged["histograms"]["h"]
        assert combined["count"] == 2
        assert combined["min"] == 1.0 and combined["max"] == 3.0
        assert combined["mean"] == pytest.approx(2.0)

    def test_merge_is_order_independent(self):
        from repro.observability import MetricsRegistry, merge_metric_snapshots

        registries = []
        for seed in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("c").inc(seed)
            registry.histogram("h").observe(float(seed))
            registries.append(registry.snapshot())
        forward = merge_metric_snapshots(registries)
        backward = merge_metric_snapshots(list(reversed(registries)))
        assert json.dumps(forward, sort_keys=True) == json.dumps(
            backward, sort_keys=True
        )
