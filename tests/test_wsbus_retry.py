"""Unit tests for the retry queue and dead-letter queue."""

import pytest

from repro.policy import RetryAction
from repro.soap import FaultCode, SoapEnvelope, SoapFault, SoapFaultError
from repro.wsbus import DeadLetterQueue, RetryQueue
from repro.xmlutils import Element


class FlakySender:
    """Succeeds after a configurable number of failures."""

    def __init__(self, env, fail_times):
        self.env = env
        self.fail_times = fail_times
        self.attempts = 0

    def __call__(self, envelope, operation, target):
        self.attempts += 1
        attempt = self.attempts
        yield self.env.timeout(0.01)
        if attempt <= self.fail_times:
            raise SoapFaultError(SoapFault(FaultCode.SERVICE_UNAVAILABLE, f"attempt {attempt}"))
        return envelope.reply(Element("ok"))


def request_envelope():
    return SoapEnvelope.request("http://svc", "urn:op:x", Element("q"))


class TestRetryQueue:
    def test_succeeds_on_second_attempt(self, env):
        dlq = DeadLetterQueue()
        sender = FlakySender(env, fail_times=1)
        queue = RetryQueue(env, sender, dlq)
        completion = queue.enqueue(
            request_envelope(), "x", "http://svc", RetryAction(max_retries=3, delay_seconds=1.0)
        )

        def waiter():
            response = yield completion
            return response.body.name.local

        assert env.run(env.process(waiter())) == "ok"
        assert sender.attempts == 2
        assert queue.redeliveries_succeeded == 1
        assert len(dlq) == 0

    def test_exhaustion_dead_letters(self, env):
        dlq = DeadLetterQueue()
        queue = RetryQueue(env, FlakySender(env, fail_times=99), dlq)
        completion = queue.enqueue(
            request_envelope(), "x", "http://svc", RetryAction(max_retries=3, delay_seconds=0.5)
        )

        def waiter():
            with pytest.raises(SoapFaultError):
                yield completion

        env.run(env.process(waiter()))
        assert len(dlq) == 1
        assert dlq.entries[0].attempts_made == 3
        assert dlq.for_target("http://svc")

    def test_exhaustion_without_dead_letter_flag(self, env):
        dlq = DeadLetterQueue()
        queue = RetryQueue(env, FlakySender(env, fail_times=99), dlq)
        completion = queue.enqueue(
            request_envelope(), "x", "http://svc",
            RetryAction(max_retries=2, delay_seconds=0.1),
            dead_letter_on_exhaust=False,
        )

        def waiter():
            with pytest.raises(SoapFaultError):
                yield completion

        env.run(env.process(waiter()))
        assert len(dlq) == 0

    def test_delay_pattern_honored(self, env):
        queue = RetryQueue(env, FlakySender(env, fail_times=1), DeadLetterQueue())
        completion = queue.enqueue(
            request_envelope(), "x", "http://svc", RetryAction(max_retries=3, delay_seconds=2.0)
        )

        def waiter():
            yield completion

        env.run(env.process(waiter()))
        # attempt 1 at t=2 (fails at 2.01), attempt 2 at ~4.01 succeeds.
        assert env.now == pytest.approx(4.02, abs=0.1)

    def test_backoff_delays_grow(self, env):
        queue = RetryQueue(env, FlakySender(env, fail_times=2), DeadLetterQueue())
        completion = queue.enqueue(
            request_envelope(), "x", "http://svc",
            RetryAction(max_retries=3, delay_seconds=1.0, backoff_multiplier=3.0),
        )

        def waiter():
            yield completion

        env.run(env.process(waiter()))
        # delays: 1, 3, 9 -> success on third attempt at ~1+3+9=13s + 3*0.01
        assert env.now == pytest.approx(13.03, abs=0.2)

    def test_concurrent_entries_do_not_serialize(self, env):
        dlq = DeadLetterQueue()
        sender_calls = []

        def sender(envelope, operation, target):
            sender_calls.append(env.now)
            yield env.timeout(5.0)
            return envelope.reply(Element("ok"))

        queue = RetryQueue(env, sender, dlq)
        action = RetryAction(max_retries=1, delay_seconds=1.0)
        first = queue.enqueue(request_envelope(), "x", "http://a", action)
        second = queue.enqueue(request_envelope(), "x", "http://b", action)

        def waiter():
            yield env.all_of([first, second])

        env.run(env.process(waiter()))
        # Both redeliveries started at t=1, not serialized at 1 and 6.
        assert sender_calls == [1.0, 1.0]

    def test_depth_tracks_pending(self, env):
        queue = RetryQueue(env, FlakySender(env, fail_times=0), DeadLetterQueue())
        completion = queue.enqueue(
            request_envelope(), "x", "http://svc", RetryAction(max_retries=1, delay_seconds=1.0)
        )
        assert queue.depth == 1

        def waiter():
            yield completion

        env.run(env.process(waiter()))
        assert queue.depth == 0

    def test_zero_retries_fails_immediately(self, env):
        dlq = DeadLetterQueue()
        queue = RetryQueue(env, FlakySender(env, fail_times=9), dlq)
        first_fault = SoapFault(FaultCode.TIMEOUT, "original")
        completion = queue.enqueue(
            request_envelope(), "x", "http://svc",
            RetryAction(max_retries=0, delay_seconds=1.0),
            first_fault=first_fault,
        )

        def waiter():
            with pytest.raises(SoapFaultError) as excinfo:
                yield completion
            return excinfo.value.fault.reason

        assert env.run(env.process(waiter())) == "original"
