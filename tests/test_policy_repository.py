"""Unit tests for the policy repository, validation and parser."""

import pytest

from repro.orchestration import Empty, ProcessDefinition, Sequence
from repro.policy import (
    AdaptationPolicy,
    AddActivityAction,
    BusinessValue,
    InvokeSpec,
    MonitoringPolicy,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
    PolicyValidationError,
    RemoveActivityAction,
    RetryAction,
    serialize_policy_document,
    validate_document,
)
from repro.core import MASCPolicyParser


def document_with(name="doc", policies=None, monitoring=None):
    document = PolicyDocument(name)
    document.adaptation_policies.extend(policies or [])
    document.monitoring_policies.extend(monitoring or [])
    return document


def simple_policy(name, priority=100, triggers=("fault.Timeout",), **kwargs):
    return AdaptationPolicy(
        name=name, triggers=triggers, actions=(RetryAction(),), priority=priority, **kwargs
    )


class TestRepositoryLookup:
    def test_priority_ordering(self):
        repo = PolicyRepository()
        repo.load(
            document_with(
                policies=[
                    simple_policy("later", priority=50),
                    simple_policy("first", priority=1),
                ]
            )
        )
        names = [p.name for p in repo.adaptation_policies_for("fault.Timeout")]
        assert names == ["first", "later"]

    def test_name_breaks_priority_ties(self):
        repo = PolicyRepository()
        repo.load(document_with(policies=[simple_policy("zeta"), simple_policy("alpha")]))
        names = [p.name for p in repo.adaptation_policies_for("fault.Timeout")]
        assert names == ["alpha", "zeta"]

    def test_scope_filtering(self):
        repo = PolicyRepository()
        repo.load(
            document_with(
                policies=[
                    simple_policy("retailers", scope=PolicyScope(service_type="Retailer")),
                    simple_policy("everything"),
                ]
            )
        )
        matched = repo.adaptation_policies_for("fault.Timeout", service_type="Warehouse")
        assert [p.name for p in matched] == ["everything"]

    def test_event_filtering(self):
        repo = PolicyRepository()
        repo.load(document_with(policies=[simple_policy("p", triggers=("fault.Timeout",))]))
        assert repo.adaptation_policies_for("fault.ServiceUnavailable") == []

    def test_hot_reload_replaces_document(self):
        repo = PolicyRepository()
        repo.load(document_with(name="d", policies=[simple_policy("old")]))
        repo.load(document_with(name="d", policies=[simple_policy("new")]))
        assert [p.name for p in repo.adaptation_policies()] == ["new"]

    def test_unload(self):
        repo = PolicyRepository()
        repo.load(document_with(name="d", policies=[simple_policy("p")]))
        repo.unload("d")
        assert repo.adaptation_policies() == []

    def test_find_policy_by_name(self):
        repo = PolicyRepository()
        repo.load(
            document_with(
                policies=[simple_policy("a")],
                monitoring=[MonitoringPolicy(name="m", events=("e",))],
            )
        )
        assert repo.find_policy("a").name == "a"
        assert repo.find_policy("m").name == "m"
        assert repo.find_policy("ghost") is None

    def test_load_xml(self):
        repo = PolicyRepository()
        xml = serialize_policy_document(document_with(name="x", policies=[simple_policy("p")]))
        repo.load_xml(xml)
        assert repo.find_policy("p") is not None


class TestStatesAndLedger:
    def test_default_state(self):
        assert PolicyRepository().state_of("endpoint:x") == "normal"

    def test_state_gating_and_transition(self):
        repo = PolicyRepository()
        policy = simple_policy("p", state_before="normal", state_after="recovering")
        assert repo.check_state(policy, "endpoint:x")
        repo.transition(policy, "endpoint:x")
        assert repo.state_of("endpoint:x") == "recovering"
        assert not repo.check_state(policy, "endpoint:x")

    def test_no_state_requirement_always_passes(self):
        repo = PolicyRepository()
        repo.set_state("k", "weird")
        assert repo.check_state(simple_policy("p"), "k")

    def test_ledger_accumulates_by_currency(self):
        repo = PolicyRepository()
        repo.record_business_value(
            1.0, simple_policy("a", business_value=BusinessValue(5.0, "AUD")), "s"
        )
        repo.record_business_value(
            2.0, simple_policy("b", business_value=BusinessValue(-2.0, "AUD")), "s"
        )
        repo.record_business_value(
            3.0, simple_policy("c", business_value=BusinessValue(1.0, "USD")), "s"
        )
        assert repo.business_totals() == {"AUD": 3.0, "USD": 1.0}

    def test_policy_without_value_not_recorded(self):
        repo = PolicyRepository()
        repo.record_business_value(1.0, simple_policy("a"), "s")
        assert repo.ledger == []


class TestValidation:
    def test_duplicate_names_error(self):
        document = document_with(policies=[simple_policy("dup"), simple_policy("dup")])
        with pytest.raises(PolicyValidationError):
            validate_document(document)

    def test_anchor_checked_against_process(self):
        process = ProcessDefinition("p", Sequence("main", [Empty("real")]))
        document = document_with(
            policies=[
                AdaptationPolicy(
                    name="a",
                    triggers=("e",),
                    actions=(
                        AddActivityAction(
                            anchor="ghost",
                            invokes=(InvokeSpec(name="x", operation="o", address="http://x"),),
                        ),
                    ),
                )
            ]
        )
        with pytest.raises(PolicyValidationError):
            validate_document(document, process=process)

    def test_remove_target_checked(self):
        process = ProcessDefinition("p", Sequence("main", [Empty("real")]))
        document = document_with(
            policies=[
                AdaptationPolicy(
                    name="a",
                    triggers=("e",),
                    actions=(RemoveActivityAction(target="ghost"),),
                )
            ]
        )
        with pytest.raises(PolicyValidationError):
            validate_document(document, process=process)

    def test_unknown_service_type_error(self):
        document = document_with(
            policies=[
                AdaptationPolicy(
                    name="a",
                    triggers=("e",),
                    actions=(
                        AddActivityAction(
                            anchor="x",
                            invokes=(InvokeSpec(name="i", operation="o", service_type="Ghost"),),
                        ),
                    ),
                )
            ]
        )
        with pytest.raises(PolicyValidationError):
            validate_document(document, known_service_types={"Retailer"})

    def test_priority_tie_warning(self):
        document = document_with(
            policies=[simple_policy("a", priority=5), simple_policy("b", priority=5)]
        )
        issues = validate_document(document)
        assert any("shares trigger" in issue.message for issue in issues)

    def test_noop_state_transition_warning(self):
        document = document_with(
            policies=[simple_policy("a", state_before="s", state_after="s")]
        )
        issues = validate_document(document)
        assert any("no-op" in issue.message for issue in issues)

    def test_ineffective_monitoring_warning(self):
        document = document_with(monitoring=[MonitoringPolicy(name="m", events=("e",))])
        issues = validate_document(document)
        assert any("no observable effect" in issue.message for issue in issues)

    def test_clean_document_no_issues(self):
        document = document_with(policies=[simple_policy("a")])
        assert validate_document(document) == []


class TestParser:
    def test_import_xml_validates(self):
        repo = PolicyRepository()
        parser = MASCPolicyParser(repo)
        document = document_with(name="d", policies=[simple_policy("dup"), simple_policy("dup")])
        with pytest.raises(PolicyValidationError):
            parser.import_xml(serialize_policy_document(document))

    def test_import_file_caches_by_mtime(self, tmp_path):
        repo = PolicyRepository()
        parser = MASCPolicyParser(repo)
        path = tmp_path / "policies.xml"
        path.write_text(
            serialize_policy_document(document_with(name="d", policies=[simple_policy("p")]))
        )
        assert parser.import_file(path) is not None
        assert parser.import_file(path) is None  # unchanged: not re-parsed
        assert parser.parse_count == 1

    def test_import_directory(self, tmp_path):
        repo = PolicyRepository()
        parser = MASCPolicyParser(repo)
        for index in range(3):
            (tmp_path / f"doc{index}.xml").write_text(
                serialize_policy_document(
                    document_with(name=f"d{index}", policies=[simple_policy(f"p{index}")])
                )
            )
        assert len(parser.import_directory(tmp_path)) == 3
        assert len(repo.adaptation_policies()) == 3
