"""Saga compensation scopes and policy-triggered compensation.

The tentpole acceptance checks: a :class:`CompensationScope` registers a
compensation per completed saga step and unwinds them LIFO on fault,
``Terminate`` or a policy request; a WS-Policy4MASC ``Compensate`` action
(policy-only, no code change) turns an SLO ``errorBudgetExhausted`` event
into compensation of in-flight instances, with the compensation span
trace-parented under the enactment span; and a ``Throw`` in one Flow
branch cancels its siblings *before* the enclosing scope's fault handler
or compensation chain runs.
"""

import pytest

from repro.casestudies.scm import (
    build_scm_deployment,
    build_scm_saga_process,
    saga_policy_document,
)
from repro.casestudies.stocktrading import (
    build_trading_deployment,
    build_trading_saga_process,
)
from repro.core import MASCAdaptationService, MASCEvent, MASCPolicyDecisionMaker
from repro.observability import Tracer
from repro.orchestration import (
    Assign,
    Compensate,
    CompensateScope,
    CompensationScope,
    Delay,
    DefinitionError,
    Flow,
    ProcessDefinition,
    Reply,
    RuntimeService,
    Scope,
    Sequence,
    Terminate,
    Throw,
    TrackingService,
    WorkflowEngine,
)
from repro.orchestration.instance import InstanceStatus
from repro.policy import (
    CompensateInstanceAction,
    PolicyRepository,
    parse_policy_document,
    serialize_policy_document,
)
from repro.soap import FaultCode


def saga_definition(abort=True, registered=3):
    """A three-step saga; each step appends to ``trail`` when compensated."""
    steps = []
    compensations = {}
    for index in range(1, registered + 1):
        steps.append(Assign(f"step{index}", "progress", value=index))
        compensations[f"step{index}"] = Assign(
            f"undo{index}", "trail", expression=f"trail + 'u{index},'"
        )
    if abort:
        steps.append(Throw("boom", FaultCode.SERVER, "abort the saga"))
    steps.append(Reply("done", variable="progress"))
    return ProcessDefinition(
        "saga",
        CompensationScope(
            "saga-scope",
            Sequence("steps", steps),
            compensations=compensations,
            fault_handlers={
                None: Sequence(
                    "handler",
                    [
                        Assign("mark", "progress", value=-1),
                        Reply("aborted", variable="trail"),
                    ],
                )
            },
        ),
        initial_variables={"trail": ""},
    )


def compensation_order(tracking, instance_id):
    return [
        event.activity_name
        for event in tracking.events_for(instance_id)
        if event.kind == "activity_compensated"
    ]


class TestCompensationScope:
    def test_fault_unwinds_lifo_then_runs_handler(self, env, network):
        engine = WorkflowEngine(env, network=network)
        tracking = engine.add_service(TrackingService())
        instance = engine.start(saga_definition())
        engine.run_to_completion(instance)
        assert instance.status is InstanceStatus.COMPLETED
        assert instance.variables["trail"] == "u3,u2,u1,"
        assert compensation_order(tracking, instance.id) == ["undo3", "undo2", "undo1"]
        assert instance.result == "u3,u2,u1,"

    def test_clean_run_registers_but_never_compensates(self, env, network):
        engine = WorkflowEngine(env, network=network)
        tracking = engine.add_service(TrackingService())
        instance = engine.start(saga_definition(abort=False))
        engine.run_to_completion(instance)
        assert instance.variables["trail"] == ""
        assert compensation_order(tracking, instance.id) == []

    def test_terminate_unwinds_before_stopping(self, env, network):
        definition = ProcessDefinition(
            "saga",
            CompensationScope(
                "saga-scope",
                Sequence(
                    "steps",
                    [
                        Assign("step1", "progress", value=1),
                        Terminate("stop", reason="operator abort"),
                    ],
                ),
                compensations={
                    "step1": Assign("undo1", "trail", expression="trail + 'u1,'")
                },
            ),
            initial_variables={"trail": ""},
        )
        engine = WorkflowEngine(env, network=network)
        instance = engine.start(definition)
        engine.run_to_completion(instance)
        assert instance.status is InstanceStatus.TERMINATED
        assert instance.variables["trail"] == "u1,"

    def test_explicit_compensate_activity(self, env, network):
        definition = ProcessDefinition(
            "saga",
            CompensationScope(
                "saga-scope",
                Sequence(
                    "steps",
                    [
                        Assign("step1", "progress", value=1),
                        Assign("step2", "progress", value=2),
                        CompensateScope("unwind", "saga-scope"),
                        Reply("done", variable="trail"),
                    ],
                ),
                compensations={
                    "step1": Assign("undo1", "trail", expression="trail + 'u1,'"),
                    "step2": Assign("undo2", "trail", expression="trail + 'u2,'"),
                },
            ),
            initial_variables={"trail": ""},
        )
        engine = WorkflowEngine(env, network=network)
        instance = engine.start(definition)
        engine.run_to_completion(instance)
        assert instance.status is InstanceStatus.COMPLETED
        assert instance.result == "u2,u1,"

    def test_compensate_scope_requires_name(self):
        with pytest.raises(DefinitionError):
            CompensateScope("bad", "")

    def test_compensate_other_scope_is_noop(self, env, network):
        definition = ProcessDefinition(
            "saga",
            CompensationScope(
                "saga-scope",
                Sequence(
                    "steps",
                    [
                        Assign("step1", "progress", value=1),
                        Compensate("unwind", scope="other-scope"),
                        Reply("done", variable="trail"),
                    ],
                ),
                compensations={
                    "step1": Assign("undo1", "trail", expression="trail + 'u1,'")
                },
            ),
            initial_variables={"trail": ""},
        )
        engine = WorkflowEngine(env, network=network)
        instance = engine.start(definition)
        engine.run_to_completion(instance)
        assert instance.result == ""


class TestFlowCancellationOrder:
    """Satellite: a faulting Flow branch defuses its siblings first.

    The regression pins the *order*: every sibling's cancellation must be
    tracked before the scope's fault handler (or compensation chain)
    starts — the handler must observe a quiesced flow.
    """

    def flow_definition(self):
        return ProcessDefinition(
            "flow-fault",
            CompensationScope(
                "outer",
                Sequence(
                    "steps",
                    [
                        Assign("step1", "progress", value=1),
                        Flow(
                            "fan-out",
                            [
                                Sequence(
                                    "slow-branch",
                                    [Delay("slow", 5.0), Assign("late", "x", value=1)],
                                ),
                                Sequence(
                                    "slower-branch",
                                    [Delay("slower", 9.0), Assign("later", "y", value=1)],
                                ),
                                Sequence(
                                    "fail-branch",
                                    [
                                        Delay("short", 0.5),
                                        Throw("boom", FaultCode.SERVER, "branch fault"),
                                    ],
                                ),
                            ],
                        ),
                        Reply("done", variable="progress"),
                    ],
                ),
                compensations={
                    "step1": Assign("undo1", "trail", expression="trail + 'u1,'")
                },
                fault_handlers={
                    None: Sequence(
                        "handler", [Assign("handled", "progress", value=-1)]
                    )
                },
            ),
            initial_variables={"trail": ""},
        )

    def test_siblings_cancelled_before_handler_runs(self, env, network):
        class _Recorder(RuntimeService):
            """Cancellations aren't tracked by TrackingService; record raw."""

            def __init__(self):
                self.kinds = []

            def activity_started(self, instance, activity):
                self.kinds.append(("activity_started", activity.name))

            def activity_cancelled(self, instance, activity, interrupted):
                self.kinds.append(("activity_cancelled", activity.name))

            def activity_compensated(self, instance, step_name, activity, replayed):
                self.kinds.append(("activity_compensated", activity.name))

        engine = WorkflowEngine(env, network=network)
        recorder = engine.add_service(_Recorder())
        instance = engine.start(self.flow_definition())
        engine.run_to_completion(instance)
        assert instance.status is InstanceStatus.COMPLETED
        assert instance.variables["progress"] == -1
        assert "x" not in instance.variables  # abandoned branches never finish
        assert "y" not in instance.variables

        kinds = recorder.kinds
        cancelled = [
            index
            for index, (kind, _name) in enumerate(kinds)
            if kind == "activity_cancelled"
        ]
        # Both live siblings (and their in-flight delays) must unwind...
        cancelled_names = {kinds[index][1] for index in cancelled}
        assert {"slow-branch", "slower-branch", "slow", "slower"} <= cancelled_names
        # ...strictly before the compensation chain and the fault handler.
        compensated = kinds.index(("activity_compensated", "undo1"))
        handler_started = kinds.index(("activity_started", "handler"))
        for index in cancelled:
            assert index < compensated, (
                f"cancellation at {index} after compensation at {compensated}: {kinds}"
            )
            assert index < handler_started, (
                f"cancellation at {index} after handler start at {handler_started}"
            )


class TestCompensateActionModel:
    def test_xml_round_trip(self):
        document = saga_policy_document(mode="choreography", scope="purchase-saga")
        replayed = parse_policy_document(serialize_policy_document(document))
        (policy,) = replayed.adaptation_policies
        (action,) = policy.actions
        assert isinstance(action, CompensateInstanceAction)
        assert action.mode == "choreography"
        assert action.scope == "purchase-saga"
        assert action.process == "scm-purchase-saga"

    def test_compensate_on_event_alias(self):
        xml = serialize_policy_document(saga_policy_document()).replace(
            "<masc:Compensate ", "<masc:CompensateOnEvent "
        )
        document = parse_policy_document(xml)
        (policy,) = document.adaptation_policies
        assert isinstance(policy.actions[0], CompensateInstanceAction)

    def test_unknown_mode_rejected(self):
        with pytest.raises(Exception):
            CompensateInstanceAction(mode="interpretive-dance")


class _ListExporter:
    def __init__(self):
        self.spans = []

    def export(self, span):
        self.spans.append(span)

    def close(self):
        pass


class _BudgetTripwire(RuntimeService):
    """Raises ``errorBudgetExhausted`` the moment a named step completes."""

    def __init__(self, maker, tracer, after="collect-payment"):
        self.maker = maker
        self.tracer = tracer
        self.after = after
        self.decisions = []

    def activity_completed(self, instance, activity, fresh=True):
        if activity.name != self.after or self.decisions:
            return
        violation = self.tracer.start_span("slo.violation")
        event = MASCEvent(
            name="errorBudgetExhausted",
            time=instance.engine.env.now,
            service_type="Retailer",
            process_instance_id=instance.id,
            raised_by="slo-engine",
            trace_parent=violation,
        )
        self.decisions = self.maker.handle(event)
        violation.end()


class TestPolicyTriggeredCompensation:
    """Policy-only adaptation: an SLO event compensates a live saga."""

    def saga_stack(self, mode):
        deployment = build_scm_deployment(seed=7, log_events=False)
        env = deployment.env
        tracer = Tracer()
        tracer.bind_clock(env)
        exporter = _ListExporter()
        tracer.add_exporter(exporter)
        repository = PolicyRepository()
        # Round-trip through XML: the policy arrives as a document, not code.
        repository.load_xml(serialize_policy_document(saga_policy_document(mode=mode)))
        maker = MASCPolicyDecisionMaker(env, repository, tracer=tracer)
        engine = WorkflowEngine(env, network=deployment.network, tracer=tracer)
        tracking = engine.add_service(TrackingService())
        engine.add_service(MASCAdaptationService(maker))
        tripwire = engine.add_service(_BudgetTripwire(maker, tracer))
        definition = build_scm_saga_process(
            deployment.retailers["C"].address, deployment.logging.address, abort=False
        )
        instance = engine.start(definition)
        env.run(until=200)
        return deployment, instance, tracking, tripwire, exporter

    def test_orchestration_mode_unwinds_and_completes(self):
        deployment, instance, tracking, tripwire, exporter = self.saga_stack(
            "orchestration"
        )
        assert [d.applied for d in tripwire.decisions] == [True]
        assert instance.status is InstanceStatus.COMPLETED
        assert instance.variables["order_status"] == "aborted"
        assert compensation_order(tracking, instance.id) == [
            "refund-payment",
            "cancel-order",
        ]
        retailer = deployment.retailers["C"]
        assert retailer.orders_cancelled == 1
        assert retailer.payments_refunded == 1
        assert not retailer.open_orders and not retailer.payments

    def test_compensation_span_parented_under_enactment(self):
        _deployment, _instance, _tracking, _tripwire, exporter = self.saga_stack(
            "orchestration"
        )
        by_name = {}
        for span in exporter.spans:
            by_name.setdefault(span.name, []).append(span)
        (violation,) = by_name["slo.violation"]
        (decision,) = by_name["masc.decision"]
        (enact,) = by_name["masc.enact"]
        compensation = by_name["process.compensation"][0]
        assert decision.parent_id == violation.span_id
        assert compensation.parent_id == enact.span_id
        assert compensation.trace_id == violation.trace_id

    def test_choreography_mode_routes_compensations_over_the_bus(self):
        deployment, instance, tracking, tripwire, _exporter = self.saga_stack(
            "choreography"
        )
        assert [d.applied for d in tripwire.decisions] == [True]
        assert instance.status is InstanceStatus.TERMINATED
        assert compensation_order(tracking, instance.id) == [
            "refund-payment",
            "cancel-order",
        ]
        retailer = deployment.retailers["C"]
        assert retailer.orders_cancelled == 1
        assert retailer.payments_refunded == 1
        assert not retailer.open_orders and not retailer.payments


class TestCaseStudySagas:
    def test_scm_saga_aborts_and_unwinds(self):
        deployment = build_scm_deployment(seed=11, log_events=False)
        engine = WorkflowEngine(deployment.env, network=deployment.network)
        tracking = engine.add_service(TrackingService())
        definition = build_scm_saga_process(
            deployment.retailers["C"].address, deployment.logging.address, abort=True
        )
        instance = engine.start(definition)
        deployment.env.run(until=200)
        assert instance.status is InstanceStatus.COMPLETED
        assert instance.variables["order_status"] == "aborted"
        assert compensation_order(tracking, instance.id) == [
            "refund-payment",
            "cancel-order",
        ]
        retailer = deployment.retailers["C"]
        assert retailer.orders_cancelled == 1
        assert retailer.payments_refunded == 1

    def test_trading_saga_aborts_and_unwinds(self):
        deployment = build_trading_deployment(seed=11, start_notifications=False)
        masc = deployment.masc
        engine = WorkflowEngine(masc.env, network=masc.network, registry=masc.registry)
        tracking = engine.add_service(TrackingService())
        definition = build_trading_saga_process(
            deployment.fund_manager.address,
            deployment.analysis_services[0].address,
            deployment.market.address,
            deployment.payment.address,
            abort=True,
        )
        instance = engine.start(definition)
        deployment.env.run(until=200)
        assert instance.status is InstanceStatus.COMPLETED
        assert instance.variables["trade_status"] == "unwound"
        assert compensation_order(tracking, instance.id) == [
            "unwind-trade",
            "release-funds",
        ]
