"""Tests for the traffic-shaping tier: idempotency keys, response cache,
queue-based load leveling — and the exactly-once regression suite."""

import pytest

from conftest import ECHO_CONTRACT, EchoService, run_process
from repro.observability import MetricsRegistry
from repro.policy import (
    AdaptationPolicy,
    IdempotencyAction,
    LoadLevelingAction,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
    ResponseCacheAction,
    RetryAction,
    parse_policy_document,
    serialize_policy_document,
)
from repro.core.events import MASCEvent
from repro.services import Invoker
from repro.soap import FaultCode, SoapEnvelope, SoapFault, SoapFaultError
from repro.traffic import (
    IdempotencyStore,
    LoadLeveler,
    ResponseCache,
    idempotency_key_of,
    stamp_idempotency_key,
)
from repro.wsbus import WsBus
from repro.xmlutils import Element


# ---------------------------------------------------------------------------
# Policy vocabulary: validation + XML round-trip
# ---------------------------------------------------------------------------


def traffic_document(*actions, service_type="Echo", operation=None, name="traffic"):
    document = PolicyDocument(name)
    document.adaptation_policies.append(
        AdaptationPolicy(
            name=name,
            triggers=("traffic.configure",),
            scope=PolicyScope(service_type=service_type, operation=operation),
            actions=tuple(actions),
            priority=10,
        )
    )
    return document


class TestTrafficActions:
    def test_actions_roundtrip_xml(self):
        document = traffic_document(
            IdempotencyAction(),
            ResponseCacheAction(
                ttl_seconds=12.5,
                max_entries=7,
                invalidate_on=("slo*", "catalogChanged"),
            ),
            LoadLevelingAction(
                rate_per_second=5.0, burst=2, max_queue=3, max_wait_seconds=0.75
            ),
        )
        parsed = parse_policy_document(serialize_policy_document(document))
        assert (
            parsed.adaptation_policies[0].actions
            == document.adaptation_policies[0].actions
        )
        assert parsed.adaptation_policies[0].scope.matches(
            service_type="Echo", operation="echo"
        )

    def test_defaults_roundtrip(self):
        document = traffic_document(ResponseCacheAction(), LoadLevelingAction())
        parsed = parse_policy_document(serialize_policy_document(document))
        cache, leveling = parsed.adaptation_policies[0].actions
        assert cache == ResponseCacheAction()
        assert leveling == LoadLevelingAction()

    def test_validation(self):
        from repro.policy.actions import ActionError

        with pytest.raises(ActionError):
            ResponseCacheAction(ttl_seconds=0.0)
        with pytest.raises(ActionError):
            ResponseCacheAction(max_entries=0)
        with pytest.raises(ActionError):
            ResponseCacheAction(invalidate_on=("ok", ""))
        with pytest.raises(ActionError):
            LoadLevelingAction(rate_per_second=0.0)
        with pytest.raises(ActionError):
            LoadLevelingAction(burst=0)
        with pytest.raises(ActionError):
            LoadLevelingAction(max_queue=-1)
        with pytest.raises(ActionError):
            LoadLevelingAction(max_wait_seconds=-0.1)


# ---------------------------------------------------------------------------
# Idempotency keys: stamping + the per-service dedupe store
# ---------------------------------------------------------------------------


def make_request(text="x", to="http://svc/a"):
    return SoapEnvelope.request(to, "urn:op:echo", Element("q", text=text))


class TestStamping:
    def test_stamp_defaults_to_message_id(self):
        envelope = make_request()
        key = stamp_idempotency_key(envelope)
        assert key == envelope.addressing.message_id
        assert idempotency_key_of(envelope) == key

    def test_stamp_is_idempotent(self):
        envelope = make_request()
        key = stamp_idempotency_key(envelope, key="explicit")
        assert stamp_idempotency_key(envelope) == "explicit" == key
        carriers = [h for h in envelope.headers if idempotency_key_of(envelope)]
        assert len(carriers) == 1

    def test_key_survives_redelivery_copies(self):
        """copy()/retargeted() preserve the key while minting fresh IDs —
        the property every redelivery path (retry, replay, broadcast)
        relies on."""
        envelope = make_request()
        key = stamp_idempotency_key(envelope)
        redelivery = envelope.copy()
        redelivery.addressing = envelope.addressing.retargeted("http://svc/b")
        assert idempotency_key_of(redelivery) == key
        assert redelivery.addressing.message_id != envelope.addressing.message_id

    def test_unstamped_envelope_has_no_key(self):
        assert idempotency_key_of(make_request()) is None


class CountingExecutor:
    """A service-dispatch stand-in: counts executions, takes sim time."""

    def __init__(self, env, delay=1.0, fail_times=0, error_times=0):
        self.env = env
        self.delay = delay
        self.fail_times = fail_times
        self.error_times = error_times
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        call = self.calls
        yield self.env.timeout(self.delay)
        if call <= self.error_times:
            raise RuntimeError("handler crashed")
        if call <= self.error_times + self.fail_times:
            return request.reply_fault(SoapFault(FaultCode.SERVER, "boom"))
        return request.reply(Element("ok", text=f"call-{call}"))


class TestIdempotencyStore:
    def test_records_then_dedupes(self, env):
        store = IdempotencyStore(env)
        execute = CountingExecutor(env, delay=0.1)

        def driver():
            first = yield from store.execute_once("svc", make_request(), "k1", execute)
            second = yield from store.execute_once("svc", make_request(), "k1", execute)
            return first, second

        first, second = run_process(env, driver())
        assert execute.calls == 1
        # The recorded body is shared by reference (copy-on-write discipline).
        assert second.body is first.body
        stats = store.stats()
        assert stats["recorded"] == 1
        assert stats["deduped"] == 1

    def test_concurrent_duplicates_coalesce(self, env):
        store = IdempotencyStore(env)
        execute = CountingExecutor(env, delay=1.0)
        replies = []

        def delivery():
            reply = yield from store.execute_once("svc", make_request(), "k", execute)
            replies.append(reply)

        env.process(delivery())
        env.process(delivery())
        env.run()
        assert execute.calls == 1
        assert len(replies) == 2
        assert replies[0].body is replies[1].body
        assert store.stats()["coalesced"] == 1
        # Both deliveries resolved only once the first execution finished.
        assert env.now == pytest.approx(1.0)

    def test_fault_is_not_recorded(self, env):
        store = IdempotencyStore(env)
        execute = CountingExecutor(env, delay=0.1, fail_times=1)

        def driver():
            first = yield from store.execute_once("svc", make_request(), "k", execute)
            second = yield from store.execute_once("svc", make_request(), "k", execute)
            return first, second

        first, second = run_process(env, driver())
        assert first.is_fault
        assert not second.is_fault
        assert execute.calls == 2
        assert store.stats()["recorded"] == 1

    def test_crashed_execution_clears_claim_and_releases_waiter(self, env):
        store = IdempotencyStore(env)
        execute = CountingExecutor(env, delay=1.0, error_times=1)
        outcomes = []

        def delivery():
            try:
                reply = yield from store.execute_once("svc", make_request(), "k", execute)
            except RuntimeError:
                outcomes.append("error")
            else:
                outcomes.append(reply.body.child_text(".") or reply.body.text)

        env.process(delivery())
        env.process(delivery())
        env.run()
        # First delivery crashed; the coalesced duplicate then executed afresh.
        assert outcomes[0] == "error"
        assert execute.calls == 2
        assert store.stats()["recorded"] == 1
        assert store.stats()["entries"] == 1

    def test_keys_are_namespaced_per_service(self, env):
        store = IdempotencyStore(env)
        execute = CountingExecutor(env, delay=0.1)

        def driver():
            yield from store.execute_once("svc-a", make_request(), "k", execute)
            yield from store.execute_once("svc-b", make_request(), "k", execute)

        run_process(env, driver())
        assert execute.calls == 2

    def test_eviction_drops_oldest_completed_record(self, env):
        store = IdempotencyStore(env, max_entries=2)
        execute = CountingExecutor(env, delay=0.0)

        def driver():
            for key in ("k1", "k2", "k3"):
                yield from store.execute_once("svc", make_request(), key, execute)
            # k1 was evicted: a redelivery executes again. k3 still dedupes.
            yield from store.execute_once("svc", make_request(), "k3", execute)
            yield from store.execute_once("svc", make_request(), "k1", execute)

        run_process(env, driver())
        stats = store.stats()
        assert stats["evicted"] == 2
        assert stats["deduped"] == 1
        assert execute.calls == 4


# ---------------------------------------------------------------------------
# Response cache (unit, manual clock)
# ---------------------------------------------------------------------------


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_cache(clock, **overrides):
    defaults = dict(ttl_seconds=10.0, max_entries=2, invalidate_on=("slo*",))
    defaults.update(overrides)
    return ResponseCache(ResponseCacheAction(**defaults), clock)


class TestResponseCache:
    def test_hit_within_ttl_then_expiry(self):
        clock = Clock()
        cache = make_cache(clock)
        key = cache.key_for("Echo", "echo", make_request("a"))
        assert cache.get(key) is None
        body = Element("ok")
        cache.put(key, body)
        clock.now = 9.0
        assert cache.get(key) is body
        clock.now = 10.0
        assert cache.get(key) is None
        stats = cache.stats()
        assert stats == {
            "entries": 0, "hits": 1, "misses": 2, "expired": 1,
            "evicted": 0, "flushes": 0, "invalidated": 0,
        }

    def test_key_distinguishes_request_bodies(self):
        cache = make_cache(Clock())
        assert cache.key_for("Echo", "echo", make_request("a")) != cache.key_for(
            "Echo", "echo", make_request("b")
        )
        request = make_request("a")
        assert cache.key_for("Echo", "echo", request) == cache.key_for(
            "Echo", "echo", request
        )

    def test_lru_eviction_keeps_recently_used(self):
        cache = make_cache(Clock(), max_entries=2)
        for key in ("k1", "k2"):
            cache.put(key, Element(key))
        assert cache.get("k1") is not None  # touch k1 → k2 is now oldest
        cache.put("k3", Element("k3"))
        assert cache.get("k2") is None
        assert cache.get("k1") is not None
        assert cache.stats()["evicted"] == 1

    def test_event_pattern_invalidation(self):
        cache = make_cache(Clock(), invalidate_on=("slo*", "catalogChanged"))
        cache.put("k", Element("ok"))
        assert cache.matches_event("sloBurnRateExceeded")
        assert cache.matches_event("catalogChanged")
        assert not cache.matches_event("fault.Timeout")
        assert cache.invalidate() == 1
        assert cache.get("k") is None
        assert cache.stats()["flushes"] == 1


# ---------------------------------------------------------------------------
# Load leveler (unit, simulation clock)
# ---------------------------------------------------------------------------


class TestLoadLeveler:
    def make(self, env, **overrides):
        defaults = dict(
            rate_per_second=10.0, burst=2, max_queue=2, max_wait_seconds=0.25
        )
        defaults.update(overrides)
        return LoadLeveler("vep:test", env, LoadLevelingAction(**defaults))

    def test_burst_passes_then_delays_then_sheds(self, env):
        leveler = self.make(env)
        assert leveler.admit() is None
        assert leveler.admit() is None  # burst tolerance of 2
        third = leveler.admit()
        fourth = leveler.admit()
        assert third is not None and fourth is not None
        assert leveler.waiting == 2
        # Queue is full: the fifth request is rejected with a retryable fault.
        with pytest.raises(SoapFaultError) as rejection:
            leveler.admit()
        assert rejection.value.fault.code is FaultCode.SERVICE_UNAVAILABLE
        leveler.release()
        # A slot freed, but the computed delay now exceeds max_wait_seconds.
        with pytest.raises(SoapFaultError):
            leveler.admit()
        assert leveler.stats()["shed"] == 2
        assert leveler.stats()["max_waiting"] == 2

    def test_delay_paces_to_the_configured_rate(self, env):
        leveler = self.make(env, max_queue=64, max_wait_seconds=60.0)

        def driver():
            for _ in range(4):
                wait = leveler.admit()
                if wait is not None:
                    yield wait
                    leveler.release()

        run_process(env, driver())
        # burst of 2 at t=0, then one per 100 ms: last admitted at 0.2 s.
        assert env.now == pytest.approx(0.2)
        assert leveler.stats()["immediate"] == 2
        assert leveler.stats()["delayed"] == 2
        assert leveler.waiting == 0

    def test_bucket_refills_with_idle_time(self, env):
        leveler = self.make(env)

        def driver():
            assert leveler.admit() is None
            assert leveler.admit() is None
            yield env.timeout(1.0)  # long idle: full burst available again
            assert leveler.admit() is None
            assert leveler.admit() is None

        run_process(env, driver())
        assert leveler.stats()["immediate"] == 4


# ---------------------------------------------------------------------------
# End-to-end through the bus
# ---------------------------------------------------------------------------


class ScriptedProcessing:
    """Deterministic per-execution processing times; counts executions."""

    def __init__(self, samples=(), default=0.01):
        self.samples = list(samples)
        self.default = default
        self.calls = 0

    def sample(self, size_bytes, rng):
        self.calls += 1
        return self.samples.pop(0) if self.samples else self.default


def call(env, network, address, text="hi", timeout=60.0):
    invoker = Invoker(env, network, caller="client")

    def client():
        payload = ECHO_CONTRACT.operation("echo").input.build(text=text)
        response = yield from invoker.invoke(address, "echo", payload, timeout=timeout)
        return response.body.child_text("text")

    return run_process(env, client())


def retry_world(env, network, container, with_idempotency, member_timeout=2.0):
    """One echo member whose FIRST execution outlives the member timeout —
    the response is lost from the mediator's point of view, the retry
    policy redelivers, and without idempotency the side effect runs twice.
    """
    processing = ScriptedProcessing(samples=[3.0])
    container.deploy(
        EchoService(env, "echo-a", "http://svc/a", processing=processing)
    )
    repository = PolicyRepository()
    recovery = PolicyDocument("recovery")
    recovery.adaptation_policies.append(
        AdaptationPolicy(
            name="retry",
            triggers=("fault.*",),
            actions=(RetryAction(max_retries=1, delay_seconds=0.5),),
            priority=10,
        )
    )
    repository.load(recovery)
    if with_idempotency:
        repository.load(traffic_document(IdempotencyAction()))
    metrics = MetricsRegistry()
    bus = WsBus(
        env, network, repository=repository, member_timeout=member_timeout,
        metrics=metrics,
    )
    vep = bus.create_vep(
        "echo", ECHO_CONTRACT, members=["http://svc/a"], selection_strategy="primary"
    )
    return bus, vep, processing, metrics


class TestExactlyOnce:
    def test_lost_response_without_idempotency_executes_twice(
        self, env, network, container
    ):
        """Documents the double-execution hazard this PR closes: the
        pre-traffic mediation path redelivers a request whose first
        execution already happened (response lost to a member timeout)."""
        bus, vep, processing, _ = retry_world(
            env, network, container, with_idempotency=False
        )
        assert call(env, network, vep.address, timeout=10.0) == "hi@echo-a"
        assert processing.calls == 2
        assert container.idempotency.stats()["recorded"] == 0

    def test_lost_response_with_idempotency_executes_once(
        self, env, network, container
    ):
        """The exactly-once regression test: fails on the pre-traffic code
        (where processing.calls is 2) and is pinned green by the
        idempotency tier — the retry coalesces on the in-flight first
        execution and is answered from its recorded response."""
        bus, vep, processing, _ = retry_world(
            env, network, container, with_idempotency=True
        )
        assert call(env, network, vep.address, timeout=10.0) == "hi@echo-a"
        assert processing.calls == 1
        stats = container.idempotency.stats()
        assert stats["recorded"] == 1
        assert stats["coalesced"] >= 1

    def test_replay_of_stamped_envelope_dedupes_at_container(
        self, env, network, container, echo_service
    ):
        """A dead-letter-style replay: the same stamped envelope delivered
        twice (fresh message IDs, same key) executes once at the service."""
        invoker = Invoker(env, network, caller="client")
        payload = ECHO_CONTRACT.operation("echo").input.build(text="once")
        original = SoapEnvelope.request("http://test/echo", "urn:op:echo", payload)
        stamp_idempotency_key(original)

        def driver():
            first = yield from invoker.send(
                original.copy(), operation="echo", timeout=10.0
            )
            replay = original.copy()
            replay.addressing = original.addressing.retargeted("http://test/echo")
            second = yield from invoker.send(replay, operation="echo", timeout=10.0)
            return first, second

        first, second = run_process(env, driver())
        assert first.body.child_text("text") == second.body.child_text("text")
        assert container.idempotency.stats()["deduped"] == 1
        assert container.idempotency.stats()["recorded"] == 1


class TestVepTrafficTier:
    def test_cache_serves_repeats_and_invalidates_on_event(
        self, env, network, container
    ):
        processing = ScriptedProcessing()
        container.deploy(
            EchoService(env, "echo-a", "http://svc/a", processing=processing)
        )
        repository = PolicyRepository()
        repository.load(
            traffic_document(
                ResponseCacheAction(
                    ttl_seconds=60.0, invalidate_on=("catalogChanged",)
                ),
                operation="echo",
            )
        )
        metrics = MetricsRegistry()
        bus = WsBus(
            env, network, repository=repository, member_timeout=5.0, metrics=metrics
        )
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a"],
            selection_strategy="primary",
        )
        assert bus.traffic.active
        assert call(env, network, vep.address, text="a") == "a@echo-a"
        assert call(env, network, vep.address, text="a") == "a@echo-a"
        assert processing.calls == 1
        assert vep.stats.cache_hits == 1
        # A different request body is a different key.
        assert call(env, network, vep.address, text="b") == "b@echo-a"
        assert processing.calls == 2
        # A matching MASC event flushes the cache through the bus sink.
        bus.monitoring.raise_event(MASCEvent(name="catalogChanged", time=env.now))
        assert call(env, network, vep.address, text="a") == "a@echo-a"
        assert processing.calls == 3
        counters = metrics.snapshot()["counters"]
        assert counters["wsbus.traffic.cache.hits"] == 1
        assert counters["wsbus.traffic.cache.invalidated"] == 2
        assert "caches" in bus.stats_summary()["traffic"]

    def test_policy_reload_shrinking_max_entries_rebuilds_cache(
        self, env, network, container
    ):
        """Regression: shrinking ``max_entries`` through a policy reload
        must drop the old oversized cache, not keep serving from it."""
        container.deploy(EchoService(env, "echo-a", "http://svc/a"))
        repository = PolicyRepository()
        repository.load(
            traffic_document(
                ResponseCacheAction(ttl_seconds=60.0, max_entries=8),
                operation="echo",
                name="cache-v1",
            )
        )
        bus = WsBus(env, network, repository=repository, member_timeout=5.0)
        cache = bus.traffic.cache_for("Echo", "echo")
        assert cache.config.max_entries == 8
        for index in range(5):
            cache.put(f"k{index}", Element("r"))
        assert cache.stats()["entries"] == 5

        # Operator reload: same scope, smaller budget.
        repository.unload("cache-v1")
        repository.load(
            traffic_document(
                ResponseCacheAction(ttl_seconds=60.0, max_entries=2),
                operation="echo",
                name="cache-v2",
            )
        )
        bus.traffic.refresh_from_policies()

        shrunk = bus.traffic.cache_for("Echo", "echo")
        assert shrunk is not cache
        assert shrunk.config.max_entries == 2
        assert shrunk.stats()["entries"] == 0
        for index in range(5):
            shrunk.put(f"k{index}", Element("r"))
        assert shrunk.stats()["entries"] == 2
        assert shrunk.stats()["evicted"] == 3
        # A no-op refresh keeps the live cache (and its entries).
        bus.traffic.refresh_from_policies()
        assert bus.traffic.cache_for("Echo", "echo") is shrunk

    def test_leveling_smooths_and_throttles(self, env, network, container):
        container.deploy(EchoService(env, "echo-a", "http://svc/a"))
        repository = PolicyRepository()
        repository.load(
            traffic_document(
                LoadLevelingAction(
                    rate_per_second=10.0, burst=1, max_queue=1,
                    max_wait_seconds=5.0,
                )
            )
        )
        bus = WsBus(env, network, repository=repository, member_timeout=5.0)
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a"],
            selection_strategy="primary",
        )
        outcomes = []
        invoker = Invoker(env, network, caller="client")

        def client(index):
            payload = ECHO_CONTRACT.operation("echo").input.build(text=f"c{index}")
            try:
                response = yield from invoker.invoke(
                    vep.address, "echo", payload, timeout=30.0
                )
            except SoapFaultError as error:
                outcomes.append(error.fault.code)
            else:
                outcomes.append(response.body.child_text("text"))

        for index in range(3):
            env.process(client(index))
        env.run()
        # One immediate, one leveled into the queue, one throttled away.
        assert vep.stats.leveled == 1
        assert vep.stats.throttled == 1
        assert outcomes.count(FaultCode.SERVICE_UNAVAILABLE) == 1

    def test_inert_without_policies(self, env, network, container):
        container.deploy(EchoService(env, "echo-a", "http://svc/a"))
        metrics = MetricsRegistry()
        bus = WsBus(
            env, network, repository=PolicyRepository(), member_timeout=5.0,
            metrics=metrics,
        )
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a"],
            selection_strategy="primary",
        )
        assert call(env, network, vep.address) == "hi@echo-a"
        assert bus.traffic.active is False
        assert "traffic" not in bus.stats_summary()
        assert not any(
            name.startswith("wsbus.traffic")
            for name in metrics.snapshot()["counters"]
        )
        stats = container.idempotency.stats()
        assert stats["entries"] == 0 and stats["recorded"] == 0
        assert vep.stats.cache_hits == 0


# ---------------------------------------------------------------------------
# Saga compensation replay is exactly-once at the service
# ---------------------------------------------------------------------------


def test_saga_compensation_replay_is_exactly_once_at_service():
    """Crash the engine after the first compensation completes, rehydrate,
    and drive the saga to completion: replay fast-forwards the completed
    compensation instead of re-invoking it, so the Retailer refunds the
    payment exactly once."""
    from repro.casestudies.scm import build_scm_deployment
    from repro.casestudies.scm.process import build_scm_saga_process
    from repro.experiments import count_crash_boundaries
    from repro.faultinjection import ProcessCrashInjector
    from repro.orchestration import TrackingService, WorkflowEngine
    from repro.orchestration.instance import InstanceStatus
    from repro.persistence import CheckpointStore, CheckpointingService

    seed = 11
    boundaries = count_crash_boundaries("scm-saga", seed=seed)
    crash_after = boundaries - 1  # right after the first compensation step

    deployment = build_scm_deployment(seed=seed, log_events=False)
    definition = build_scm_saga_process(
        deployment.retailers["C"].address, deployment.logging.address, abort=True
    )
    store = CheckpointStore()
    doomed_engine = WorkflowEngine(deployment.env, network=deployment.network)
    doomed_engine.add_service(TrackingService())
    doomed_engine.add_service(CheckpointingService(store, strict=True))
    injector = ProcessCrashInjector(deployment.env, crash_after)
    doomed_engine.add_service(injector)
    doomed_engine.register_definition(definition)
    doomed = doomed_engine.start(definition.name)
    deployment.env.run(until=injector.crashed_event)

    retailer = deployment.retailers["C"]
    if not doomed.status.is_final:
        recovery_engine = WorkflowEngine(deployment.env, network=deployment.network)
        recovery_engine.add_service(TrackingService())
        recovery_engine.add_service(CheckpointingService(store, strict=True))
        recovered = recovery_engine.rehydrate(store, doomed.id)
        deployment.env.run(recovered.process)
        assert recovered.status is InstanceStatus.COMPLETED

    assert retailer.payments_refunded == 1
    assert retailer.orders_cancelled == 1
