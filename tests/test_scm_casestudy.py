"""Tests for the WS-I SCM case study: services, deployment, workload."""

import pytest

from repro.casestudies.scm import (
    RETAILER_CONTRACT,
    WAREHOUSE_CONTRACT,
    build_scm_deployment,
    build_scm_process,
)
from repro.casestudies.scm.services import DEFAULT_CATALOG, parse_order_items
from repro.orchestration import TrackingService, WorkflowEngine
from repro.services import Invoker
from repro.soap import SoapFaultError
from repro.workload import RequestPlan, WorkloadRunner


@pytest.fixture
def scm():
    return build_scm_deployment(seed=7, log_events=True)


def invoke(deployment, address, operation, payload, timeout=30.0):
    invoker = Invoker(deployment.env, deployment.network, caller="test-client")

    def client():
        response = yield from invoker.invoke(address, operation, payload, timeout=timeout)
        return response

    return deployment.env.run(deployment.env.process(client()))


class TestOrderParsing:
    def test_parse_items(self):
        assert parse_order_items("TVx1,DVDx2") == [("TV", 1), ("DVD", 2)]

    def test_parse_tolerates_spaces(self):
        assert parse_order_items(" TVx1 , DVDx2 ") == [("TV", 1), ("DVD", 2)]

    def test_malformed_item_faults(self):
        with pytest.raises(SoapFaultError):
            parse_order_items("garbage")


class TestRetailer:
    def test_get_catalog_lists_products(self, scm):
        response = invoke(
            scm,
            scm.retailers["A"].address,
            "getCatalog",
            RETAILER_CONTRACT.operation("getCatalog").input.build(),
        )
        assert int(response.body.child_text("itemCount")) == len(DEFAULT_CATALOG)
        assert "TV" in response.body.child_text("catalog")

    def test_submit_order_fulfils_from_warehouse_a(self, scm):
        response = invoke(
            scm,
            scm.retailers["A"].address,
            "submitOrder",
            RETAILER_CONTRACT.operation("submitOrder").input.build(
                orderId="o-1", items="TVx1", customerId="c-1"
            ),
        )
        assert response.body.child_text("status") == "fulfilled"
        assert response.body.child_text("shippedFrom") == "WA"
        assert scm.warehouses["WA"].shipments == 1

    def test_warehouse_fall_through(self, scm):
        """WA empty -> WB ships (the A->B->C fall-through)."""
        scm.warehouses["WA"].stock["TV"] = 0
        response = invoke(
            scm,
            scm.retailers["A"].address,
            "submitOrder",
            RETAILER_CONTRACT.operation("submitOrder").input.build(
                orderId="o-2", items="TVx1", customerId="c-1"
            ),
        )
        assert response.body.child_text("shippedFrom") == "WB"
        assert scm.warehouses["WA"].stockouts == 1

    def test_fall_through_skips_unavailable_warehouse(self, scm):
        scm.network.endpoint(scm.warehouses["WA"].address).available = False
        response = invoke(
            scm,
            scm.retailers["A"].address,
            "submitOrder",
            RETAILER_CONTRACT.operation("submitOrder").input.build(
                orderId="o-3", items="TVx1", customerId="c-1"
            ),
        )
        assert response.body.child_text("shippedFrom") == "WB"

    def test_order_rejected_when_all_warehouses_empty(self, scm):
        for warehouse in scm.warehouses.values():
            warehouse.stock["TV"] = 0
            warehouse.manufacturer_address = None  # no restocking
        response = invoke(
            scm,
            scm.retailers["A"].address,
            "submitOrder",
            RETAILER_CONTRACT.operation("submitOrder").input.build(
                orderId="o-4", items="TVx1", customerId="c-1"
            ),
        )
        assert response.body.child_text("status") == "rejected"
        assert scm.retailers["A"].orders_rejected == 1

    def test_unknown_product_faults(self, scm):
        with pytest.raises(SoapFaultError):
            invoke(
                scm,
                scm.retailers["A"].address,
                "submitOrder",
                RETAILER_CONTRACT.operation("submitOrder").input.build(
                    orderId="o-5", items="Unicornx1", customerId="c-1"
                ),
            )

    def test_multi_item_order(self, scm):
        response = invoke(
            scm,
            scm.retailers["B"].address,
            "submitOrder",
            RETAILER_CONTRACT.operation("submitOrder").input.build(
                orderId="o-6", items="TVx1,DVDx2,Speakersx1", customerId="c-2"
            ),
        )
        assert response.body.child_text("status") == "fulfilled"
        assert response.body.child_text("shippedFrom").count("WA") == 3

    def test_logging_failure_does_not_fail_order(self, scm):
        scm.network.endpoint(scm.logging.address).available = False
        response = invoke(
            scm,
            scm.retailers["A"].address,
            "getCatalog",
            RETAILER_CONTRACT.operation("getCatalog").input.build(),
            timeout=30.0,
        )
        assert response.body.child_text("catalog")


class TestWarehouseRestocking:
    def test_restock_triggered_below_threshold(self):
        scm = build_scm_deployment(seed=7, initial_stock=12, log_events=False)
        warehouse = scm.warehouses["WA"]
        warehouse.restock_threshold = 10
        warehouse.restock_quantity = 40
        invoke(
            scm,
            warehouse.address,
            "shipGoods",
            WAREHOUSE_CONTRACT.operation("shipGoods").input.build(product="TV", quantity=5),
        )
        assert warehouse.stock["TV"] == 7  # below threshold, restock pending
        scm.env.run(until=scm.env.now + 60.0)  # wait out manufacturer lead time
        assert warehouse.stock["TV"] == 47
        assert scm.manufacturers["A"].orders_accepted == 1

    def test_no_duplicate_restock_in_flight(self):
        scm = build_scm_deployment(seed=7, initial_stock=12, log_events=False)
        warehouse = scm.warehouses["WA"]
        warehouse.restock_threshold = 12
        for index in range(2):
            invoke(
                scm,
                warehouse.address,
                "shipGoods",
                WAREHOUSE_CONTRACT.operation("shipGoods").input.build(product="TV", quantity=1),
            )
        scm.env.run(until=scm.env.now + 60.0)
        assert scm.manufacturers["A"].orders_accepted == 1

    def test_check_stock(self, scm):
        response = invoke(
            scm,
            scm.warehouses["WB"].address,
            "checkStock",
            WAREHOUSE_CONTRACT.operation("checkStock").input.build(product="TV"),
        )
        assert int(response.body.child_text("level")) > 0


class TestLoggingAndConfiguration:
    def test_events_logged_and_tracked(self, scm):
        invoke(
            scm,
            scm.retailers["A"].address,
            "getCatalog",
            RETAILER_CONTRACT.operation("getCatalog").input.build(),
        )
        from repro.casestudies.scm import LOGGING_CONTRACT

        response = invoke(
            scm,
            scm.logging.address,
            "getEvents",
            LOGGING_CONTRACT.operation("getEvents").input.build(source="RetailerA"),
        )
        assert int(response.body.child_text("count")) >= 1

    def test_configuration_lists_implementations(self, scm):
        from repro.casestudies.scm import CONFIGURATION_CONTRACT

        response = invoke(
            scm,
            scm.configuration.address,
            "getImplementations",
            CONFIGURATION_CONTRACT.operation("getImplementations").input.build(
                serviceType="Retailer"
            ),
        )
        assert int(response.body.child_text("count")) == 4


class TestScmProcess:
    def test_purchase_composition_end_to_end(self, scm):
        engine = WorkflowEngine(scm.env, network=scm.network)
        tracking = engine.add_service(TrackingService())
        definition = build_scm_process(
            retailer_address=scm.retailers["C"].address,
            logging_address=scm.logging.address,
        )
        engine.register_definition(definition)
        instance = engine.start(definition)
        assert engine.run_to_completion(instance) == "fulfilled"
        names = tracking.executed_activity_names(instance.id)
        assert names.index("get-catalog") < names.index("submit-order") < names.index("track-order")
        assert instance.variables["item_count"] == len(DEFAULT_CATALOG)


class TestWorkload:
    def test_workload_collects_metrics(self, scm):
        plan = RequestPlan(
            target=scm.retailers["A"].address,
            operation="getCatalog",
            payload_factory=lambda c, i: RETAILER_CONTRACT.operation("getCatalog").input.build(),
            timeout=10.0,
        )
        result = WorkloadRunner(scm.env, scm.network).run(plan, clients=3, requests_per_client=20)
        assert len(result.records) == 60
        assert len(result.failures) == 0
        assert result.rtt_stats()["mean"] > 0
        assert result.throughput() > 0

    def test_padding_sweeps_request_size(self, scm):
        def plan(padding):
            return RequestPlan(
                target=scm.retailers["A"].address,
                operation="getCatalog",
                payload_factory=lambda c, i: RETAILER_CONTRACT.operation("getCatalog").input.build(),
                padding_bytes=padding,
            )

        runner = WorkloadRunner(scm.env, scm.network)
        small = runner.run(plan(0), clients=1, requests_per_client=20)
        large = runner.run(plan(64 * 1024), clients=1, requests_per_client=20)
        assert large.rtt_stats()["mean"] > small.rtt_stats()["mean"]

    def test_think_time_spreads_run(self, scm):
        plan = RequestPlan(
            target=scm.retailers["A"].address,
            operation="getCatalog",
            payload_factory=lambda c, i: RETAILER_CONTRACT.operation("getCatalog").input.build(),
            think_time_seconds=1.0,
        )
        result = WorkloadRunner(scm.env, scm.network).run(plan, clients=1, requests_per_client=10)
        assert result.duration >= 10.0


class TestFaultInjectionIntegration:
    def test_table1_mix_produces_failures(self):
        scm = build_scm_deployment(seed=13, log_events=False)
        scm.inject_table1_mix()
        plan = RequestPlan(
            target=scm.retailers["A"].address,
            operation="getCatalog",
            payload_factory=lambda c, i: RETAILER_CONTRACT.operation("getCatalog").input.build(),
            timeout=5.0,
            think_time_seconds=2.0,
        )
        result = WorkloadRunner(scm.env, scm.network).run(plan, clients=4, requests_per_client=100)
        assert len(result.failures) > 0
        scm.availability_injector.finalize()
        log = scm.availability_injector.logs[scm.retailers["A"].address]
        assert log.availability(scm.env.now) < 1.0


class TestDegradationInjection:
    def test_degradations_inflate_rtt_or_time_out(self):
        scm = build_scm_deployment(seed=51, log_events=False)
        scm.inject_degradations(added_delay=8.0)
        plan = RequestPlan(
            target=scm.retailers["B"].address,
            operation="getCatalog",
            payload_factory=lambda c, i: RETAILER_CONTRACT.operation("getCatalog").input.build(),
            timeout=5.0,
            think_time_seconds=2.0,
        )
        result = WorkloadRunner(scm.env, scm.network).run(
            plan, clients=4, requests_per_client=150
        )
        # The 8 s injected delay exceeds the 5 s client timeout, so
        # degradation episodes manifest as Timeout faults.
        from repro.soap import FaultCode

        assert any(r.fault_code is FaultCode.TIMEOUT for r in result.failures)
        episodes = scm.degradation_injector.episodes[scm.retailers["B"].address]
        assert episodes


class TestPaddingVariable:
    def test_invoke_padding_from_variable(self):
        """Invoke.padding_variable inflates the request size from a
        process variable (used by request-size sweep compositions)."""
        from repro.orchestration import Invoke, ProcessDefinition, Reply, Sequence, WorkflowEngine

        scm = build_scm_deployment(seed=52, log_events=False)
        engine = WorkflowEngine(scm.env, network=scm.network)
        sizes = []
        engine.invoker.add_message_tap(
            lambda d, e, o, t: sizes.append(e.size_bytes) if d == "request" else None
        )
        definition = ProcessDefinition(
            "padded",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="getCatalog",
                        to=scm.retailers["A"].address,
                        padding_variable="request_padding",
                        extract={"catalog": "catalog"},
                    ),
                    Reply("r", variable="catalog"),
                ],
            ),
            initial_variables={"request_padding": 32 * 1024},
        )
        instance = engine.start(definition)
        engine.run_to_completion(instance)
        assert sizes and sizes[0] >= 32 * 1024
