"""Cross-layer integration: orchestration + wsBus + MASC coordination.

The paper's signature scenario: "before retrying invocation of a faulty
service, the adaptation policy might stipulate that MASCAdaptationService
should first suspend the calling process instance... or increase its
timeout interval to avoid the calling process timing out. To be able to
decide the process instance to be adapted, MASCAdaptationService
transparently adds the ProcessInstanceID of the calling process to
outgoing SOAP messages."
"""

import pytest

from conftest import ECHO_CONTRACT, EchoService
from repro.core import MASC
from repro.orchestration import (
    Invoke,
    ProcessDefinition,
    ProcessFault,
    Reply,
    Sequence,
)
from repro.orchestration.instance import InstanceStatus
from repro.policy import (
    AdaptationPolicy,
    ExtendTimeoutAction,
    PolicyDocument,
    PolicyScope,
    RetryAction,
    serialize_policy_document,
)
from repro.policy.actions import ResumeProcessAction, SuspendProcessAction
from repro.wsbus import WsBus


@pytest.fixture
def world():
    masc = MASC(seed=9)
    service = EchoService(masc.env, "echo1", "http://svc/echo")
    masc.deploy(service)
    bus = WsBus(
        masc.env,
        masc.network,
        repository=masc.repository,
        registry=masc.registry,
        process_enforcement=masc.adaptation,
        member_timeout=3.0,
    )
    vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/echo"])
    return masc, bus, vep


def definition_against(vep, timeout):
    return ProcessDefinition(
        "caller",
        Sequence(
            "main",
            [
                Invoke(
                    "call-through-bus",
                    operation="echo",
                    to=vep.address,
                    inputs={"text": "ping"},
                    extract={"echoed": "text"},
                    timeout_seconds=timeout,
                ),
                Reply("r", variable="echoed"),
            ],
        ),
    )


def recovery_policy(actions, name="cross-layer"):
    document = PolicyDocument(name)
    document.adaptation_policies.append(
        AdaptationPolicy(
            name=name,
            triggers=("fault.ServiceUnavailable", "fault.Timeout"),
            scope=PolicyScope(service_type="Echo"),
            actions=actions,
            priority=10,
        )
    )
    return serialize_policy_document(document)


class TestProcessInstanceIdPropagation:
    def test_engine_attaches_instance_id_to_messages(self, world):
        masc, bus, vep = world
        seen = []
        masc.engine.invoker.add_message_tap(
            lambda d, e, o, t: seen.append(e.addressing.process_instance_id)
        )
        instance = masc.engine.start(definition_against(vep, timeout=30.0))
        masc.engine.run_to_completion(instance)
        assert instance.id in seen


class TestTimeoutExtensionCoordination:
    def test_without_extension_the_process_times_out(self, world):
        masc, bus, vep = world
        masc.load_policies(
            recovery_policy((RetryAction(max_retries=4, delay_seconds=3.0),), name="retry-only")
        )
        endpoint = masc.network.endpoint("http://svc/echo")
        endpoint.available = False

        def repairer():
            yield masc.env.timeout(8.0)
            endpoint.available = True

        masc.env.process(repairer())
        instance = masc.engine.start(definition_against(vep, timeout=5.0))
        with pytest.raises(ProcessFault):
            masc.engine.run_to_completion(instance)
        assert instance.status is InstanceStatus.FAULTED

    def test_extension_keeps_process_alive_through_recovery(self, world):
        masc, bus, vep = world
        masc.load_policies(
            recovery_policy(
                (
                    ExtendTimeoutAction(extra_seconds=30.0),
                    RetryAction(max_retries=4, delay_seconds=3.0),
                ),
                name="extend-then-retry",
            )
        )
        endpoint = masc.network.endpoint("http://svc/echo")
        endpoint.available = False

        def repairer():
            yield masc.env.timeout(8.0)
            endpoint.available = True

        masc.env.process(repairer())
        instance = masc.engine.start(definition_against(vep, timeout=5.0))
        assert masc.engine.run_to_completion(instance) == "ping@echo1"
        assert instance.status is InstanceStatus.COMPLETED
        # The cross-layer action was actually enacted, and recovery happened
        # at the messaging layer, invisible to the process.
        assert any(
            "extend" in outcome_action
            for outcome in bus.adaptation.outcomes
            for outcome_action in outcome.actions_taken
        )
        assert instance.executed_activities == {
            "main", "call-through-bus", "r"
        } | instance.executed_activities

    def test_suspend_resume_coordination(self, world):
        masc, bus, vep = world
        masc.load_policies(
            recovery_policy(
                (
                    SuspendProcessAction(),
                    ExtendTimeoutAction(extra_seconds=30.0),
                    RetryAction(max_retries=4, delay_seconds=3.0),
                    ResumeProcessAction(),
                ),
                name="suspend-retry-resume",
            )
        )
        endpoint = masc.network.endpoint("http://svc/echo")
        endpoint.available = False

        def repairer():
            yield masc.env.timeout(8.0)
            endpoint.available = True

        masc.env.process(repairer())
        instance = masc.engine.start(definition_against(vep, timeout=5.0))
        assert masc.engine.run_to_completion(instance) == "ping@echo1"
        # The tracking trail shows the suspend/resume cycle.
        suspends = masc.tracking.events_for(instance.id, "instance_suspended")
        resumes = masc.tracking.events_for(instance.id, "instance_resumed")
        assert len(suspends) == 1 and len(resumes) == 1


class TestRecoveryShieldsProcess:
    def test_process_never_sees_the_fault(self, world):
        """Executing fault-handling policies at the messaging layer shields
        faults from the process orchestration."""
        masc, bus, vep = world
        masc.load_policies(
            recovery_policy((RetryAction(max_retries=5, delay_seconds=1.0),), name="retry")
        )
        endpoint = masc.network.endpoint("http://svc/echo")
        endpoint.available = False

        def repairer():
            yield masc.env.timeout(2.0)
            endpoint.available = True

        masc.env.process(repairer())
        instance = masc.engine.start(definition_against(vep, timeout=60.0))
        assert masc.engine.run_to_completion(instance) == "ping@echo1"
        faults = masc.tracking.events_for(instance.id, "activity_faulted")
        assert faults == []
        assert vep.stats.recovered == 1


class TestTerminateCoordination:
    def test_policy_terminates_calling_instance_on_fatal_fault(self, world):
        """'relatively simple dynamic changes of process instances (e.g.,
        ... delay/suspend/resume/terminate process)' — a messaging-layer
        policy can order termination of the calling instance."""
        from repro.policy.actions import TerminateProcessAction

        masc, bus, vep = world
        masc.load_policies(
            recovery_policy(
                (TerminateProcessAction(reason="fatal backend outage"),),
                name="terminate-on-fault",
            )
        )
        masc.network.endpoint("http://svc/echo").available = False
        instance = masc.engine.start(definition_against(vep, timeout=60.0))
        masc.env.run()
        assert instance.status is InstanceStatus.TERMINATED
        terminated = masc.tracking.events_for(instance.id, "instance_terminated")
        assert terminated
