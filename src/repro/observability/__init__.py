"""Cross-cutting observability: structured tracing and metrics.

The paper's wsBus *measures* QoS (the QoS Measurement Service and the
Monitoring Service of Section 3) but gives operators no way to see *why*
an adaptation fired — which VEP member was selected, which retry attempt
succeeded, which WS-Policy4MASC rule rewrote a running instance. This
package adds that missing layer:

- :mod:`repro.observability.tracing` — :class:`Tracer` / :class:`Span`
  with parent links and message-ID / process-instance-ID correlation, so
  one SCM request yields a single correlated trace spanning the messaging
  layer (VEP dispatch, retries, substitution) and the process layer
  (policy decisions, dynamic modification);
- :mod:`repro.observability.metrics` — :class:`MetricsRegistry` with
  counters and latency histograms;
- :mod:`repro.observability.exporters` — pluggable span sinks: in-memory
  (tests), JSONL files (offline analysis), and a human-readable console
  trace tree.

Everything defaults to the **no-op** :data:`NULL_TRACER` /
:data:`NULL_METRICS` singletons: instrumented hot paths guard on
``tracer.enabled`` and allocate nothing when tracing is off, so the
Figure 5 / Table 1 benchmarks are unaffected (see
``tests/test_observability.py::test_null_tracer_adds_zero_allocations``).
"""

from repro.observability.exporters import (
    ConsoleSummaryExporter,
    InMemoryExporter,
    JsonlExporter,
    SpanExporter,
    read_spans_jsonl,
    render_trace_tree,
)
from repro.observability.metrics import (
    NULL_METRICS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    labeled_name,
    merge_metric_snapshots,
)
from repro.observability.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    correlation_id_for,
)

__all__ = [
    "ConsoleSummaryExporter",
    "Counter",
    "FlightRecorder",
    "Histogram",
    "InMemoryExporter",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "SloObjective",
    "SloService",
    "Span",
    "SpanExporter",
    "Tracer",
    "correlation_id_for",
    "labeled_name",
    "merge_metric_snapshots",
    "read_spans_jsonl",
    "render_top",
    "render_trace_tree",
]

#: Lazily re-exported: the SLO engine imports :mod:`repro.core.events`
#: and :mod:`repro.policy`, which themselves import this package during
#: init — an eager import here would be a cycle. Everything that only
#: needs tracing/metrics/exporters stays eager above.
_LAZY = {
    "FlightRecorder": "repro.observability.ops",
    "SloObjective": "repro.observability.slo",
    "SloService": "repro.observability.slo",
    "render_top": "repro.observability.ops",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
