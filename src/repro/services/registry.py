"""UDDI-style service registry.

The registry maps abstract service types to concrete endpoint addresses.
The SCM case study's Configuration service "lists all implementations
registered in the UDDI registry for each of the Web Services"; wsBus VEPs
and adaptation policies use the same lookup for dynamic service selection
("a set of criteria for dynamically selecting the best Web service from a
directory").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceRecord", "ServiceRegistry"]


@dataclass
class ServiceRecord:
    """One registered service implementation."""

    service_type: str
    name: str
    address: str
    #: Free-form attributes used by selection criteria (vendor, region,
    #: advertised QoS class...).
    properties: dict[str, str] = field(default_factory=dict)


class ServiceRegistry:
    """Find service implementations by abstract type."""

    def __init__(self) -> None:
        self._records: dict[str, list[ServiceRecord]] = {}

    def register(
        self,
        service_type: str,
        name: str,
        address: str,
        properties: dict[str, str] | None = None,
    ) -> ServiceRecord:
        record = ServiceRecord(service_type, name, address, dict(properties or {}))
        self._records.setdefault(service_type, []).append(record)
        return record

    def unregister(self, address: str) -> None:
        for records in self._records.values():
            records[:] = [record for record in records if record.address != address]

    def find(
        self, service_type: str, predicate=None
    ) -> list[ServiceRecord]:
        """All implementations of ``service_type`` (optionally filtered)."""
        records = list(self._records.get(service_type, ()))
        if predicate is not None:
            records = [record for record in records if predicate(record)]
        return records

    def find_one(self, service_type: str, predicate=None) -> ServiceRecord | None:
        records = self.find(service_type, predicate)
        return records[0] if records else None

    @property
    def service_types(self) -> list[str]:
        return sorted(self._records)

    def __len__(self) -> int:
        return sum(len(records) for records in self._records.values())
