"""Figure 5: round trip time, direct vs channeling through wsBus.

The paper plots RTT for getCatalog and submitOrder at varying request
sizes (three runs of up to 2000 requests, zero inter-request delay) and
finds that "channeling of SOAP through wsBus is slower (usually about 10%,
which is not drastic) than direct SOAP-over-HTTP".

Shape assertions: RTT grows with request size for both deployment modes;
wsBus is consistently slower than direct; the median overhead stays
moderate (the paper's ~10% plus simulator headroom, far under 2x).
"""

from __future__ import annotations

from repro.experiments import regenerate_figure5, render_figure5
from repro.experiments.reports import DEFAULT_SIZES_KB


def test_figure5_round_trip_time(benchmark):
    series = benchmark.pedantic(regenerate_figure5, rounds=1, iterations=1)
    print()
    print(render_figure5(series))

    overheads = []
    for operation, (direct, mediated) in series.items():
        # RTT grows with request size (strictly from smallest to largest).
        assert direct[-1] > direct[0] * 1.5, f"{operation}: direct RTT should grow with size"
        assert mediated[-1] > mediated[0] * 1.5, f"{operation}: wsBus RTT should grow with size"
        # wsBus is slower than direct at every size (it adds a hop + work).
        for size_kb, d, m in zip(DEFAULT_SIZES_KB, direct, mediated):
            assert m > d, f"{operation} @ {size_kb}KB: wsBus ({m}) should exceed direct ({d})"
            overheads.append((m - d) / d)

    # Median overhead is moderate: the paper reports ~10%.
    overheads.sort()
    median_overhead = overheads[len(overheads) // 2]
    assert 0.0 < median_overhead < 1.0, f"median overhead {median_overhead:.2%} out of range"
