"""wsBus Monitoring Service: assertion-based fault capture.

"The monitoring policies can be attached to Monitoring Points at various
levels of granularity such as a Service Endpoint or a Service Operation."
The service:

- evaluates message pre/post-conditions from monitoring policies in scope,
- checks QoS thresholds against the QoS Measurement Service,
- classifies violations and transport/application faults into the fault
  taxonomy ("assign a meaningful fault type to the violation event"),
- raises MASC events toward the decision maker (for cross-layer policies)
  and hands faults to the Adaptation Manager "along with all the data
  required for recovery".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.events import MASCEvent
from repro.observability import NULL_METRICS, NULL_TRACER, correlation_id_for
from repro.policy import PolicyRepository
from repro.soap import FaultCode, SoapEnvelope, SoapFault
from repro.wsbus.qos import QoSMeasurementService
from repro.xmlutils import XPath

__all__ = ["BusMonitoringService", "MonitoringPoint"]


@dataclass(frozen=True)
class MonitoringPoint:
    """Where monitoring policies attach: endpoint or operation granularity."""

    service_type: str | None = None
    endpoint: str | None = None
    operation: str | None = None

    def subject(self) -> dict[str, str | None]:
        return {
            "service_type": self.service_type,
            "endpoint": self.endpoint,
            "operation": self.operation,
        }


class BusMonitoringService:
    """Evaluates monitoring policies at messaging-layer monitoring points."""

    def __init__(
        self,
        env,
        repository: PolicyRepository,
        qos: QoSMeasurementService,
        tracer=None,
        metrics=None,
    ) -> None:
        self.env = env
        self.repository = repository
        self.qos = qos
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._sinks: list[Callable[[MASCEvent], None]] = []
        self._xpath_cache: dict[str, XPath] = {}
        self.violations_detected = 0

    def add_sink(self, sink: Callable[[MASCEvent], None]) -> None:
        self._sinks.append(sink)

    def raise_event(self, event: MASCEvent) -> None:
        """Forward an externally produced MASC event to the sinks.

        The SLO engine (and any other in-process detector) routes its
        violation events through here so the decision maker and the flight
        recorder see one unified event stream.
        """
        for sink in self._sinks:
            sink(event)

    # -- message checks ------------------------------------------------------------

    def check_message(
        self, direction: str, envelope: SoapEnvelope, point: MonitoringPoint
    ) -> SoapFault | None:
        """Evaluate monitoring policies for one message.

        Returns the first classified violation fault (or None), and raises
        detection events/extractions to the sinks as side effects.
        """
        self.metrics.counter("wsbus.monitoring.checks").inc()
        subject = point.subject()
        policies = self.repository.monitoring_policies_for(f"message.{direction}", **subject)
        first_fault: SoapFault | None = None
        for policy in policies:
            context = self._extract(policy, envelope)
            if not policy.condition_holds(context):
                continue
            conditions_hold = all(c.evaluate(envelope) for c in policy.conditions)
            if policy.classify_as is not None and policy.conditions and not conditions_hold:
                self.violations_detected += 1
                fault = SoapFault(
                    policy.classify_as,
                    f"monitoring policy {policy.name!r} violated: "
                    + "; ".join(c.describe() for c in policy.conditions),
                    actor=point.endpoint,
                    source="wsbus-monitoring",
                )
                if first_fault is None:
                    first_fault = fault
                # The policy's declared events accompany the classification:
                # the paper sends the violation "toward the decision maker"
                # regardless of whether it was also classified as a fault.
                violation_context = dict(context)
                violation_context["violated_policy"] = policy.name
                for emitted in policy.emits:
                    self._emit(
                        emitted, envelope, point, violation_context, policy.name, fault=fault
                    )
                continue
            if policy.classify_as is None and conditions_hold:
                for emitted in policy.emits:
                    self._emit(emitted, envelope, point, context, policy.name)
            qos_fault = self._check_thresholds(policy, envelope, point, context)
            if qos_fault is not None and first_fault is None:
                first_fault = qos_fault
        if first_fault is not None:
            self.metrics.counter("wsbus.monitoring.violations").inc()
            if self.tracer.enabled:
                # A zero-length marker span: where and why monitoring flagged
                # the message (the rare path — the clean path emits nothing).
                self.tracer.start_span(
                    "wsbus.monitoring.violation",
                    correlation_id=correlation_id_for(envelope),
                    attributes={
                        "direction": direction,
                        "endpoint": point.endpoint,
                        "operation": point.operation,
                    },
                ).end(status=f"fault:{first_fault.code.value}")
        return first_fault

    def _check_thresholds(
        self, policy, envelope: SoapEnvelope, point: MonitoringPoint, context: dict
    ) -> SoapFault | None:
        fault: SoapFault | None = None
        for threshold in policy.qos_thresholds:
            observed = self.qos.lookup(
                threshold.metric, threshold.window, threshold.aggregate, point.endpoint
            )
            if threshold.holds(observed):
                continue
            self.violations_detected += 1
            code = policy.classify_as or FaultCode.SLA_VIOLATION
            if fault is None:
                fault = SoapFault(
                    code,
                    f"QoS guarantee violated: {threshold.describe()} "
                    f"(observed {observed})",
                    actor=point.endpoint,
                    source="wsbus-monitoring",
                )
            violation_context = dict(context)
            violation_context.update(
                violated_metric=threshold.metric,
                observed_value=observed,
                threshold_value=threshold.value,
            )
            self._emit(f"fault.{code.value}", envelope, point, violation_context, policy.name)
        return fault

    # -- fault classification ---------------------------------------------------------

    def classify(self, fault: SoapFault, point: MonitoringPoint) -> SoapFault:
        """Refine a detected fault's classification and notify sinks.

        Transport/application faults already carry a taxonomy code from the
        invoker; this hook exists so monitoring policies observing the
        fault can reclassify (first matching policy with ``classify_as``
        wins) and so every fault becomes a MASC event.
        """
        policies = self.repository.monitoring_policies_for(
            f"fault.{fault.code.value}", **point.subject()
        )
        classified = fault
        for policy in policies:
            if policy.classify_as is not None and policy.classify_as != fault.code:
                classified = SoapFault(
                    policy.classify_as,
                    fault.reason,
                    actor=fault.actor,
                    detail=fault.detail,
                    source=fault.source,
                )
                break
        return classified

    def notify_fault(
        self, fault: SoapFault, envelope: SoapEnvelope, point: MonitoringPoint
    ) -> None:
        """Raise the fault as a MASC event (decision-maker visibility)."""
        self.metrics.counter("wsbus.monitoring.faults").inc()
        self._emit(
            f"fault.{fault.code.value}",
            envelope,
            point,
            {"fault_reason": fault.reason, "fault_actor": fault.actor},
            raised_by=None,
            fault=fault,
        )

    # -- helpers -----------------------------------------------------------------------

    def _extract(self, policy, envelope: SoapEnvelope) -> dict:
        context: dict = {}
        if envelope.body is None:
            return context
        for variable, xpath in policy.extract.items():
            compiled = self._xpath_cache.get(xpath)
            if compiled is None:
                compiled = XPath(xpath)
                self._xpath_cache[xpath] = compiled
            value = compiled.value(envelope.body)
            context[variable] = _coerce(value)
        return context

    def _emit(
        self,
        name: str,
        envelope: SoapEnvelope,
        point: MonitoringPoint,
        context: dict,
        raised_by: str | None,
        fault: SoapFault | None = None,
    ) -> None:
        event = MASCEvent(
            name=name,
            time=self.env.now,
            service_type=point.service_type,
            endpoint=point.endpoint,
            operation=point.operation,
            process_instance_id=envelope.addressing.process_instance_id,
            envelope=envelope,
            fault=fault,
            context=context,
            raised_by=raised_by,
        )
        for sink in self._sinks:
            sink(event)


def _coerce(text: str | None):
    if text is None:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text in ("true", "false"):
        return text == "true"
    return text
