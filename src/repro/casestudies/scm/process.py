"""The SCM composition as an orchestrated process (Figure 4).

A client-side composition of the SCM use case: fetch the catalog, submit
the order, and read back the tracked events — the flow the WS-I sample
application drives through its Web client. Running it on the workflow
engine exercises the full stack: orchestration → (optionally wsBus) →
services.
"""

from __future__ import annotations

from repro.orchestration import (
    Assign,
    CompensationScope,
    IfElse,
    Invoke,
    ProcessDefinition,
    Reply,
    Sequence,
    Throw,
)
from repro.soap import FaultCode

__all__ = ["build_scm_process", "build_scm_saga_process"]


def build_scm_process(
    retailer_address: str,
    logging_address: str,
    order_items: str = "TVx1,DVDx2",
    customer_id: str = "customer-1",
    name: str = "scm-purchase",
) -> ProcessDefinition:
    """The purchase composition against a concrete (or VEP) retailer."""
    root = Sequence(
        "scm-main",
        [
            Invoke(
                "get-catalog",
                operation="getCatalog",
                to=retailer_address,
                inputs={},
                output_variable="catalog_response",
                extract={"catalog": "catalog", "item_count": "itemCount"},
                timeout_seconds=15.0,
            ),
            Invoke(
                "submit-order",
                operation="submitOrder",
                to=retailer_address,
                inputs={
                    "orderId": "$order_id",
                    "items": "$order_items",
                    "customerId": "$customer_id",
                },
                output_variable="order_response",
                extract={"order_status": "status", "shipped_from": "shippedFrom"},
                timeout_seconds=20.0,
            ),
            Invoke(
                "track-order",
                operation="getEvents",
                to=logging_address,
                inputs={},
                output_variable="events_response",
                extract={"event_count": "count"},
                timeout_seconds=10.0,
            ),
            Reply("order-result", variable="order_status"),
        ],
    )
    return ProcessDefinition(
        name,
        root,
        initial_variables={
            "order_id": "order-0001",
            "order_items": order_items,
            "customer_id": customer_id,
        },
    )


def build_scm_saga_process(
    retailer_address: str,
    logging_address: str,
    order_items: str = "TVx1,DVDx2",
    customer_id: str = "customer-1",
    amount: float = 1697.0,
    abort: bool = False,
    name: str = "scm-purchase-saga",
) -> ProcessDefinition:
    """The purchase composition as a saga (cancel-order compensation).

    Same flow as :func:`build_scm_process` with payment collection added,
    wrapped in a :class:`CompensationScope`: ``submit-order`` is undone by
    ``cancel-order`` (the retailer restocks the exact warehouses that
    shipped) and ``collect-payment`` by ``refund-payment``. With
    ``abort=True`` a gate throws after payment, so the engine unwinds the
    registered chain LIFO (refund, then cancel) and the catch-all handler
    replies ``aborted`` — the instance still *completes*.
    """
    body = Sequence(
        "saga-main",
        [
            Invoke(
                "get-catalog",
                operation="getCatalog",
                to=retailer_address,
                inputs={},
                output_variable="catalog_response",
                extract={"catalog": "catalog", "item_count": "itemCount"},
                timeout_seconds=15.0,
            ),
            Invoke(
                "submit-order",
                operation="submitOrder",
                to=retailer_address,
                inputs={
                    "orderId": "$order_id",
                    "items": "$order_items",
                    "customerId": "$customer_id",
                },
                output_variable="order_response",
                extract={"order_status": "status", "shipped_from": "shippedFrom"},
                timeout_seconds=20.0,
            ),
            Invoke(
                "collect-payment",
                operation="collectPayment",
                to=retailer_address,
                inputs={
                    "orderId": "$order_id",
                    "customerId": "$customer_id",
                    "amount": "$amount",
                },
                extract={"payment_id": "paymentId", "payment_status": "status"},
                timeout_seconds=10.0,
            ),
            IfElse(
                "abort-gate",
                "abort == 'true'",
                then=Throw(
                    "abort-order", FaultCode.SERVER, "purchase aborted after payment"
                ),
            ),
            Invoke(
                "track-order",
                operation="getEvents",
                to=logging_address,
                inputs={},
                output_variable="events_response",
                extract={"event_count": "count"},
                timeout_seconds=10.0,
            ),
            Reply("order-result", variable="order_status"),
        ],
    )
    root = CompensationScope(
        "purchase-saga",
        body,
        compensations={
            "submit-order": Invoke(
                "cancel-order",
                operation="cancelOrder",
                to=retailer_address,
                inputs={"orderId": "$order_id"},
                extract={"cancel_status": "status"},
                timeout_seconds=10.0,
            ),
            "collect-payment": Invoke(
                "refund-payment",
                operation="refundPayment",
                to=retailer_address,
                inputs={"paymentId": "$payment_id"},
                extract={"refund_status": "status"},
                timeout_seconds=10.0,
            ),
        },
        fault_handlers={
            None: Sequence(
                "abort-flow",
                [
                    Assign("mark-aborted", "order_status", value="aborted"),
                    Reply("aborted-result", variable="order_status"),
                ],
            )
        },
    )
    return ProcessDefinition(
        name,
        root,
        initial_variables={
            "order_id": "order-0001",
            "order_items": order_items,
            "customer_id": customer_id,
            "amount": amount,
            "abort": "true" if abort else "false",
        },
    )
