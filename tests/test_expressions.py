"""Unit tests for the safe expression evaluator."""

import pytest

from repro.orchestration import Expression, ExpressionError


class TestEvaluation:
    def test_arithmetic(self):
        assert Expression("2 + 3 * 4").evaluate({}) == 14

    def test_variables(self):
        assert Expression("amount * rate").evaluate({"amount": 100, "rate": 1.5}) == 150

    def test_comparison_chain(self):
        assert Expression("0 < x <= 10").evaluate({"x": 5}) is True
        assert Expression("0 < x <= 10").evaluate({"x": 15}) is False

    def test_boolean_operators(self):
        context = {"amount": 200_000, "profile": "personal"}
        expr = Expression("amount >= 100000 or profile == 'corporate'")
        assert expr.holds(context)
        assert not expr.holds({"amount": 10, "profile": "personal"})

    def test_membership(self):
        assert Expression("c in ['BR', 'RU']").holds({"c": "RU"})
        assert Expression("c not in ['BR', 'RU']").holds({"c": "AU"})

    def test_conditional_expression(self):
        assert Expression("'big' if n > 5 else 'small'").evaluate({"n": 9}) == "big"

    def test_subscript(self):
        assert Expression("xs[1]").evaluate({"xs": [10, 20]}) == 20

    def test_safe_functions(self):
        assert Expression("max(1, n, 3)").evaluate({"n": 7}) == 7
        assert Expression("int(amount / price)").evaluate({"amount": 10, "price": 3}) == 3
        assert Expression("len(name)").evaluate({"name": "abcd"}) == 4

    def test_unary_operators(self):
        assert Expression("-x").evaluate({"x": 3}) == -3
        assert Expression("not flag").evaluate({"flag": False}) is True

    def test_tuple_and_list_literals(self):
        assert Expression("(1, 2)").evaluate({}) == (1, 2)
        assert Expression("[x, x + 1]").evaluate({"x": 1}) == [1, 2]

    def test_unknown_variable_raises(self):
        with pytest.raises(ExpressionError):
            Expression("ghost + 1").evaluate({})

    def test_short_circuit_and(self):
        # Division by zero on the right is never evaluated.
        assert Expression("x > 0 and 1 / x > 0").holds({"x": 0}) is False

    def test_runtime_error_wrapped(self):
        with pytest.raises(ExpressionError):
            Expression("1 / x").evaluate({"x": 0})


class TestSecurity:
    """The evaluator must reject anything that could execute code."""

    @pytest.mark.parametrize(
        "source",
        [
            "__import__('os')",
            "open('/etc/passwd')",
            "x.__class__",
            "(lambda: 1)()",
            "[x for x in range(3)]",
            "exec('1')",
            "getattr(x, 'y')",
            "x.attribute",
            "f'{x}'",
            "max(x, key=abs)",
        ],
    )
    def test_rejected_at_compile_time(self, source):
        with pytest.raises(ExpressionError):
            Expression(source)

    def test_statements_rejected(self):
        with pytest.raises(ExpressionError):
            Expression("x = 1")

    def test_syntax_error_wrapped(self):
        with pytest.raises(ExpressionError):
            Expression("1 +")


class TestCompilationCache:
    """The compiled closures must be indistinguishable from the AST walker."""

    AGREEMENT_CORPUS = [
        ("2 + 3 * 4 - 1", {}),
        ("amount * rate", {"amount": 100, "rate": 1.5}),
        ("0 < x <= 10", {"x": 5}),
        ("0 < x <= 10", {"x": 15}),
        ("a >= 1 and b < 2 or not c", {"a": 1, "b": 5, "c": False}),
        ("x or 5", {"x": 0}),
        ("x and 5", {"x": 0}),
        ("c in ['BR', 'RU']", {"c": "AU"}),
        ("'big' if n > 5 else 'small'", {"n": 2}),
        ("xs[1] + xs[0]", {"xs": [10, 20]}),
        ("max(1, n, 3) + len(name)", {"n": 7, "name": "ab"}),
        ("-x ** 2", {"x": 3}),
        ("(1, 2)", {}),
        ("[x, x + 1]", {"x": 1}),
        ("round(2.675, 2)", {}),
    ]

    @pytest.mark.parametrize("source,variables", AGREEMENT_CORPUS)
    def test_compiled_matches_reference_walker(self, source, variables):
        from repro.orchestration.expressions import _compiled, _evaluate

        body, _run = _compiled(source)
        compiled_result = Expression(source).evaluate(variables)
        walker_result = _evaluate(body, variables)
        assert compiled_result == walker_result
        assert type(compiled_result) is type(walker_result)

    def test_comparisons_return_bool_singletons(self):
        assert Expression("1 < 2").evaluate({}) is True
        assert Expression("1 < 2 < 1").evaluate({}) is False

    def test_boolean_operators_return_operand_values(self):
        # and/or return the last evaluated operand, exactly like Python.
        assert Expression("x or 5").evaluate({"x": 0}) == 5
        assert Expression("x and 5").evaluate({"x": 0}) == 0
        assert Expression("x or 5").evaluate({"x": 7}) == 7

    def test_same_source_shares_one_compiled_closure(self):
        source = "threshold_cache_probe + 1"
        assert Expression(source)._run is Expression(source)._run

    def test_rejections_are_not_cached(self):
        from repro.orchestration.expressions import _compiled

        before = _compiled.cache_info().currsize
        for _ in range(2):
            with pytest.raises(ExpressionError):
                Expression("x.__class__")
        with pytest.raises(ExpressionError):
            Expression("1 +")
        assert _compiled.cache_info().currsize == before

    @pytest.mark.parametrize(
        "source",
        [
            "__import__('os')",
            "open('/etc/passwd')",
            "x.__class__",
            "(lambda: 1)()",
            "[x for x in range(3)]",
            "exec('1')",
            "getattr(x, 'y')",
            "x.attribute",
            "f'{x}'",
            "max(x, key=abs)",
        ],
    )
    def test_cached_path_rejects_same_ast_as_uncached(self, source):
        # Same corpus as TestSecurity, but constructed twice: a warm cache
        # must not admit a source the cold path rejects.
        for _ in range(2):
            with pytest.raises(ExpressionError):
                Expression(source)

    def test_unknown_variable_error_matches_walker(self):
        from repro.orchestration.expressions import _compiled, _evaluate

        body, _run = _compiled("ghost + 1")
        with pytest.raises(ExpressionError, match="unknown variable 'ghost'"):
            Expression("ghost + 1").evaluate({})
        with pytest.raises(ExpressionError, match="unknown variable 'ghost'"):
            _evaluate(body, {})

    def test_resource_guards_apply_through_closures(self):
        # _safe_mult / _safe_pow must run inside the compiled closures too.
        with pytest.raises(ExpressionError):
            Expression("x * y").evaluate({"x": 10**3000, "y": 10**3000})
        with pytest.raises(ExpressionError):
            Expression("2 ** n").evaluate({"n": 100_000})
        with pytest.raises(ExpressionError):
            Expression("s * n").evaluate({"s": "a", "n": 10**9})

    def test_short_circuit_skips_guarded_right_side(self):
        # The right operand (which would trip the pow guard) is never built.
        assert Expression("flag and 2 ** n").evaluate({"flag": False, "n": 10**6}) is False
