"""Cross-cutting observability: structured tracing and metrics.

The paper's wsBus *measures* QoS (the QoS Measurement Service and the
Monitoring Service of Section 3) but gives operators no way to see *why*
an adaptation fired — which VEP member was selected, which retry attempt
succeeded, which WS-Policy4MASC rule rewrote a running instance. This
package adds that missing layer:

- :mod:`repro.observability.tracing` — :class:`Tracer` / :class:`Span`
  with parent links and message-ID / process-instance-ID correlation, so
  one SCM request yields a single correlated trace spanning the messaging
  layer (VEP dispatch, retries, substitution) and the process layer
  (policy decisions, dynamic modification);
- :mod:`repro.observability.metrics` — :class:`MetricsRegistry` with
  counters and latency histograms;
- :mod:`repro.observability.exporters` — pluggable span sinks: in-memory
  (tests), JSONL files (offline analysis), and a human-readable console
  trace tree;
- :mod:`repro.observability.trace_context` — the ``masc:TraceContext``
  wire header (W3C-traceparent-style) that carries trace identity across
  bus/shard/failover hops, so a fleet-mediated request is one trace;
- :mod:`repro.observability.analysis` — trace assembly, critical-path
  extraction and per-phase latency attribution over exported spans
  (``python -m repro trace``);
- :mod:`repro.observability.sampling` — policy-driven head-based trace
  sampling (the WS-Policy4MASC ``Tracing`` assertion), with retroactive
  promotion of faulted / SLO-violating traces.

Everything defaults to the **no-op** :data:`NULL_TRACER` /
:data:`NULL_METRICS` singletons: instrumented hot paths guard on
``tracer.enabled`` and allocate nothing when tracing is off, so the
Figure 5 / Table 1 benchmarks are unaffected (see
``tests/test_observability.py::test_null_tracer_adds_zero_allocations``).
"""

from repro.observability.analysis import (
    attribute_latency,
    assemble_trace,
    critical_path,
    group_traces,
    load_spans,
    slowest_traces,
    trace_report,
)
from repro.observability.exporters import (
    ConsoleSummaryExporter,
    InMemoryExporter,
    JsonlExporter,
    SpanExporter,
    read_spans_jsonl,
    render_trace_tree,
)
from repro.observability.metrics import (
    NULL_METRICS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    labeled_name,
    merge_metric_snapshots,
)
from repro.observability.trace_context import (
    TraceContext,
    context_of_span,
    format_traceparent,
    parse_traceparent,
    stamp_trace_context,
    trace_context_of,
)
from repro.observability.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    correlation_id_for,
)

__all__ = [
    "ConsoleSummaryExporter",
    "Counter",
    "FlightRecorder",
    "Histogram",
    "InMemoryExporter",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "SloObjective",
    "SloService",
    "Span",
    "SpanExporter",
    "TraceContext",
    "TraceSampler",
    "Tracer",
    "TracingService",
    "assemble_trace",
    "attribute_latency",
    "context_of_span",
    "correlation_id_for",
    "critical_path",
    "format_traceparent",
    "group_traces",
    "labeled_name",
    "load_spans",
    "merge_metric_snapshots",
    "parse_traceparent",
    "read_spans_jsonl",
    "render_top",
    "render_trace_tree",
    "slowest_traces",
    "stamp_trace_context",
    "trace_context_of",
    "trace_report",
]

#: Lazily re-exported: the SLO engine imports :mod:`repro.core.events`
#: and :mod:`repro.policy`, which themselves import this package during
#: init — an eager import here would be a cycle. Everything that only
#: needs tracing/metrics/exporters stays eager above.
_LAZY = {
    "FlightRecorder": "repro.observability.ops",
    "SloObjective": "repro.observability.slo",
    "SloService": "repro.observability.slo",
    "TraceSampler": "repro.observability.sampling",
    "TracingService": "repro.observability.sampling",
    "render_top": "repro.observability.ops",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
