"""Discrete-event simulation kernel.

Every latency, timeout, retry delay and availability window in this
reproduction runs on simulated time. The kernel is a small generator-based
discrete-event engine (in the style of SimPy): simulated activities are
Python generators that ``yield`` events (timeouts, completions, composites)
and are resumed by the :class:`Environment` when those events trigger.

Using simulated instead of wall-clock time keeps the paper's experiments
(thousands of SOAP round trips with multi-second retry delays) deterministic
and fast, while exercising exactly the same middleware code paths.
"""

from repro.simulation.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.simulation.random_source import RandomSource

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomSource",
    "SimulationError",
    "Timeout",
]
