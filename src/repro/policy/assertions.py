"""Monitoring assertions: message conditions and QoS thresholds.

Monitoring policies "specify the desired behavior of the system in terms of
(a) pre-conditions and post-conditions that express constraints over
exchanged messages (b) thresholds over QoS guarantees (e.g. service response
time) as stipulated in pre-established SLAs".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soap import SoapEnvelope
from repro.xmlutils import XPath

__all__ = ["MessageCondition", "QoSThreshold"]

_OPERATORS = {
    "exists": lambda value, _ref: value is not None,
    "absent": lambda value, _ref: value is None,
    "eq": lambda value, ref: value == ref,
    "ne": lambda value, ref: value != ref,
    "lt": lambda value, ref: value is not None and _num(value) < _num(ref),
    "lte": lambda value, ref: value is not None and _num(value) <= _num(ref),
    "gt": lambda value, ref: value is not None and _num(value) > _num(ref),
    "gte": lambda value, ref: value is not None and _num(value) >= _num(ref),
    "contains": lambda value, ref: value is not None and str(ref) in str(value),
    "matches": lambda value, ref: value is not None and __import__("re").search(str(ref), str(value)) is not None,
}


def _num(value) -> float:
    return float(value)


@dataclass(frozen=True)
class MessageCondition:
    """An XPath constraint over a message header or payload.

    ``applies_to`` selects the evaluation root: ``body`` (default),
    ``header``, or ``envelope``.
    """

    xpath: str
    operator: str = "exists"
    value: str | None = None
    applies_to: str = "body"

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise ValueError(
                f"unknown operator {self.operator!r}; expected one of {sorted(_OPERATORS)}"
            )
        # Compile eagerly so malformed policies fail at load time.
        object.__setattr__(self, "_compiled", XPath(self.xpath))

    def evaluate(self, envelope: SoapEnvelope) -> bool:
        """True if the condition holds for ``envelope``."""
        root = None
        if self.applies_to in ("body", "envelope"):
            root = envelope.to_element() if self.applies_to == "envelope" else envelope.body
        elif self.applies_to == "header":
            root = envelope.to_element().find("{http://schemas.xmlsoap.org/soap/envelope/}Header")
        if root is None:
            return self.operator == "absent"
        observed = self._compiled.value(root)  # type: ignore[attr-defined]
        try:
            return bool(_OPERATORS[self.operator](observed, self.value))
        except (TypeError, ValueError):
            return False

    def describe(self) -> str:
        suffix = f" {self.value!r}" if self.value is not None else ""
        return f"{self.applies_to}:{self.xpath} {self.operator}{suffix}"


@dataclass(frozen=True)
class QoSThreshold:
    """A threshold over a measured QoS metric.

    ``metric`` is one of the QoS Measurement Service's metrics
    (``response_time``, ``reliability``, ``availability``, ``throughput``);
    ``window`` is how many recent observations the aggregate is computed
    over. A violated threshold raises an ``SLAViolation``-classified event.
    """

    metric: str
    operator: str
    value: float
    window: int = 50
    aggregate: str = "mean"  # mean | max | min | p95 | p99

    def __post_init__(self) -> None:
        if self.operator not in ("lt", "lte", "gt", "gte"):
            raise ValueError(f"QoS threshold operator must be an ordering, got {self.operator!r}")
        if self.aggregate not in ("mean", "max", "min", "p95", "p99"):
            raise ValueError(f"unknown aggregate {self.aggregate!r}")

    def holds(self, observed: float | None) -> bool:
        """True if the guarantee is satisfied by the observed aggregate."""
        if observed is None:
            return True  # no data: nothing to violate yet
        return bool(_OPERATORS[self.operator](observed, self.value))

    def describe(self) -> str:
        return f"{self.aggregate}({self.metric})[{self.window}] {self.operator} {self.value}"
