"""The simulation-kernel fast path must not change simulated metrics.

The envelope copy-on-write and size-cache optimizations only touch *how*
values are computed, never the values: these tests pin that down by running
the same seeded experiment twice — once on the fast path, once with the
reference implementations (``deep_copy`` and uncached ``size_bytes``)
monkeypatched back in — and asserting the per-record metric streams are
identical, float for float.
"""

from dataclasses import asdict

from repro.experiments import run_vep_configuration
from repro.soap import SoapEnvelope


def _uncached_size_bytes(self):
    return len(self.to_xml().encode()) + self.padding


def _run(seed):
    row, _bus, result = run_vep_configuration(seed, clients=2, requests=40)
    records = [
        (
            record.caller,
            record.target,
            record.operation,
            record.started_at,
            record.finished_at,
            record.outcome.value,
            record.fault_code.value if record.fault_code else None,
            record.request_bytes,
            record.response_bytes,
        )
        for record in result.records
    ]
    return asdict(row), records


def test_fast_path_metrics_identical_to_reference(monkeypatch):
    fast = _run(seed=11)
    with monkeypatch.context() as patch:
        patch.setattr(SoapEnvelope, "copy", SoapEnvelope.deep_copy)
        patch.setattr(SoapEnvelope, "size_bytes", property(_uncached_size_bytes))
        reference = _run(seed=11)
    assert fast[0] == reference[0]  # Table1Row
    assert fast[1] == reference[1]  # full per-record stream


def test_copy_and_deep_copy_serialize_identically():
    from repro.xmlutils import Element

    envelope = SoapEnvelope.request(
        "http://svc/a", "urn:op:x", Element("q", text="payload"), padding=256
    )
    envelope.add_header(Element("h", text="meta"))
    assert envelope.copy().to_xml() == envelope.deep_copy().to_xml()
    assert envelope.copy().size_bytes == envelope.deep_copy().size_bytes
