"""The Traffic Service: policy-driven traffic shaping for wsBus.

Reads the traffic-shaping vocabulary of WS-Policy4MASC
(:class:`~repro.policy.actions.IdempotencyAction`,
:class:`~repro.policy.actions.ResponseCacheAction`,
:class:`~repro.policy.actions.LoadLevelingAction`) out of the policy
repository and serves scope-matched configuration to the VEPs: which
operations get idempotency keys stamped, which get a response cache, and
which VEPs level their load.

Configuration policies use the conventional ``traffic.configure`` trigger
(the same load-time-scan convention as ``resilience.configure`` and
``observability.slo``) and are matched through their
:class:`~repro.policy.model.PolicyScope`. The service also subscribes to
the bus's MASC event stream so a policy's ``invalidate_on`` patterns turn
adaptation/SLO/domain events into cache flushes.

With no traffic policies loaded the service is inert
(:attr:`TrafficService.active` is False) and the bus message path is
byte-for-byte the pre-traffic one — the ablation switch is purely which
policies are loaded.
"""

from __future__ import annotations

from repro.observability import NULL_METRICS, NULL_TRACER
from repro.policy.actions import (
    IdempotencyAction,
    LoadLevelingAction,
    ResponseCacheAction,
)
from repro.traffic.cache import ResponseCache
from repro.traffic.leveling import LoadLeveler

__all__ = ["TrafficService"]

#: The trigger event name scanned for at load time.
TRAFFIC_CONFIGURE = "traffic.configure"

#: Sentinel distinguishing "no leveler configured" from "not derived yet".
_UNSET = object()


class TrafficService:
    """Materializes and serves the bus's traffic-shaping configuration."""

    def __init__(self, env, repository, tracer=None, metrics=None) -> None:
        self.env = env
        self.repository = repository
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._clock = lambda: env.now
        self._idempotency_rules: list[tuple] = []
        self._cache_rules: list[tuple] = []
        self._leveling_rules: list[tuple] = []
        #: Live caches keyed by their (frozen) configuring action: entries
        #: survive policy reloads that keep the action unchanged.
        self._caches: dict[ResponseCacheAction, ResponseCache] = {}
        #: Per-VEP levelers; _UNSET until derived, None when unmatched.
        self._levelers: dict[str, LoadLeveler | None] = {}
        self.refresh_from_policies()

    # -- configuration ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when any traffic-shaping behavior is configured."""
        return bool(
            self._idempotency_rules or self._cache_rules or self._leveling_rules
        )

    def refresh_from_policies(self) -> None:
        """Re-scan the repository for ``traffic.configure`` policies."""
        self._idempotency_rules = []
        self._cache_rules = []
        self._leveling_rules = []
        for policy in self.repository.adaptation_policies():
            if TRAFFIC_CONFIGURE not in policy.triggers:
                continue
            for action in policy.actions:
                rule = (policy.scope, action)
                if isinstance(action, IdempotencyAction):
                    self._idempotency_rules.append(rule)
                elif isinstance(action, ResponseCacheAction):
                    self._cache_rules.append(rule)
                elif isinstance(action, LoadLevelingAction):
                    self._leveling_rules.append(rule)
        # Levelers are re-derived lazily against the fresh rules; caches
        # for actions no longer configured are dropped.
        self._levelers.clear()
        live = {scope_action[1] for scope_action in self._cache_rules}
        for config in list(self._caches):
            if config not in live:
                del self._caches[config]

    @staticmethod
    def _match(rules, **subject):
        for scope, action in rules:
            if scope.matches(**subject):
                return action
        return None

    # -- lookups used on the mediation path ---------------------------------------

    def stamps(self, service_type: str, operation: str) -> bool:
        """Should requests for this subject carry an idempotency key?"""
        return (
            self._match(
                self._idempotency_rules,
                service_type=service_type,
                operation=operation,
            )
            is not None
        )

    def cache_for(self, service_type: str, operation: str) -> ResponseCache | None:
        config = self._match(
            self._cache_rules, service_type=service_type, operation=operation
        )
        if config is None:
            return None
        cache = self._caches.get(config)
        if cache is None:
            cache = self._caches[config] = ResponseCache(config, self._clock)
        return cache

    def leveler_for(self, vep_name: str, service_type: str) -> LoadLeveler | None:
        leveler = self._levelers.get(vep_name, _UNSET)
        if leveler is _UNSET:
            config = self._match(
                self._leveling_rules, endpoint=vep_name, service_type=service_type
            )
            leveler = (
                LoadLeveler(f"vep:{vep_name}", self.env, config)
                if config is not None
                else None
            )
            self._levelers[vep_name] = leveler
        return leveler

    # -- event-driven invalidation -------------------------------------------------

    def handle_event(self, event) -> None:
        """MASC event sink: flush caches whose patterns match the event."""
        if not self._caches:
            return
        name = event.name
        flushed = 0
        for cache in self._caches.values():
            if cache.matches_event(name):
                flushed += cache.invalidate()
        if flushed:
            if self.metrics.enabled:
                self.metrics.counter("wsbus.traffic.cache.invalidated").inc(flushed)
            if self.tracer.enabled:
                span = self.tracer.start_span(
                    "traffic.cache.invalidate",
                    attributes={"event": name, "entries": str(flushed)},
                )
                span.end()

    # -- reporting -----------------------------------------------------------------

    def summary(self) -> dict:
        """Counters for ``bus.stats_summary()``."""
        summary: dict = {}
        if self._caches:
            summary["caches"] = {
                config.describe(): cache.stats()
                for config, cache in self._caches.items()
            }
        levelers = {
            leveler.key: leveler.stats()
            for leveler in self._levelers.values()
            if leveler is not None
        }
        if levelers:
            summary["leveling"] = levelers
        summary["idempotency_rules"] = len(self._idempotency_rules)
        return summary
