"""Tracing and sampling must never change what the simulation computes.

The ``masc:TraceContext`` header is *transparent* (on the wire, excluded
from ``size_bytes``) and sampling only filters which finished spans reach
the exporters, so a traced run — sampled or not — is byte-identical to an
untraced one. These tests pin that equivalence on full storm runs.
"""

import tracemalloc

from repro.casestudies.scm import tracing_policy_document
from repro.experiments import run_fault_storm
from repro.experiments.fleet import run_fleet_storm
from repro.observability import NULL_TRACER, InMemoryExporter, Tracer


def _storm(**kwargs):
    defaults = dict(seed=7, resilience=True, clients=3, requests=25, slo=True)
    defaults.update(kwargs)
    return run_fault_storm(**defaults)


def _slo_events_sans_exemplars(result):
    # Exemplar trace ids are the one legitimate delta: an untraced run
    # records none. Timing, burns and ordering must still match exactly.
    return [
        {key: value for key, value in event.items() if key != "exemplar_trace_ids"}
        for event in result.slo["events"]
    ]


class TestTracedEqualsUntraced:
    def test_single_bus_storm_is_byte_identical_with_tracing_on(self):
        baseline = _storm()
        tracer = Tracer()
        tracer.add_exporter(InMemoryExporter())
        traced = _storm(tracer=tracer)
        tracer.close()
        assert traced.rtt_stats == baseline.rtt_stats
        assert traced.delivered == baseline.delivered
        assert traced.reliability == baseline.reliability
        assert _slo_events_sans_exemplars(traced) == _slo_events_sans_exemplars(
            baseline
        )

    def test_fleet_storm_is_time_identical_with_tracing_on(self):
        kwargs = dict(
            seed=11, shards=2, partitions=4, clients_per_partition=2, requests=10
        )
        baseline = run_fleet_storm(**kwargs)
        tracer = Tracer()
        tracer.add_exporter(InMemoryExporter())
        traced = run_fleet_storm(tracer=tracer, **kwargs)
        tracer.close()
        assert traced.rtt_stats == baseline.rtt_stats
        assert traced.throughput == baseline.throughput
        assert traced.delivered == baseline.delivered
        assert traced.placement == baseline.placement


class TestSamplingFiltersOnlyExports:
    def test_sampled_run_is_byte_identical_and_exports_less(self):
        full_tracer = Tracer()
        full_memory = full_tracer.add_exporter(InMemoryExporter())
        full = _storm(tracer=full_tracer)
        full_tracer.close()

        sampled_tracer = Tracer()
        sampled_memory = sampled_tracer.add_exporter(InMemoryExporter())
        sampled = _storm(
            tracer=sampled_tracer,
            extra_policies=(tracing_policy_document(sample_rate=0.2),),
        )
        sampled_tracer.close()

        # The simulation never observes the sampling verdict.
        assert sampled.rtt_stats == full.rtt_stats
        assert sampled.delivered == full.delivered
        assert sampled.slo["events"] == full.slo["events"]
        assert sampled.metrics == full.metrics

        # But far fewer traces reached the exporter, and each exported
        # trace is one the full run also saw — same ids, head-sampled.
        full_ids = {span.trace_id for span in full_memory.spans}
        sampled_ids = {span.trace_id for span in sampled_memory.spans}
        assert sampled_ids < full_ids
        assert len(sampled_ids) < len(full_ids) / 2

    def test_violation_traces_survive_sampling_via_promotion(self):
        tracer = Tracer()
        memory = tracer.add_exporter(InMemoryExporter())
        result = _storm(
            tracer=tracer,
            extra_policies=(tracing_policy_document(sample_rate=0.0),),
        )
        tracer.close()
        assert result.slo["events"]
        violations = memory.find(name="slo.violation")
        assert violations
        # Promotion pulled each violation's buffered ancestors along:
        # the violation's trace holds more than the violation itself.
        for violation in violations:
            trace = [s for s in memory.spans if s.trace_id == violation.trace_id]
            assert len(trace) > 1

    def test_sampling_applies_through_the_bus_policy_scan(self):
        tracer = Tracer()
        tracer.add_exporter(InMemoryExporter())
        result = _storm(
            tracer=tracer,
            extra_policies=(tracing_policy_document(sample_rate=0.5),),
        )
        tracer.close()
        assert result.bus.tracing.action is not None
        assert result.bus.tracing.action.sample_rate == 0.5


class TestNullTracerAllocations:
    def test_null_tracer_span_path_allocates_nothing(self):
        # The S6 guarantee restated at the API level: driving the
        # NULL_TRACER through the span lifecycle allocates no objects.
        spans = [NULL_TRACER.start_span("warmup") for _ in range(4)]
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(200):
            span = NULL_TRACER.start_span(
                "wsbus.mediate", correlation_id="msg-1", attributes=None
            )
            span.set_attribute("queue_seconds", 0.0)
            span.end()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        stats = after.compare_to(before, "filename")
        grown = sum(stat.size_diff for stat in stats if stat.size_diff > 0)
        # tracemalloc bookkeeping itself shows up; anything per-iteration
        # would dwarf this allowance (200 spans × ~100B each).
        assert grown < 4096, f"null tracer allocated {grown} bytes"
        assert spans
