"""The sharded experiment runner: determinism, merge order, crash reporting."""

import json
import os
from dataclasses import asdict

import pytest

from repro.experiments import (
    Cell,
    ShardError,
    regenerate_figure5,
    regenerate_table1_per_seed,
    run_cells,
)

# -- cell functions (module level: picklable by reference) ----------------------


def _double(value):
    return value * 2


def _raise(value):
    raise RuntimeError(f"cell {value} exploded")


def _die(value):
    os._exit(13)  # simulate a hard worker crash (segfault/OOM-kill)


# -- runner mechanics -----------------------------------------------------------


class TestRunCells:
    def test_merge_order_is_sorted_by_key_not_submission(self):
        cells = [Cell(("b",), _double, {"value": 2}), Cell(("a",), _double, {"value": 1})]
        merged = run_cells(cells, jobs=1)
        assert list(merged) == [("a",), ("b",)]
        assert merged == {("a",): 2, ("b",): 4}

    def test_duplicate_keys_rejected(self):
        cells = [Cell(("a",), _double, {"value": 1}), Cell(("a",), _double, {"value": 2})]
        with pytest.raises(ValueError, match="duplicate"):
            run_cells(cells, jobs=1)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failed_cell_is_reported_by_key_not_dropped(self, jobs):
        cells = [
            Cell(("ok",), _double, {"value": 1}),
            Cell(("boom",), _raise, {"value": 2}),
        ]
        with pytest.raises(ShardError) as excinfo:
            run_cells(cells, jobs=jobs)
        assert ("boom",) in excinfo.value.failures
        assert "exploded" in str(excinfo.value)

    def test_dead_worker_process_surfaces_as_shard_error(self):
        # A worker that dies mid-cell (not a Python exception: the process
        # itself exits) must neither hang the merge nor silently drop the
        # cell — the pool error is attributed to the cell's key. (A second
        # cell keeps the run off the single-cell inline path.)
        cells = [
            Cell(("dead",), _die, {"value": 1}),
            Cell(("ok",), _double, {"value": 1}),
        ]
        with pytest.raises(ShardError) as excinfo:
            run_cells(cells, jobs=2)
        assert ("dead",) in excinfo.value.failures


# -- experiment determinism -----------------------------------------------------


def _table1_fingerprint(per_seed):
    return json.dumps(
        {repr(key): asdict(row) for key, row in per_seed.items()}, sort_keys=True
    )


class TestShardedDeterminism:
    def test_table1_jobs4_byte_identical_to_jobs1(self):
        kwargs = dict(seeds=(11, 23), clients=2, requests=40)
        sequential = regenerate_table1_per_seed(jobs=1, **kwargs)
        sharded = regenerate_table1_per_seed(jobs=4, **kwargs)
        assert list(sequential) == list(sharded)
        assert _table1_fingerprint(sequential) == _table1_fingerprint(sharded)

    def test_figure5_jobs4_identical_to_jobs1(self):
        kwargs = dict(sizes_kb=(1, 4), requests=20)
        sequential = regenerate_figure5(jobs=1, **kwargs)
        sharded = regenerate_figure5(jobs=4, **kwargs)
        assert json.dumps(sequential, sort_keys=True) == json.dumps(
            sharded, sort_keys=True
        )

    def test_tracer_forces_sequential_run(self):
        from repro.observability import Tracer

        tracer = Tracer()
        rows = regenerate_table1_per_seed(
            seeds=(11,), clients=2, requests=20, tracer=tracer, jobs=4
        )
        # Spans only exist if the cells ran in-process.
        assert tracer.finished_count > 0
        assert ("VEP", 11) in rows

    def test_slo_storm_jobs4_identical_to_jobs1(self):
        # The SLO engine rides the resilience-on arm: metrics snapshots,
        # SLO event sequences, and burn-rate status must survive the
        # pickle round-trip through the pool byte-identically.
        from repro.experiments import run_cells, storm_cells

        kwargs = dict(seed=7, clients=3, requests=25, slo=True)
        sequential = run_cells(storm_cells(**kwargs), jobs=1)
        sharded = run_cells(storm_cells(**kwargs), jobs=4)
        assert list(sequential) == list(sharded)
        for key in sequential:
            a, b = asdict(sequential[key]), asdict(sharded[key])
            assert json.dumps(a, sort_keys=True, default=str) == json.dumps(
                b, sort_keys=True, default=str
            )
        on = sequential[(7, "on")]
        assert on.slo is not None and on.slo["events"]
        assert sequential[(7, "off")].slo is None


class TestMetricSnapshotMerge:
    def test_counters_sum_and_histograms_combine(self):
        from repro.observability import MetricsRegistry, merge_metric_snapshots

        first = MetricsRegistry()
        first.counter("x").inc(2)
        first.histogram("h").observe(1.0)
        second = MetricsRegistry()
        second.counter("x").inc(3)
        second.counter("y").inc(1)
        second.histogram("h").observe(3.0)
        merged = merge_metric_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counters"] == {"x": 5, "y": 1}
        combined = merged["histograms"]["h"]
        assert combined["count"] == 2
        assert combined["min"] == 1.0 and combined["max"] == 3.0
        assert combined["mean"] == pytest.approx(2.0)

    def test_merge_is_order_independent(self):
        from repro.observability import MetricsRegistry, merge_metric_snapshots

        registries = []
        for seed in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("c").inc(seed)
            registry.histogram("h").observe(float(seed))
            registries.append(registry.snapshot())
        forward = merge_metric_snapshots(registries)
        backward = merge_metric_snapshots(list(reversed(registries)))
        assert json.dumps(forward, sort_keys=True) == json.dumps(
            backward, sort_keys=True
        )
