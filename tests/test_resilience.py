"""Tests for the resilience subsystem: breakers, bulkheads, adaptive
timeouts, load shedding, retry jitter, and dead-letter replay."""

import pytest

from conftest import ECHO_CONTRACT, EchoService, SlowEchoService, run_process
from repro.policy import (
    AdaptationPolicy,
    AdaptiveTimeoutAction,
    BulkheadAction,
    CircuitBreakerAction,
    LoadSheddingAction,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
    RetryAction,
    SubstituteAction,
    parse_policy_document,
    serialize_policy_document,
)
from repro.observability import InMemoryExporter, MetricsRegistry, Tracer
from repro.resilience import Bulkhead, CircuitBreaker, LoadShedder, adaptive_timeout
from repro.services import InvocationOutcome, InvocationRecord, Invoker
from repro.simulation import RandomSource
from repro.soap import FaultCode, SoapEnvelope, SoapFault, SoapFaultError
from repro.wsbus import DeadLetterQueue, RetryQueue, WsBus
from repro.wsbus.qos import QoSMeasurementService
from repro.xmlutils import Element


# ---------------------------------------------------------------------------
# Circuit breaker state machine (unit, manual clock)
# ---------------------------------------------------------------------------


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_breaker(clock, **overrides):
    defaults = dict(
        failure_rate_threshold=0.5,
        window=10,
        min_calls=4,
        consecutive_failures=3,
        open_seconds=30.0,
        half_open_probes=1,
    )
    defaults.update(overrides)
    return CircuitBreaker("http://svc/x", CircuitBreakerAction(**defaults), clock)


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures(self):
        breaker = make_breaker(Clock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state.value == "closed"
        breaker.record_failure()
        assert breaker.state.value == "open"
        assert "consecutive" in breaker.transitions[-1].reason

    def test_trips_on_failure_rate(self):
        breaker = make_breaker(Clock(), consecutive_failures=99)
        # 2 failures / 4 calls = 50% >= threshold, min_calls satisfied.
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state.value == "closed"  # only 3 calls so far
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state.value == "open"
        assert "failure rate" in breaker.transitions[-1].reason

    def test_success_resets_consecutive_count(self):
        breaker = make_breaker(Clock(), min_calls=99)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state.value == "closed"

    def test_open_blocks_until_interval_elapses(self):
        clock = Clock()
        breaker = make_breaker(clock, open_seconds=30.0)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow_request()
        assert not breaker.would_allow()
        clock.now = 31.0
        assert breaker.would_allow()

    def test_half_open_probe_budget(self):
        clock = Clock()
        breaker = make_breaker(clock, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        # would_allow is a non-consuming peek: selection may ask many times.
        assert breaker.would_allow()
        assert breaker.would_allow()
        assert breaker.allow_request()  # consumes the single probe
        assert breaker.state.value == "half_open"
        assert not breaker.allow_request()
        assert not breaker.would_allow()

    def test_probe_success_closes(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state.value == "closed"
        # The poisoned outcome window was cleared: one old failure must not
        # immediately re-trip the freshly closed breaker.
        breaker.record_failure()
        assert breaker.state.value == "closed"

    def test_probe_failure_reopens(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        assert breaker.allow_request()
        breaker.record_failure()
        assert breaker.state.value == "open"
        # The open interval restarts from the failed probe.
        clock.now = 40.0
        assert not breaker.would_allow()
        clock.now = 62.0
        assert breaker.would_allow()

    def test_lost_probe_outcome_reclaims_via_allow_request(self):
        """Regression: a half-open probe whose outcome never arrives (the
        request was shed, bulkhead-rejected, or lost) used to wedge the
        breaker — the probe budget stayed exhausted forever. The breaker
        now re-opens once the probe is ``open_seconds`` old, restarting
        the normal open → half-open cycle."""
        clock = Clock()
        breaker = make_breaker(clock, open_seconds=30.0, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        assert breaker.allow_request()  # the probe whose outcome gets lost
        # Probe budget exhausted; no outcome ever recorded.
        clock.now = 60.0
        assert not breaker.allow_request()
        # open_seconds after the probe admission: reclaimed, back to OPEN.
        clock.now = 61.0
        assert not breaker.allow_request()
        assert breaker.state.value == "open"
        assert breaker.transitions[-1].reason == "half-open probe timed out"
        assert breaker.transitions[-1].from_state == "half_open"
        # The cycle restarts: a fresh probe is admitted and can close it.
        clock.now = 92.0
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state.value == "closed"

    def test_lost_probe_outcome_reclaims_via_would_allow(self):
        """Selection filters a wedged breaker's endpoint out, so the
        breaker may only ever see ``would_allow`` peeks — those must
        reclaim a timed-out probe too, or the endpoint never returns."""
        clock = Clock()
        breaker = make_breaker(clock, open_seconds=30.0, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        assert breaker.allow_request()
        clock.now = 61.0
        assert not breaker.would_allow()
        assert breaker.state.value == "open"
        assert breaker.transitions[-1].reason == "half-open probe timed out"
        clock.now = 92.0
        assert breaker.would_allow()

    def test_resolved_probe_is_not_reclaimed(self):
        """A probe that *did* report its outcome transitions normally —
        the reclaim only fires for unresolved probes."""
        clock = Clock()
        breaker = make_breaker(clock, open_seconds=30.0, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state.value == "closed"
        clock.now = 120.0
        assert breaker.allow_request()
        assert breaker.state.value == "closed"
        assert all(
            t.reason != "half-open probe timed out" for t in breaker.transitions
        )


# ---------------------------------------------------------------------------
# Bulkheads
# ---------------------------------------------------------------------------


class TestBulkhead:
    def test_admits_to_capacity_then_queues_then_rejects(self, env):
        bulkhead = Bulkhead("endpoint:x", env, max_concurrent=2, max_queue=1)
        assert bulkhead.try_acquire() is None
        assert bulkhead.try_acquire() is None
        waiter = bulkhead.try_acquire()
        assert waiter is not None  # queued
        with pytest.raises(SoapFaultError) as excinfo:
            bulkhead.try_acquire()
        assert excinfo.value.fault.code is FaultCode.SERVICE_UNAVAILABLE
        assert bulkhead.rejected == 1

    def test_release_hands_slot_to_oldest_waiter(self, env):
        bulkhead = Bulkhead("endpoint:x", env, max_concurrent=1, max_queue=2)
        assert bulkhead.try_acquire() is None
        waiter = bulkhead.try_acquire()
        assert not waiter.triggered
        bulkhead.release()
        assert waiter.triggered  # slot transferred, in_flight stays 1
        assert bulkhead.in_flight == 1


# ---------------------------------------------------------------------------
# Adaptive timeouts
# ---------------------------------------------------------------------------


def qos_with_samples(durations, target="http://svc/x"):
    qos = QoSMeasurementService()
    for index, duration in enumerate(durations):
        qos.observe(
            InvocationRecord(
                caller="client",
                target=target,
                operation="echo",
                started_at=float(index),
                finished_at=float(index) + duration,
                outcome=InvocationOutcome.SUCCESS,
            )
        )
    return qos


class TestAdaptiveTimeout:
    CONFIG = AdaptiveTimeoutAction(
        aggregate="p95", multiplier=3.0, min_seconds=0.25, max_seconds=30.0,
        window=50, min_samples=5,
    )

    def test_fallback_without_data(self):
        assert adaptive_timeout(QoSMeasurementService(), "http://svc/x", self.CONFIG, 10.0) == 10.0

    def test_fallback_below_min_samples(self):
        qos = qos_with_samples([0.1, 0.1, 0.1])
        assert adaptive_timeout(qos, "http://svc/x", self.CONFIG, 10.0) == 10.0

    def test_derives_from_percentile(self):
        qos = qos_with_samples([0.1] * 19 + [0.2])
        timeout = adaptive_timeout(qos, "http://svc/x", self.CONFIG, 10.0)
        assert 0.25 <= timeout <= 3.0 * 0.2 + 1e-9

    def test_clamped_to_band(self):
        config = AdaptiveTimeoutAction(multiplier=3.0, min_seconds=1.0, max_seconds=2.0)
        qos = qos_with_samples([0.01] * 10)
        assert adaptive_timeout(qos, "http://svc/x", config, 10.0) == 1.0
        qos = qos_with_samples([50.0] * 10)
        assert adaptive_timeout(qos, "http://svc/x", config, 10.0) == 2.0


# ---------------------------------------------------------------------------
# Load shedding
# ---------------------------------------------------------------------------


class FakeQueue:
    def __init__(self, depth):
        self.depth = depth


class TestLoadShedder:
    def test_sheds_past_max_inflight(self):
        shedder = LoadShedder(LoadSheddingAction(max_inflight=2))
        assert shedder.try_admit() is None
        assert shedder.try_admit() is None
        fault = shedder.try_admit()
        assert fault is not None and fault.code is FaultCode.SERVICE_UNAVAILABLE
        assert "retry later" in fault.reason
        shedder.release()
        assert shedder.try_admit() is None
        assert shedder.stats()["shed"] == 1

    def test_sheds_on_retry_queue_depth(self):
        shedder = LoadShedder(
            LoadSheddingAction(max_inflight=100, max_retry_queue_depth=2),
            retry_queue=FakeQueue(depth=3),
        )
        assert shedder.try_admit() is not None
        shedder.retry_queue.depth = 2
        assert shedder.try_admit() is None

    def test_unbalanced_release_is_floored_and_counted(self):
        """Regression: a release without a matching admission used to
        drive ``in_flight`` negative, silently raising the gate's real
        capacity. It is now floored at zero and counted as a bug signal."""
        shedder = LoadShedder(LoadSheddingAction(max_inflight=1))
        shedder.release()
        shedder.release()
        assert shedder.in_flight == 0
        assert shedder.stats()["unbalanced_releases"] == 2
        # Capacity is intact: exactly one admission fits.
        assert shedder.try_admit() is None
        assert shedder.try_admit() is not None


class TestVepAdmissionAccounting:
    def test_failed_bulkhead_wait_still_releases_admission(
        self, env, network, container
    ):
        """Regression: the VEP used to yield on the bulkhead-queue wait
        *outside* the try/finally that releases the admission holds, so a
        failed wait event leaked a shedder slot forever — a slow leak of
        bus capacity under exactly the overloads shedding exists for."""
        from repro.resilience import Admission

        container.deploy(EchoService(env, "echo-a", "http://svc/a"))
        bus = WsBus(
            env, network, repository=PolicyRepository(), member_timeout=5.0
        )
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a"],
            selection_strategy="primary",
        )
        shedder = LoadShedder(LoadSheddingAction(max_inflight=4))
        failing_wait = env.event()
        failing_wait.fail(RuntimeError("queue collapsed"), delay=0.1)

        class StubResilience:
            active = True

            def admit_vep_request(self, vep_name, service_type):
                assert shedder.try_admit() is None
                return Admission([shedder], failing_wait)

        vep.resilience = StubResilience()
        request = SoapEnvelope.request(
            vep.address or "http://vep/echo",
            "urn:op:echo",
            ECHO_CONTRACT.operation("echo").input.build(text="x"),
        )

        def driver():
            with pytest.raises(RuntimeError):
                yield from vep.handle(request)

        run_process(env, driver())
        assert shedder.in_flight == 0
        assert shedder.stats()["unbalanced_releases"] == 0

    def test_faulting_mediation_releases_admission(self, env, network, container):
        """Shed-gate accounting stays balanced when every mediation ends
        in a fault (no members → immediate SoapFaultError inside the
        protected section)."""
        repository = PolicyRepository()
        document = PolicyDocument("shed-only")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="bus-load-shedding",
                triggers=("resilience.configure",),
                scope=PolicyScope(),
                actions=(LoadSheddingAction(max_inflight=2),),
                priority=10,
            )
        )
        repository.load(document)
        bus = WsBus(env, network, repository=repository, member_timeout=5.0)
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=[], selection_strategy="primary"
        )
        invoker = Invoker(env, network, caller="client")

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            with pytest.raises(SoapFaultError):
                yield from invoker.invoke(vep.address, "echo", payload, timeout=10.0)

        for _ in range(3):
            run_process(env, client())
        shedder = bus.resilience.shedder
        assert shedder is not None
        assert shedder.stats()["in_flight"] == 0
        assert shedder.stats()["unbalanced_releases"] == 0
        assert shedder.stats()["admitted"] == 3


# ---------------------------------------------------------------------------
# Policy XML round-trip of the resilience vocabulary
# ---------------------------------------------------------------------------


def test_resilience_actions_roundtrip_xml():
    document = PolicyDocument("resilience-xml")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="all-resilience-actions",
            triggers=("resilience.configure",),
            scope=PolicyScope(endpoint="http://svc/*"),
            actions=(
                CircuitBreakerAction(
                    failure_rate_threshold=0.4, window=30, min_calls=6,
                    consecutive_failures=4, open_seconds=12.5, half_open_probes=2,
                ),
                BulkheadAction(max_concurrent=5, max_queue=7, applies_to="vep"),
                AdaptiveTimeoutAction(
                    aggregate="p99", multiplier=2.5, min_seconds=0.5,
                    max_seconds=20.0, window=40, min_samples=8,
                ),
                LoadSheddingAction(max_inflight=99, max_retry_queue_depth=12),
            ),
            priority=5,
            adaptation_type="prevention",
        )
    )
    parsed = parse_policy_document(serialize_policy_document(document))
    assert parsed.adaptation_policies[0].actions == document.adaptation_policies[0].actions
    assert parsed.adaptation_policies[0].scope == document.adaptation_policies[0].scope


# ---------------------------------------------------------------------------
# Retry jitter + delay cap (satellite 1)
# ---------------------------------------------------------------------------


class TestRetryJitter:
    def test_backoff_respects_cap(self):
        action = RetryAction(
            max_retries=5, delay_seconds=1.0, backoff_multiplier=3.0, max_delay_seconds=5.0
        )
        delays = [action.delay_for_attempt(n) for n in (1, 2, 3, 4)]
        assert delays == [1.0, 3.0, 5.0, 5.0]

    def test_jitter_stays_in_band_and_is_deterministic(self):
        action = RetryAction(max_retries=3, delay_seconds=2.0, jitter_fraction=0.5)
        first = [
            action.delay_for_attempt(1, rng=RandomSource(5).stream("jitter"))
            for _ in range(1)
        ]
        rng_a = RandomSource(5).stream("jitter")
        rng_b = RandomSource(5).stream("jitter")
        series_a = [action.delay_for_attempt(1, rng=rng_a) for _ in range(20)]
        series_b = [action.delay_for_attempt(1, rng=rng_b) for _ in range(20)]
        assert series_a == series_b  # same seed, same stream -> same delays
        assert series_a[0] == first[0]
        for delay in series_a:
            assert 1.0 <= delay <= 3.0  # 2.0 +/- 50%
        assert len(set(series_a)) > 1  # it actually jitters

    def test_invalid_jitter_rejected(self):
        from repro.policy import ActionError

        with pytest.raises(ActionError):
            RetryAction(jitter_fraction=1.0)
        with pytest.raises(ActionError):
            RetryAction(max_delay_seconds=-1.0)

    def test_retry_queue_applies_jitter(self, env):
        attempts = []

        def sender(envelope, operation, target):
            attempts.append(env.now)
            yield env.timeout(0.0)
            if len(attempts) < 3:
                raise SoapFaultError(SoapFault(FaultCode.SERVICE_UNAVAILABLE, "down"))
            return envelope.reply(Element("ok"))

        queue = RetryQueue(env, sender, DeadLetterQueue(), random_source=RandomSource(9))
        envelope = SoapEnvelope.request("http://svc", "urn:op:x", Element("q"))
        completion = queue.enqueue(
            envelope, "x", "http://svc",
            RetryAction(max_retries=5, delay_seconds=2.0, jitter_fraction=0.5),
        )
        run_process(env, _wait(completion))
        gaps = [b - a for a, b in zip(attempts, attempts[1:])]
        for gap in gaps:
            assert 1.0 <= gap <= 3.0
        assert any(abs(gap - 2.0) > 1e-6 for gap in gaps)


def _wait(event):
    response = yield event
    return response


# ---------------------------------------------------------------------------
# Dead-letter replay (satellite 2)
# ---------------------------------------------------------------------------


class RecoveringSender:
    """Fails every attempt until ``healed`` is set."""

    def __init__(self, env):
        self.env = env
        self.healed = False
        self.delivered = []

    def __call__(self, envelope, operation, target):
        yield self.env.timeout(0.01)
        if not self.healed:
            raise SoapFaultError(SoapFault(FaultCode.SERVICE_UNAVAILABLE, "still down"))
        self.delivered.append(envelope)
        return envelope.reply(Element("ok"))


class TestDeadLetterReplay:
    def exhaust(self, env, queue, envelope):
        completion = queue.enqueue(
            envelope, "x", "http://svc", RetryAction(max_retries=2, delay_seconds=0.1)
        )

        def waiter():
            with pytest.raises(SoapFaultError):
                yield completion

        env.run(env.process(waiter()))

    def test_replay_reenqueues_with_fresh_budget(self, env):
        dlq = DeadLetterQueue()
        sender = RecoveringSender(env)
        queue = RetryQueue(env, sender, dlq)
        envelope = SoapEnvelope.request("http://svc", "urn:op:x", Element("q"))
        self.exhaust(env, queue, envelope)
        assert len(dlq) == 1 and dlq.entries[0].attempts_made == 2

        sender.healed = True
        completions = dlq.replay(queue, policy=RetryAction(max_retries=1, delay_seconds=0.1))
        assert len(completions) == 1
        env.run(env.process(_wait(env.all_of(completions))))
        assert len(dlq) == 0
        assert dlq.replayed == 1
        # The original envelope (and with it the correlation/message ID) is
        # what gets redelivered, not a copy.
        assert sender.delivered[0].addressing.message_id == envelope.addressing.message_id

    def test_replay_failure_dead_letters_again_without_unhandled_error(self, env):
        dlq = DeadLetterQueue()
        sender = RecoveringSender(env)  # never healed
        queue = RetryQueue(env, sender, dlq)
        envelope = SoapEnvelope.request("http://svc", "urn:op:x", Element("q"))
        self.exhaust(env, queue, envelope)

        completions = dlq.replay(queue)
        assert len(completions) == 1
        env.run()  # the failure is defused; the sim must finish cleanly
        assert len(dlq) == 1  # exhausted again, parked again
        assert dlq.replayed == 1

    def test_replay_selected_entries_only(self, env):
        dlq = DeadLetterQueue()
        sender = RecoveringSender(env)
        queue = RetryQueue(env, sender, dlq)
        first = SoapEnvelope.request("http://svc", "urn:op:x", Element("q"))
        second = SoapEnvelope.request("http://svc", "urn:op:x", Element("q"))
        self.exhaust(env, queue, first)
        self.exhaust(env, queue, second)
        assert len(dlq) == 2

        sender.healed = True
        chosen = [entry for entry in dlq.entries if entry.envelope is second]
        completions = dlq.replay(queue, entries=chosen)
        assert len(completions) == 1
        env.run(env.process(_wait(env.all_of(completions))))
        assert len(dlq) == 1 and dlq.entries[0].envelope is first
        assert sender.delivered[0].addressing.message_id == second.addressing.message_id

    def test_replay_same_entry_requested_twice_replays_once(self, env):
        dlq = DeadLetterQueue()
        sender = RecoveringSender(env)
        queue = RetryQueue(env, sender, dlq)
        envelope = SoapEnvelope.request("http://svc", "urn:op:x", Element("q"))
        self.exhaust(env, queue, envelope)
        entry = dlq.entries[0]

        sender.healed = True
        # Regression: selecting the same dead letter twice (easy from an
        # operator console) crashed replay on the second list removal.
        completions = dlq.replay(queue, entries=[entry, entry])
        assert len(completions) == 1
        env.run(env.process(_wait(env.all_of(completions))))
        assert len(dlq) == 0
        assert dlq.replayed == 1
        assert len(sender.delivered) == 1

    def test_replay_matches_value_equal_entries_by_identity_first(self, env):
        from repro.wsbus.retry import DeadLetterEntry

        dlq = DeadLetterQueue()
        sender = RecoveringSender(env)
        queue = RetryQueue(env, sender, dlq)
        envelope = SoapEnvelope.request("http://svc", "urn:op:x", Element("q"))
        first = DeadLetterEntry(1.0, envelope, "x", "http://svc", 2, "down")
        twin = DeadLetterEntry(1.0, envelope, "x", "http://svc", 2, "down")
        assert first == twin and first is not twin
        dlq.add(first)
        dlq.add(twin)

        sender.healed = True
        completions = dlq.replay(queue, entries=[twin])
        assert len(completions) == 1
        # Identity wins over value equality: the requested twin leaves the
        # queue, the equal-but-distinct first entry stays put.
        assert dlq.entries == [first] and dlq.entries[0] is first
        env.run(env.process(_wait(env.all_of(completions))))
        assert dlq.replayed == 1


# ---------------------------------------------------------------------------
# Bus integration: the wired subsystem
# ---------------------------------------------------------------------------


def resilience_document(
    breaker=True, shedding_max_inflight=None, vep_bulkhead=None, adaptive=False
):
    document = PolicyDocument("test-resilience")
    actions = []
    if breaker:
        actions.append(
            CircuitBreakerAction(
                consecutive_failures=2, open_seconds=10.0, half_open_probes=1,
                failure_rate_threshold=1.0, min_calls=10_000,
            )
        )
    if adaptive:
        actions.append(
            AdaptiveTimeoutAction(multiplier=3.0, min_seconds=0.05, max_seconds=1.0)
        )
    if actions:
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="endpoint-resilience",
                triggers=("resilience.configure",),
                scope=PolicyScope(endpoint="http://svc/*"),
                actions=tuple(actions),
                priority=10,
                adaptation_type="prevention",
            )
        )
    if vep_bulkhead is not None:
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="vep-bulkhead",
                triggers=("resilience.configure",),
                scope=PolicyScope(service_type="Echo"),
                actions=(
                    BulkheadAction(
                        max_concurrent=vep_bulkhead[0],
                        max_queue=vep_bulkhead[1],
                        applies_to="vep",
                    ),
                ),
                priority=20,
                adaptation_type="prevention",
            )
        )
    if shedding_max_inflight is not None:
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="shed",
                triggers=("resilience.configure",),
                actions=(LoadSheddingAction(max_inflight=shedding_max_inflight),),
                priority=30,
                adaptation_type="prevention",
            )
        )
    return document


def recovery_document():
    document = PolicyDocument("test-recovery")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="failover",
            triggers=("fault.*",),
            actions=(SubstituteAction(strategy="round_robin"),),
            priority=10,
        )
    )
    return document


def deploy_echoes(env, container, names=("a", "b", "c")):
    for name in names:
        container.deploy(EchoService(env, f"echo-{name}", f"http://svc/{name}"))


def call(env, network, address, timeout=60.0):
    invoker = Invoker(env, network, caller="client")

    def client():
        payload = ECHO_CONTRACT.operation("echo").input.build(text="hi")
        response = yield from invoker.invoke(address, "echo", payload, timeout=timeout)
        return response.body.child_text("text")

    return run_process(env, client())


class TestBusIntegration:
    def test_inactive_without_policies(self, env, network, container):
        deploy_echoes(env, container)
        bus = WsBus(env, network, repository=PolicyRepository(), member_timeout=5.0)
        assert not bus.resilience.active
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        assert call(env, network, vep.address) == "hi@echo-a"
        assert "resilience" not in bus.stats_summary()

    def test_breaker_quarantines_and_recovers(self, env, network, container):
        deploy_echoes(env, container)
        repository = PolicyRepository()
        repository.load(resilience_document())
        repository.load(recovery_document())
        metrics = MetricsRegistry()
        bus = WsBus(
            env, network, repository=repository, member_timeout=5.0, metrics=metrics
        )
        assert bus.resilience.active
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=[f"http://svc/{n}" for n in "abc"],
            selection_strategy="round_robin",
        )
        network.endpoint("http://svc/a").available = False
        # Drive enough traffic to trip a's breaker (2 consecutive failures);
        # failover keeps the client whole throughout.
        for _ in range(6):
            assert call(env, network, vep.address).startswith("hi@echo-")
        assert bus.resilience.breaker_states()["http://svc/a"] == "open"
        assert metrics.snapshot()["counters"]["wsbus.resilience.breaker.opened"] == 1

        # While open, selection never offers a: all answers come from b/c.
        answers = {call(env, network, vep.address) for _ in range(4)}
        assert answers == {"hi@echo-b", "hi@echo-c"}
        assert metrics.snapshot()["counters"]["wsbus.resilience.breaker.skipped"] > 0

        # Heal the endpoint, let the open interval elapse, and the next
        # round of traffic probes it back to closed.
        network.endpoint("http://svc/a").available = True
        run_process(env, _wait(env.timeout(11.0)))
        answers = [call(env, network, vep.address) for _ in range(6)]
        assert "hi@echo-a" in answers
        assert bus.resilience.breaker_states()["http://svc/a"] == "closed"
        log = bus.resilience.transition_log()
        states = [(frm, to) for _, _, frm, to in log]
        assert states == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed")
        ]
        summary = bus.stats_summary()["resilience"]
        assert summary["breaker_transitions"] == 3

    def test_open_breaker_fails_fast_without_selection(self, env, network, container):
        """A direct send to a tripped endpoint gets the fail-fast fault."""
        deploy_echoes(env, container)
        repository = PolicyRepository()
        repository.load(resilience_document())
        bus = WsBus(env, network, repository=repository, member_timeout=5.0)
        breaker = bus.resilience.breaker_for("http://svc/a")
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state.value == "open"
        fault = bus.resilience.breaker_rejection("http://svc/a")
        assert fault is not None
        assert fault.code is FaultCode.SERVICE_UNAVAILABLE
        assert fault.source == "wsbus-resilience"

    def test_vep_shedding_rejects_excess_load(self, env, network, container):
        container.deploy(SlowEchoService(env, "slow", "http://svc/slow", delay=2.0))
        repository = PolicyRepository()
        repository.load(resilience_document(breaker=False, shedding_max_inflight=1))
        metrics = MetricsRegistry()
        bus = WsBus(
            env, network, repository=repository, member_timeout=30.0, metrics=metrics
        )
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/slow"])
        invoker = Invoker(env, network, caller="client")
        outcomes = []

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="hi")
            try:
                yield from invoker.invoke(vep.address, "echo", payload, timeout=30.0)
                outcomes.append("ok")
            except SoapFaultError as error:
                outcomes.append(error.fault.reason)

        for _ in range(3):
            env.process(client())
        env.run()
        assert outcomes.count("ok") == 1
        assert sum("shedding load" in outcome for outcome in outcomes) == 2
        assert vep.stats.shed == 2
        counters = metrics.snapshot()["counters"]
        assert counters["wsbus.resilience.shed"] == 2
        assert counters["wsbus.vep.shed"] == 2

    def test_vep_bulkhead_queues_and_rejects(self, env, network, container):
        container.deploy(SlowEchoService(env, "slow", "http://svc/slow", delay=1.0))
        repository = PolicyRepository()
        repository.load(resilience_document(breaker=False, vep_bulkhead=(1, 1)))
        bus = WsBus(env, network, repository=repository, member_timeout=30.0)
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/slow"])
        invoker = Invoker(env, network, caller="client")
        outcomes = []

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="hi")
            try:
                yield from invoker.invoke(vep.address, "echo", payload, timeout=30.0)
                outcomes.append("ok")
            except SoapFaultError as error:
                outcomes.append(error.fault.reason)

        for _ in range(3):
            env.process(client())
        env.run()
        # 1 admitted, 1 queued (runs after the first releases), 1 rejected.
        assert outcomes.count("ok") == 2
        assert sum("bulkhead" in outcome for outcome in outcomes) == 1
        summary = bus.stats_summary()["resilience"]
        assert summary["bulkheads"]["vep:echo"]["rejected"] == 1

    def test_adaptive_timeout_tracks_observed_latency(self, env, network, container):
        deploy_echoes(env, container, names=("a",))
        repository = PolicyRepository()
        repository.load(resilience_document(breaker=False, adaptive=True))
        bus = WsBus(env, network, repository=repository, member_timeout=20.0)
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        # Cold start: no samples yet, the fixed member timeout stands.
        assert bus.resilience.timeout_for("http://svc/a", 20.0) == 20.0
        for _ in range(6):
            call(env, network, vep.address)
        derived = bus.resilience.timeout_for("http://svc/a", 20.0)
        assert derived < 20.0  # echoes answer in milliseconds
        assert derived >= 0.05  # clamped to the configured floor


# ---------------------------------------------------------------------------
# Broadcast with every member faulting (satellite 3)
# ---------------------------------------------------------------------------


class TestBroadcastAllMembersFault:
    def test_fault_surfaced_dead_lettered_and_traced(self, env, network, container):
        deploy_echoes(env, container, names=("a", "b"))
        tracer = Tracer()
        exporter = tracer.add_exporter(InMemoryExporter())
        bus = WsBus(
            env, network, repository=PolicyRepository(),
            member_timeout=5.0, tracer=tracer,
        )
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=["http://svc/a", "http://svc/b"],
            broadcast=True,
        )
        network.endpoint("http://svc/a").available = False
        network.endpoint("http://svc/b").available = False

        with pytest.raises(SoapFaultError) as excinfo:
            call(env, network, vep.address)
        assert excinfo.value.fault.code is FaultCode.SERVICE_UNAVAILABLE

        # The lost request is parked for operators (and replay).
        assert len(bus.dead_letters) == 1
        entry = bus.dead_letters.entries[0]
        assert "broadcast" in entry.reason
        assert entry.attempts_made == 2
        assert bus.stats_summary()["dead_letters"] == 1

        # The trace shows the failed mediation and both member attempts.
        handle_spans = exporter.find(name="vep.handle")
        assert len(handle_spans) == 1
        assert handle_spans[0].status.startswith("fault:")
        send_spans = exporter.find(name="wsbus.send")
        assert len(send_spans) == 2
        assert all(span.status.startswith("fault:") for span in send_spans)

    def test_quarantined_members_excluded_from_broadcast(self, env, network, container):
        deploy_echoes(env, container, names=("a", "b"))
        repository = PolicyRepository()
        repository.load(resilience_document())
        bus = WsBus(env, network, repository=repository, member_timeout=5.0)
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=["http://svc/a", "http://svc/b"],
            broadcast=True,
        )
        breaker = bus.resilience.breaker_for("http://svc/a")
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state.value == "open"
        assert bus.selection.broadcast_targets(vep.members) == ["http://svc/b"]


# ---------------------------------------------------------------------------
# Dynamic reconfiguration through the adaptation pathway
# ---------------------------------------------------------------------------


class TestDynamicResilience:
    def test_apply_action_activates_and_wins(self, env, network, container):
        deploy_echoes(env, container, names=("a",))
        bus = WsBus(env, network, repository=PolicyRepository(), member_timeout=5.0)
        assert not bus.resilience.active
        applied = bus.resilience.apply_action(
            CircuitBreakerAction(consecutive_failures=1, open_seconds=5.0),
            scope=PolicyScope(endpoint="http://svc/*"),
        )
        assert applied
        assert bus.resilience.active
        breaker = bus.resilience.breaker_for("http://svc/a")
        breaker.record_failure()
        assert breaker.state.value == "open"

    def test_bus_replay_dead_letters(self, env, network, container):
        deploy_echoes(env, container, names=("a",))
        repository = PolicyRepository()
        document = PolicyDocument("retry-only")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="retry",
                triggers=("fault.*",),
                actions=(RetryAction(max_retries=1, delay_seconds=0.1),),
                priority=10,
            )
        )
        repository.load(document)
        bus = WsBus(env, network, repository=repository, member_timeout=5.0)
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        network.endpoint("http://svc/a").available = False
        invoker = Invoker(env, network, caller="client")

        def failing_client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="hi")
            with pytest.raises(SoapFaultError):
                yield from invoker.invoke(vep.address, "echo", payload, timeout=30.0)

        run_process(env, failing_client())
        assert bus.stats_summary()["dead_letters"] == 1

        network.endpoint("http://svc/a").available = True
        completions = bus.replay_dead_letters()
        assert len(completions) == 1
        env.run()
        summary = bus.stats_summary()
        assert summary["dead_letters"] == 0
        assert summary["retry_queue"]["replayed"] == 1
