"""Service contract model and message validation.

A :class:`ServiceContract` plays the role of an abstract WSDL: it names the
service type, its operations, and the shape of each operation's input and
output messages. Functionally-equivalent services (the members of a wsBus
Virtual End Point) share a contract, which is what lets the VEP "expose an
abstract WSDL for accessing the configured services".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from weakref import WeakKeyDictionary

from repro.soap import FaultCode
from repro.xmlutils import Element, QName

__all__ = [
    "ContractViolation",
    "MessageSchema",
    "Operation",
    "PartSchema",
    "ServiceContract",
]


class ContractViolation(Exception):
    """A message failed validation against its contract."""

    def __init__(self, message: str, violations: list[str] | None = None) -> None:
        super().__init__(message)
        self.violations = violations or [message]


_CASTS = {
    "string": str,
    "int": int,
    "float": float,
    "bool": lambda v: v in ("true", "1", "True"),
}


@dataclass(frozen=True)
class PartSchema:
    """One child element of an operation message.

    ``kind`` is one of ``string``, ``int``, ``float``, ``bool`` — enough to
    type the case studies' payloads and to catch value-mismatch faults.
    """

    name: str
    kind: str = "string"
    required: bool = True

    def validate(self, parent: Element) -> list[str]:
        child = parent.find(self.name)
        if child is None:
            return [f"missing part {self.name!r}"] if self.required else []
        if self.kind == "string":
            return []
        text = child.text or ""
        try:
            _CASTS[self.kind](text)
        except (KeyError, ValueError):
            return [f"part {self.name!r} is not a valid {self.kind}: {text!r}"]
        return []


@dataclass(frozen=True)
class MessageSchema:
    """The shape of one message: a root element name plus typed parts."""

    element_name: str
    parts: tuple[PartSchema, ...] = ()

    def validate(self, payload: Element) -> list[str]:
        violations: list[str] = []
        if payload.name.local != self.element_name:
            violations.append(
                f"expected root element {self.element_name!r}, got {payload.name.local!r}"
            )
            return violations
        for part in self.parts:
            violations.extend(part.validate(payload))
        return violations

    def build(self, namespace: str = "", **parts: object) -> Element:
        """Construct a conforming payload from keyword parts."""
        root = Element(QName(namespace, self.element_name))
        known = {part.name for part in self.parts}
        for name, value in parts.items():
            if name not in known:
                raise ContractViolation(f"unknown part {name!r} for {self.element_name!r}")
            text = "true" if value is True else "false" if value is False else str(value)
            root.add(name, text=text)
        missing = [
            part.name for part in self.parts if part.required and part.name not in parts
        ]
        if missing:
            raise ContractViolation(f"missing required parts {missing} for {self.element_name!r}")
        return root

    def build_interned(self, namespace: str = "", **parts: object) -> Element:
        """Like :meth:`build`, but returns a shared, memoized payload tree.

        Workloads and services that emit the same payload thousands of times
        (every ``getCatalog`` request, every catalog reply) get one element
        tree back for all of them, which lets the SOAP layer's per-body size
        memo collapse serialization to once per addressing shape. The
        returned tree is shared: callers must treat it as immutable and
        follow the middleware's copy-on-write discipline (replace bodies,
        never edit them in place — exactly what the envelope fast-path
        ``copy`` already requires). Unhashable part values fall back to a
        fresh :meth:`build`.
        """
        try:
            return _build_interned(self, namespace, tuple(parts.items()))
        except TypeError:
            return self.build(namespace, **parts)


#: Payload trees that already validated cleanly, per message schema (matched
#: by identity). Interned payloads repeat for thousands of requests, so the
#: per-request contract walk runs once per shared tree. Only clean results
#: are cached — violations always re-validate — and entries die with the
#: payload. Relies on the middleware-wide copy-on-write discipline for
#: shared trees.
_VALIDATED_OK: "WeakKeyDictionary[Element, list[MessageSchema]]" = WeakKeyDictionary()


@lru_cache(maxsize=4096)
def _build_interned(
    schema: MessageSchema, namespace: str, parts: tuple[tuple[str, object], ...]
) -> Element:
    # ``parts`` preserves keyword order, so a cache hit returns a tree with
    # the same child order ``build`` would have produced for that call.
    return schema.build(namespace, **dict(parts))


@dataclass(frozen=True)
class Operation:
    """A request/response operation with declared faults."""

    name: str
    input: MessageSchema
    output: MessageSchema
    declared_faults: tuple[FaultCode, ...] = (
        FaultCode.SERVER,
        FaultCode.SERVICE_FAILURE,
    )

    def soap_action(self, service_type: str) -> str:
        return f"urn:{service_type}:{self.name}"


@dataclass(frozen=True)
class ServiceContract:
    """An abstract service interface: a service type plus its operations."""

    service_type: str
    operations: tuple[Operation, ...] = ()
    namespace: str = ""

    def operation(self, name: str) -> Operation:
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise KeyError(f"contract {self.service_type!r} has no operation {name!r}")

    def has_operation(self, name: str) -> bool:
        return any(operation.name == name for operation in self.operations)

    def operation_for_action(self, action: str) -> Operation | None:
        """Resolve a WSA action URI back to an operation."""
        for operation in self.operations:
            if operation.soap_action(self.service_type) == action:
                return operation
        return None

    def validate_request(self, operation_name: str, payload: Element) -> None:
        schema = self.operation(operation_name).input
        validated = _VALIDATED_OK.get(payload)
        if validated is not None and any(entry is schema for entry in validated):
            return
        violations = schema.validate(payload)
        if violations:
            raise ContractViolation(
                f"request to {self.service_type}.{operation_name} violates contract",
                violations,
            )
        if validated is None:
            _VALIDATED_OK[payload] = [schema]
        else:
            validated.append(schema)

    def validate_response(self, operation_name: str, payload: Element) -> None:
        violations = self.operation(operation_name).output.validate(payload)
        if violations:
            raise ContractViolation(
                f"response from {self.service_type}.{operation_name} violates contract",
                violations,
            )
