"""Ablation: the resilience subsystem under a fault storm.

Both arms run the identical workload against the identical storm (QoS
degradation on Retailer A, latency spikes plus application faults on B,
flapping on D, C healthy) with the same recovery policies. The only
difference is whether the resilience policy document is loaded — circuit
breakers, bulkheads, adaptive timeouts, and load shedding. With it, slow
members fail fast and get quarantined, so failover lands on the healthy
retailer inside the client's timeout budget; without it, every request
routed to a degraded member burns the full member timeout and often the
whole client budget.

RTT statistics cover *all* requests, failures included — a request that
times out after 8 s still cost 8 s.
"""

from __future__ import annotations

from conftest import run_fault_storm
from repro.metrics import Table

STORM_SEED = 7


def sweep_resilience():
    return {
        "off": run_fault_storm(seed=STORM_SEED, resilience=False),
        "on": run_fault_storm(seed=STORM_SEED, resilience=True),
    }


def test_resilience_ablation(benchmark):
    results = benchmark.pedantic(sweep_resilience, rounds=1, iterations=1)
    off, on = results["off"], results["on"]

    table = Table(
        ["Resilience", "Delivered", "Reliability", "p99 RTT (s)", "Breaker transitions"],
        title="Ablation — resilience subsystem under fault storm",
    )
    for result in (off, on):
        table.add_row(
            [
                "on" if result.resilience else "off",
                f"{result.delivered}/{result.total_requests}",
                f"{result.reliability:.4f}",
                f"{result.p99_rtt:.3f}",
                len(result.breaker_transitions),
            ]
        )
    print()
    print(table.render())

    # The acceptance bar: strictly higher delivered reliability AND a
    # strictly lower p99 RTT with resilience on, same seed and storm.
    assert on.reliability > off.reliability
    assert on.p99_rtt < off.p99_rtt

    # The resilience-off arm never touches the subsystem.
    assert off.breaker_transitions == []
    assert "wsbus.resilience.breaker.opened" not in off.metrics["counters"]

    # Breaker activity is visible both in the transition log and in the
    # exported metrics, and the two agree.
    assert on.breaker_transitions, "storm should trip at least one breaker"
    opened = sum(1 for *_ignored, to_state in on.breaker_transitions if to_state == "open")
    counters = on.metrics["counters"]
    assert counters["wsbus.resilience.breaker.opened"] == opened
    closed = sum(1 for *_ignored, to_state in on.breaker_transitions if to_state == "closed")
    if closed:
        assert counters["wsbus.resilience.breaker.closed"] == closed
    # Open breakers actually diverted selection away from sick members.
    assert counters.get("wsbus.resilience.breaker.skipped", 0) > 0


def test_resilience_storm_is_deterministic(benchmark):
    """Same seed → byte-identical breaker transition log and results."""

    def run_twice():
        return (
            run_fault_storm(seed=STORM_SEED, resilience=True),
            run_fault_storm(seed=STORM_SEED, resilience=True),
        )

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert first.breaker_transitions == second.breaker_transitions
    assert first.reliability == second.reliability
    assert first.rtt_stats == second.rtt_stats
    assert first.metrics["counters"] == second.metrics["counters"]
