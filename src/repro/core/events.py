"""MASC events: what flows from sensors to the decision maker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.soap import SoapEnvelope, SoapFault

__all__ = ["MASCEvent"]


@dataclass
class MASCEvent:
    """A detected situation needing a policy decision.

    ``name`` follows the dotted convention used by policy triggers:
    ``process.instance_created``, ``message.request``, ``fault.Timeout``,
    or custom events emitted by monitoring policies (``trade.international``).

    ``context`` carries "all the data required for recovery (i.e.,
    ProcessInstanceID of the process instance to be adapted, and a Context
    Collection that contains relevant data that could be needed during the
    adaptation)".
    """

    name: str
    time: float
    service_type: str | None = None
    endpoint: str | None = None
    operation: str | None = None
    process: str | None = None
    activity: str | None = None
    process_instance_id: str | None = None
    envelope: SoapEnvelope | None = None
    fault: SoapFault | None = None
    context: dict[str, Any] = field(default_factory=dict)
    #: The monitoring policy that raised this event, if any.
    raised_by: str | None = None
    #: The trace span under which this event was emitted (or None), so
    #: process-layer enactment spans parent under the originating bus span.
    trace_parent: Any = None

    def subject(self) -> dict[str, str | None]:
        """The scope-matching view of this event."""
        return {
            "service_type": self.service_type,
            "endpoint": self.endpoint,
            "operation": self.operation,
            "process": self.process,
            "activity": self.activity,
        }

    def subject_key(self) -> str:
        """Stable key for per-subject state tracking."""
        if self.process_instance_id:
            return f"instance:{self.process_instance_id}"
        if self.endpoint:
            return f"endpoint:{self.endpoint}"
        if self.service_type:
            return f"type:{self.service_type}"
        return "global"

    @classmethod
    def for_fault(cls, time: float, fault: SoapFault, **kwargs) -> "MASCEvent":
        """A fault event named ``fault.<Code>`` (the Monitoring Service's
        'assign a meaningful fault type to the violation event')."""
        return cls(name=f"fault.{fault.code.value}", time=time, fault=fault, **kwargs)
