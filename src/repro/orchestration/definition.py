"""Process definitions.

A :class:`ProcessDefinition` is the *class* of a composition (the paper's
"abstract process"): a named, validated activity tree plus declared
variables. Instances execute a private copy of the tree so that per-instance
dynamic customization never mutates the class — the paper's first adaptation
dimension ("whether the complete class of compositions is changed or whether
only a particular composition instance is changed"; MASC changes instances).
"""

from __future__ import annotations

from typing import Any

from repro.orchestration.activities import Activity
from repro.orchestration.errors import DefinitionError

__all__ = ["ProcessDefinition"]


class ProcessDefinition:
    """A named, validated activity tree."""

    def __init__(
        self,
        name: str,
        root: Activity,
        initial_variables: dict[str, Any] | None = None,
    ) -> None:
        if not name:
            raise DefinitionError("process definition name must be non-empty")
        self.name = name
        self.root = root
        self.initial_variables = dict(initial_variables or {})
        self.validate()

    def validate(self) -> None:
        """Check structural invariants (currently: unique activity names)."""
        seen: set[str] = set()
        for activity in self.root.iter_tree():
            if activity.name in seen:
                raise DefinitionError(
                    f"duplicate activity name {activity.name!r} in process {self.name!r}"
                )
            seen.add(activity.name)

    def find(self, activity_name: str) -> Activity | None:
        """The activity with the given name, or None."""
        for activity in self.root.iter_tree():
            if activity.name == activity_name:
                return activity
        return None

    def activity_names(self) -> list[str]:
        return [activity.name for activity in self.root.iter_tree()]

    def copy_tree(self) -> Activity:
        """A deep copy of the activity tree for a new instance."""
        return self.root.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcessDefinition {self.name!r} activities={len(self.activity_names())}>"
