"""Process-pool sharded experiment runner (v2).

The Table 1 / Figure 5 / fault-storm matrices are embarrassingly parallel:
every ``(configuration, seed)`` cell builds its own seeded deployment and
simulation environment, so cells share no state and can run in separate
worker processes. This module fans cells out across a process pool and
merges the results in an order fixed by the *cell key* — never by
completion order — so ``--jobs 4`` produces per-seed results byte-identical
to ``--jobs 1``.

Three things make ``jobs=N`` actually beat ``jobs=1`` (v1 lost to serial —
see the postmortem in ``docs/performance.md``):

- **A persistent pool.** Workers are forked once and reused across every
  subsequent :func:`run_cells` call with the same worker count, so pool
  start-up (fork + interpreter bootstrap, or spawn + full re-import) is
  paid once per process lifetime instead of once per matrix.
- **Cell chunking.** Cells are grouped into chunks submitted as single
  pool tasks, amortizing the per-task submit/pickle/wakeup round trip.
  ``chunk_size=None`` picks a size that still load-balances the matrix.
- **Compact results.** A chunk ships back a plain positional list of
  ``(ok, value)`` pairs — no keys, no Cell objects — and the merge
  re-attaches keys from the submit-side order.

Design rules that keep the merge deterministic:

- A :class:`Cell` is ``(key, runner, kwargs)`` where ``runner`` is a
  module-level function (picklable by reference) returning plain data.
- :func:`run_cells` executes cells (inline for ``jobs <= 1``; otherwise in
  a pool) and returns ``{key: result}`` ordered by sorted key. Execution
  order is irrelevant: cells are seeded and isolated.
- A crashing shard never hangs or silently drops its cell: every failure
  is collected and reported per-key through :exc:`ShardError`. A dead
  worker (``BrokenProcessPool``) additionally discards the cached pool so
  the next run starts from healthy workers.

On platforms without ``fork`` the runner falls back to ``spawn`` workers
(slower start-up, same results) with a warning; if no pool can be built at
all it degrades to an inline serial run rather than crashing.

Tracing (``--trace``) records spans in-process, so a non-None ``tracer``
forces the calling harness back to ``jobs=1``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.experiments.fleet import run_fleet_storm
from repro.experiments.harness import (
    run_direct_configuration,
    run_fault_storm,
    run_rtt_point,
    run_vep_configuration,
)

__all__ = [
    "Cell",
    "ShardError",
    "figure5_cells",
    "figure5_point_cell",
    "fleet_cells",
    "fleet_storm_cell",
    "run_cells",
    "shutdown_pool",
    "storm_cell",
    "storm_cells",
    "table1_cells",
    "table1_direct_cell",
    "table1_vep_cell",
]


@dataclass(frozen=True)
class Cell:
    """One independent experiment shard.

    ``key`` orders the merge and names the cell in failure reports;
    ``runner`` must be a module-level callable returning picklable data.
    """

    key: tuple
    runner: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)


class ShardError(RuntimeError):
    """One or more experiment shards failed.

    ``failures`` maps each failed cell key to the exception it raised (or
    the pool-level error, e.g. ``BrokenProcessPool``, if the worker died).
    """

    def __init__(self, failures: dict[tuple, BaseException]) -> None:
        self.failures = dict(failures)
        detail = "; ".join(
            f"{key}: {type(error).__name__}: {error}"
            for key, error in sorted(self.failures.items(), key=lambda item: item[0])
        )
        super().__init__(f"{len(self.failures)} experiment shard(s) failed: {detail}")


# -- the persistent pool ---------------------------------------------------------

_pool: ProcessPoolExecutor | None = None
_pool_signature: tuple[str, int] | None = None
_warned_no_fork = False


def _start_method() -> str:
    """Prefer fork (workers inherit the imported simulation stack)."""
    global _warned_no_fork
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    if not _warned_no_fork:
        _warned_no_fork = True
        warnings.warn(
            "the 'fork' start method is unavailable on this platform; "
            "falling back to 'spawn' workers (each worker re-imports the "
            "simulation stack, so pool start-up is slower — results are "
            "unchanged)",
            RuntimeWarning,
            stacklevel=4,
        )
    return "spawn"


def _get_pool(workers: int) -> ProcessPoolExecutor | None:
    """The shared pool, (re)built on demand; ``None`` → run serially.

    The pool persists across :func:`run_cells` calls so fork/spawn and
    worker bootstrap are paid once, not once per experiment matrix. A new
    worker count (or start method) replaces the cached pool.
    """
    global _pool, _pool_signature
    method = _start_method()
    signature = (method, workers)
    if _pool is not None and _pool_signature == signature:
        return _pool
    shutdown_pool()
    try:
        _pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context(method)
        )
    except OSError as error:
        warnings.warn(
            f"cannot start a worker pool ({type(error).__name__}: {error}); "
            "running experiment cells serially in this process",
            RuntimeWarning,
            stacklevel=3,
        )
        _pool = None
        _pool_signature = None
        return None
    _pool_signature = signature
    return _pool


def shutdown_pool() -> None:
    """Dispose of the cached worker pool (idempotent).

    Called automatically at interpreter exit and after a worker death;
    long-lived embedders can call it to release the worker processes.
    """
    global _pool, _pool_signature
    pool, _pool, _pool_signature = _pool, None, None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pool)


# -- chunked execution -----------------------------------------------------------


def _run_chunk(chunk: list[tuple[Callable[..., Any], dict]]) -> list[tuple]:
    """Worker-side: run a batch of cells; compact positional results.

    Returns one ``(ok, value)`` pair per ``(runner, kwargs)`` entry, in
    submission order — keys never travel to the worker and back, the
    caller re-attaches them positionally. A failing cell is captured as
    ``(False, error)`` so its chunk-mates still report results.
    """
    out: list[tuple] = []
    for runner, kwargs in chunk:
        try:
            out.append((True, runner(**kwargs)))
        except Exception as error:  # noqa: BLE001 - reported per cell
            out.append((False, error))
    return out


def _chunked(cells: list[Cell], workers: int, chunk_size: int | None) -> list[list[Cell]]:
    """Split sorted cells into submission batches.

    The automatic size aims for ~4 chunks per worker: large enough to
    amortize the per-task round trip, small enough that one slow cell
    does not leave workers idle at the tail of the matrix.
    """
    if chunk_size is None:
        chunk_size = max(1, -(-len(cells) // (workers * 4)))
    chunk_size = max(1, chunk_size)
    return [cells[i : i + chunk_size] for i in range(0, len(cells), chunk_size)]


def run_cells(
    cells: list[Cell], jobs: int = 1, chunk_size: int | None = None
) -> dict[tuple, Any]:
    """Execute every cell; return ``{key: result}`` in sorted-key order.

    ``jobs <= 1`` runs inline in the calling process (no pool, no pickling);
    ``jobs > 1`` fans chunks of cells out over the persistent process pool.
    ``chunk_size`` fixes how many cells ride in one pool task (default:
    automatic, ~4 chunks per worker). Raises :exc:`ShardError` naming every
    failed cell if any shard raised.
    """
    ordered = sorted(cells, key=lambda cell: cell.key)
    keys = [cell.key for cell in ordered]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate cell keys in {keys}")
    results: dict[tuple, Any] = {}
    failures: dict[tuple, BaseException] = {}
    pool = None
    if jobs > 1 and len(ordered) > 1:
        pool = _get_pool(min(jobs, len(ordered)))
    if pool is None:
        for cell in ordered:
            try:
                results[cell.key] = cell.runner(**cell.kwargs)
            except Exception as error:  # noqa: BLE001 - reported per cell
                failures[cell.key] = error
    else:
        chunks = _chunked(ordered, min(jobs, len(ordered)), chunk_size)
        broken = False
        futures = []
        for chunk in chunks:
            try:
                # submit can itself raise BrokenProcessPool: a worker dying
                # on an earlier chunk poisons the executor mid-submission.
                future = pool.submit(
                    _run_chunk, [(cell.runner, cell.kwargs) for cell in chunk]
                )
            except Exception as error:  # noqa: BLE001 - attributed per cell
                broken = broken or isinstance(error, BrokenProcessPool)
                for cell in chunk:
                    failures[cell.key] = error
                continue
            futures.append((chunk, future))
        for chunk, future in futures:
            try:
                for cell, (ok, value) in zip(chunk, future.result()):
                    if ok:
                        results[cell.key] = value
                    else:
                        failures[cell.key] = value
            except Exception as error:  # noqa: BLE001 - includes BrokenProcessPool
                broken = broken or isinstance(error, BrokenProcessPool)
                for cell in chunk:
                    failures[cell.key] = error
        if broken:
            # A dead worker poisons the whole executor; drop it so the
            # next run_cells call starts from healthy workers.
            shutdown_pool()
    if failures:
        raise ShardError(failures)
    return {key: results[key] for key in keys}


# -- cell runners (module-level: picklable by reference) ------------------------


def table1_direct_cell(retailer: str, seed: int, clients: int, requests: int):
    """One direct-configuration Table 1 cell."""
    return run_direct_configuration(retailer, seed, clients=clients, requests=requests)


def table1_vep_cell(seed: int, clients: int, requests: int, tracer=None):
    """One wsBus-VEP Table 1 cell (row only; the bus stays in the worker)."""
    row, _bus, _result = run_vep_configuration(
        seed, clients=clients, requests=requests, tracer=tracer
    )
    return row


def figure5_point_cell(
    operation: str, padding: int, through_bus: bool, requests: int, tracer=None
):
    """One Figure 5 cell: the mean RTT at one request size."""
    rtt, _result = run_rtt_point(
        operation, padding, through_bus=through_bus, requests=requests, tracer=tracer
    )
    return rtt


def storm_cell(
    seed: int, resilience: bool, clients: int, requests: int, tracer=None, slo: bool = False
):
    """One fault-storm arm; the (unpicklable) bus is stripped from the result."""
    result = run_fault_storm(
        seed=seed,
        resilience=resilience,
        clients=clients,
        requests=requests,
        tracer=tracer,
        slo=slo,
    )
    return replace(result, bus=None)


def fleet_storm_cell(
    seed: int,
    shards: int,
    partitions: int,
    clients_per_partition: int,
    requests: int,
    tracer=None,
):
    """One fleet-storm arm; the (unpicklable) fleet is stripped from the result."""
    result = run_fleet_storm(
        seed=seed,
        shards=shards,
        partitions=partitions,
        clients_per_partition=clients_per_partition,
        requests=requests,
        tracer=tracer,
    )
    return replace(result, fleet=None)


# -- matrix builders ------------------------------------------------------------


def table1_cells(
    seeds, clients: int, requests: int, tracer=None
) -> list[Cell]:
    """The full Table 1 matrix: 4 direct configurations + the VEP, per seed."""
    cells = []
    for retailer in ("A", "B", "C", "D"):
        for seed in seeds:
            cells.append(
                Cell(
                    (retailer, seed),
                    table1_direct_cell,
                    dict(retailer=retailer, seed=seed, clients=clients, requests=requests),
                )
            )
    for seed in seeds:
        kwargs = dict(seed=seed, clients=clients, requests=requests)
        if tracer is not None:
            kwargs["tracer"] = tracer
        cells.append(Cell(("VEP", seed), table1_vep_cell, kwargs))
    return cells


def figure5_cells(
    sizes_kb, operations, requests: int, tracer=None
) -> list[Cell]:
    """The Figure 5 sweep: (operation, size, direct|bus) cells."""
    cells = []
    for operation in operations:
        for size_kb in sizes_kb:
            padding = size_kb * 1024
            cells.append(
                Cell(
                    (operation, size_kb, "direct"),
                    figure5_point_cell,
                    dict(
                        operation=operation,
                        padding=padding,
                        through_bus=False,
                        requests=requests,
                    ),
                )
            )
            kwargs = dict(
                operation=operation, padding=padding, through_bus=True, requests=requests
            )
            if tracer is not None:
                kwargs["tracer"] = tracer
            cells.append(Cell((operation, size_kb, "bus"), figure5_point_cell, kwargs))
    return cells


def fleet_cells(
    seed: int,
    shards: int,
    partitions: int,
    clients_per_partition: int,
    requests: int,
    tracer=None,
) -> list[Cell]:
    """Both fleet-storm ablation arms (one bus vs ``shards`` buses)."""
    cells = []
    for arm_shards in (1, shards):
        kwargs = dict(
            seed=seed,
            shards=arm_shards,
            partitions=partitions,
            clients_per_partition=clients_per_partition,
            requests=requests,
        )
        if tracer is not None and arm_shards == shards:
            kwargs["tracer"] = tracer
        cells.append(Cell((seed, arm_shards), fleet_storm_cell, kwargs))
    return cells


def storm_cells(
    seed: int, clients: int, requests: int, tracer=None, slo: bool = False
) -> list[Cell]:
    """Both fault-storm ablation arms (resilience off / on)."""
    cells = []
    for resilience in (False, True):
        kwargs = dict(seed=seed, resilience=resilience, clients=clients, requests=requests)
        if tracer is not None and resilience:
            kwargs["tracer"] = tracer
        if slo and resilience:
            # The SLO loop rides the resilience arm only: its reaction
            # policy tightens breakers, which need the service active.
            kwargs["slo"] = True
        cells.append(Cell((seed, "on" if resilience else "off"), storm_cell, kwargs))
    return cells
