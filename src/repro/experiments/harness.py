"""Deployment + workload harnesses for the SCM experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.casestudies.scm import (
    RETAILER_CONTRACT,
    build_scm_deployment,
    logging_skip_policy_document,
    resilience_policy_document,
    retailer_recovery_policy_document,
)
from repro.metrics import describe, reliability_report
from repro.observability import MetricsRegistry
from repro.policy import PolicyRepository
from repro.workload import RequestPlan, WorkloadRunner
from repro.wsbus import WsBus

def catalog_plan(target, timeout=5.0, think=2.0, padding=0):
    return RequestPlan(
        target=target,
        operation="getCatalog",
        payload_factory=lambda c, i: RETAILER_CONTRACT.operation("getCatalog").input.build(),
        timeout=timeout,
        think_time_seconds=think,
        padding_bytes=padding,
    )


def order_plan(target, timeout=10.0, think=0.0, padding=0):
    return RequestPlan(
        target=target,
        operation="submitOrder",
        payload_factory=lambda c, i: RETAILER_CONTRACT.operation("submitOrder").input.build(
            orderId=f"o-{c}-{i}", items="TVx1,DVDx1", customerId=f"cust-{c}"
        ),
        timeout=timeout,
        think_time_seconds=think,
        padding_bytes=padding,
    )


@dataclass
class Table1Row:
    configuration: str
    failures_per_1000: float
    availability: float


def run_direct_configuration(
    retailer: str, seed: int, clients: int = 4, requests: int = 250
) -> Table1Row:
    """Direct point-to-point invocations of a single Retailer under the
    Table 1 fault mix."""
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_table1_mix()
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(deployment.retailers[retailer].address),
        clients=clients,
        requests_per_client=requests,
    )
    # Reliability comes from the request sample; availability is observed
    # over a much longer window (the injector keeps cycling after the
    # workload ends) so rare-outage retailers like C are not all-or-nothing.
    deployment.env.run(until=deployment.env.now + 50_000.0)
    deployment.availability_injector.finalize()
    log = deployment.availability_injector.logs[deployment.retailers[retailer].address]
    report = reliability_report(f"direct {retailer}", result.records)
    return Table1Row(
        configuration=f"Only Retailer {retailer} used by the client",
        failures_per_1000=report.failures_per_1000,
        availability=log.availability(deployment.env.now),
    )


def run_vep_configuration(
    seed: int,
    clients: int = 4,
    requests: int = 250,
    selection_strategy: str = "round_robin",
    broadcast: bool = False,
    max_retries: int = 3,
    retry_delay: float = 2.0,
    skip_logging_policy: bool = False,
    tracer=None,
):
    """All four Retailers behind one wsBus VEP, same fault mix.

    Returns (Table1Row, bus, workload_result). ``tracer`` (an
    :class:`~repro.observability.Tracer`) records the run's spans.
    """
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_table1_mix()
    if tracer is not None:
        tracer.rebind_clock(deployment.env)
    repository = PolicyRepository()
    repository.load(
        retailer_recovery_policy_document(
            max_retries=max_retries, retry_delay_seconds=retry_delay
        )
    )
    if skip_logging_policy:
        repository.load(logging_skip_policy_document())
    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        member_timeout=5.0,
        tracer=tracer,
    )
    vep = bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy=selection_strategy,
        broadcast=broadcast,
    )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(vep.address, timeout=60.0),
        clients=clients,
        requests_per_client=requests,
    )
    report = reliability_report("wsBus VEP", result.records)
    row = Table1Row(
        configuration="All 4 Retailer services exposed as 1 wsBus VEP",
        failures_per_1000=report.failures_per_1000,
        availability=report.availability,
    )
    return row, bus, result


@dataclass
class StormResult:
    """Outcome of one fault-storm run (resilience on or off)."""

    resilience: bool
    total_requests: int
    delivered: int
    reliability: float
    failures_per_1000: float
    #: RTT statistics over *all* requests, failures included — a request
    #: that burns the full client timeout before failing still cost that
    #: time, so excluding it would flatter the arm with more failures.
    rtt_stats: dict[str, float]
    breaker_transitions: list[tuple[float, str, str, str]]
    metrics: dict
    bus: WsBus

    @property
    def p99_rtt(self) -> float:
        return self.rtt_stats.get("p99", float("inf"))


def run_fault_storm(
    seed: int,
    resilience: bool,
    clients: int = 6,
    requests: int = 60,
    client_timeout: float = 8.0,
    tracer=None,
) -> StormResult:
    """All four Retailers behind one VEP under the fault storm.

    The only difference between the two arms is whether the resilience
    policy document is loaded: with ``resilience=False`` the bus's
    :class:`~repro.resilience.ResilienceService` stays inactive and every
    send follows the pre-resilience code path. Both arms share the same
    recovery policies (retry with jitter, then substitute) so the ablation
    isolates the breaker/bulkhead/adaptive-timeout/shedding contribution.
    """
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_fault_storm()
    if tracer is not None:
        tracer.rebind_clock(deployment.env)
    repository = PolicyRepository()
    repository.load(
        retailer_recovery_policy_document(
            max_retries=1,
            retry_delay_seconds=0.5,
            jitter_fraction=0.5,
            max_delay_seconds=2.0,
        )
    )
    if resilience:
        repository.load(resilience_policy_document())
    metrics = MetricsRegistry()
    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        random_source=deployment.random_source,
        member_timeout=5.0,
        tracer=tracer,
        metrics=metrics,
    )
    vep = bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy="round_robin",
    )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(vep.address, timeout=client_timeout, think=0.5),
        clients=clients,
        requests_per_client=requests,
    )
    report = reliability_report("fault storm", result.records)
    total = len(result.records)
    delivered = len(result.successes)
    return StormResult(
        resilience=resilience,
        total_requests=total,
        delivered=delivered,
        reliability=delivered / total if total else 0.0,
        failures_per_1000=report.failures_per_1000,
        rtt_stats=describe([record.duration for record in result.records]),
        breaker_transitions=bus.resilience.transition_log(),
        metrics=metrics.snapshot(),
        bus=bus,
    )


def run_rtt_point(
    operation: str,
    padding: int,
    through_bus: bool,
    seed: int = 21,
    clients: int = 2,
    requests: int = 150,
    tracer=None,
):
    """One Figure 5 data point: mean RTT at one request size.

    No fault injection — Figure 5 measures pure mediation overhead.
    """
    deployment = build_scm_deployment(seed=seed, log_events=False)
    target = deployment.retailers["C"].address
    if through_bus:
        if tracer is not None:
            tracer.rebind_clock(deployment.env)
        # Client-side deployment, as in the paper's Figure 5 setup: the
        # client reaches wsBus over loopback and wsBus crosses the LAN.
        bus = WsBus(
            deployment.env,
            deployment.network,
            repository=PolicyRepository(),
            registry=deployment.registry,
            member_timeout=30.0,
            colocated_with_clients=True,
            tracer=tracer,
        )
        vep = bus.create_vep(
            "retailers", RETAILER_CONTRACT, members=[target], selection_strategy="primary"
        )
        target = vep.address
    plan = (
        catalog_plan(target, timeout=30.0, think=0.0, padding=padding)
        if operation == "getCatalog"
        else order_plan(target, timeout=30.0, think=0.0, padding=padding)
    )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(plan, clients=clients, requests_per_client=requests)
    stats = result.rtt_stats()
    return stats["mean"], result
