"""A small namespace-aware element tree.

The tree is deliberately simpler than ``xml.etree``: qualified names are
:class:`~repro.xmlutils.qname.QName` objects rather than Clark-notation
strings, children know their parent (needed by XPath ``..`` steps and by the
policy engine when splicing variation fragments), and deep structural
equality is defined (needed by message-transformation tests).

Parsing and serialization bridge through ``xml.etree.ElementTree`` so the
wire format is real, interoperable XML.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections.abc import Iterable, Iterator

from repro.xmlutils.qname import QName

__all__ = ["Element", "XmlError", "parse_xml", "serialize_xml"]


class XmlError(Exception):
    """Raised for malformed XML or misuse of the element tree."""


class Element:
    """An XML element: qualified name, attributes, text, children."""

    def __init__(
        self,
        name: QName | str,
        attributes: dict[str, str] | None = None,
        text: str | None = None,
        children: Iterable["Element"] | None = None,
    ) -> None:
        self.name = name if isinstance(name, QName) else QName.parse(name)
        self.attributes: dict[str, str] = dict(attributes or {})
        self.text = text
        self.parent: Element | None = None
        self._children: list[Element] = []
        for child in children or ():
            self.append(child)

    # -- tree manipulation ---------------------------------------------------

    @property
    def children(self) -> tuple["Element", ...]:
        return tuple(self._children)

    def append(self, child: "Element") -> "Element":
        """Append ``child``, detaching it from any previous parent."""
        if child.parent is not None:
            child.parent.remove(child)
        child.parent = self
        self._children.append(child)
        return child

    def insert(self, index: int, child: "Element") -> "Element":
        if child.parent is not None:
            child.parent.remove(child)
        child.parent = self
        self._children.insert(index, child)
        return child

    def remove(self, child: "Element") -> None:
        self._children.remove(child)
        child.parent = None

    def add(self, name: QName | str, text: str | None = None, **attributes: str) -> "Element":
        """Create, append and return a child element (builder convenience)."""
        return self.append(Element(name, attributes=attributes, text=text))

    # -- queries ---------------------------------------------------------------

    def find(self, name: QName | str) -> "Element | None":
        """First direct child with the given qualified name."""
        wanted = name if isinstance(name, QName) else QName.parse(name)
        for child in self._children:
            if child.name == wanted:
                return child
        return None

    def find_all(self, name: QName | str) -> list["Element"]:
        """All direct children with the given qualified name."""
        wanted = name if isinstance(name, QName) else QName.parse(name)
        return [child for child in self._children if child.name == wanted]

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self._children:
            yield from child.iter()

    def child_text(self, name: QName | str, default: str | None = None) -> str | None:
        """Text of the first matching child, or ``default``."""
        child = self.find(name)
        if child is None:
            return default
        return child.text if child.text is not None else default

    @property
    def string_value(self) -> str:
        """Concatenated text of this element and descendants (XPath semantics)."""
        parts: list[str] = []
        for node in self.iter():
            if node.text:
                parts.append(node.text)
        return "".join(parts)

    # -- structure ---------------------------------------------------------------

    def copy(self) -> "Element":
        """A deep copy, detached from any parent."""
        return Element(
            self.name,
            attributes=dict(self.attributes),
            text=self.text,
            children=[child.copy() for child in self._children],
        )

    def structurally_equal(self, other: "Element") -> bool:
        """Deep equality on name, attributes, text and ordered children."""
        if self.name != other.name or self.attributes != other.attributes:
            return False
        if (self.text or "") != (other.text or ""):
            return False
        if len(self._children) != len(other._children):
            return False
        return all(
            mine.structurally_equal(theirs)
            for mine, theirs in zip(self._children, other._children)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.name.clark()} children={len(self._children)}>"


def _to_etree(element: Element) -> ET.Element:
    node = ET.Element(element.name.clark(), dict(element.attributes))
    node.text = element.text
    for child in element.children:
        node.append(_to_etree(child))
    return node


def _from_etree(node: ET.Element) -> Element:
    tag = node.tag
    if not isinstance(tag, str):
        raise XmlError(f"unsupported node type {tag!r}")
    text = node.text.strip() if node.text and node.text.strip() else None
    element = Element(QName.parse(tag), attributes=dict(node.attrib), text=text)
    for child in node:
        element.append(_from_etree(child))
    return element


def serialize_xml(element: Element, indent: bool = False) -> str:
    """Serialize to an XML string (optionally pretty-printed)."""
    tree = _to_etree(element)
    if indent:
        ET.indent(tree)
    return ET.tostring(tree, encoding="unicode")


def parse_xml(text: str) -> Element:
    """Parse an XML string into an :class:`Element` tree."""
    try:
        return _from_etree(ET.fromstring(text))
    except ET.ParseError as exc:
        raise XmlError(f"malformed XML: {exc}") from exc
