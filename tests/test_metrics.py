"""Unit tests for metrics: reliability, availability, stats, tables."""

import pytest

from repro.metrics import (
    Table,
    availability_from_records,
    describe,
    failures_per_1000,
    mean,
    mtbf_mttr,
    percentile,
    reliability_report,
    stdev,
)
from repro.services import InvocationOutcome, InvocationRecord


def record(start, duration=0.5, ok=True):
    return InvocationRecord(
        caller="c",
        target="http://a",
        operation="op",
        started_at=float(start),
        finished_at=float(start) + duration,
        outcome=InvocationOutcome.SUCCESS if ok else InvocationOutcome.FAULT,
    )


def timeline(pattern, step=1.0):
    """Build records from a string of '.' (ok) and 'x' (failure)."""
    return [
        record(index * step, duration=step * 0.5, ok=char == ".")
        for index, char in enumerate(pattern)
    ]


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_small_samples(self):
        assert stdev([5]) == 0.0
        assert stdev([2, 4]) == pytest.approx(1.4142, abs=1e-3)

    def test_percentile_bounds(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile(values, 50) == 50 or percentile(values, 50) == 51

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_describe_keys(self):
        summary = describe([1.0, 2.0, 3.0])
        assert set(summary) == {"count", "mean", "stdev", "min", "p50", "p95", "p99", "max"}
        assert describe([]) == {"count": 0}


class TestReliability:
    def test_failures_per_1000(self):
        records = timeline("." * 90 + "x" * 10)
        assert failures_per_1000(records) == pytest.approx(100.0)

    def test_no_records(self):
        assert failures_per_1000([]) == 0.0

    def test_all_success_availability(self):
        assert availability_from_records(timeline("....")) == 1.0

    def test_burst_structure_drives_availability(self):
        # Same failure count; one burst vs scattered failures.
        one_burst = timeline("." * 40 + "xxxx" + "." * 40)
        scattered = timeline(("." * 10 + "x") * 4 + "." * 40)
        assert availability_from_records(one_burst) < 1.0
        assert availability_from_records(scattered) < 1.0
        mtbf_burst, mttr_burst = mtbf_mttr(one_burst)
        mtbf_scattered, mttr_scattered = mtbf_mttr(scattered)
        assert mttr_burst > mttr_scattered  # 4s outage vs 1s outages

    def test_mtbf_mttr_simple(self):
        records = timeline("." * 10 + "xx" + "." * 10)
        mtbf, mttr = mtbf_mttr(records)
        assert mttr == pytest.approx(1.5, abs=0.5)  # 2 failed slots
        assert mtbf > mttr

    def test_mtbf_none_when_no_failures(self):
        mtbf, mttr = mtbf_mttr(timeline("....."))
        assert mttr is None
        assert mtbf is not None

    def test_empty_records(self):
        assert mtbf_mttr([]) == (None, None)
        assert availability_from_records([]) == 0.0

    def test_report_row_shape(self):
        report = reliability_report("direct A", timeline("." * 99 + "x"))
        assert report.requests == 100
        assert report.failures == 1
        assert report.failures_per_1000 == 10.0
        assert "failures per 1000" in report.row()[2]


class TestTable:
    def test_render_alignment(self):
        table = Table(["config", "value"], title="Table 1")
        table.add_row(["direct A", 105])
        table.add_row(["wsBus", 6])
        rendered = table.render()
        assert "Table 1" in rendered
        assert "direct A" in rendered
        lines = rendered.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])
