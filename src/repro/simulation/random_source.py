"""Deterministic named random streams.

Every stochastic element of an experiment (fault windows, processing-time
jitter, workload think times...) draws from its own named stream, derived
from a single master seed. Adding a new consumer of randomness therefore
never perturbs the draws seen by existing consumers, which keeps
experiments comparable across code revisions.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RandomSource"]


class RandomSource:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created deterministically on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomSource":
        """A child source whose streams are independent of this source's."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed})"
