"""Tests for active QoS probing and external management events."""

import pytest

from conftest import ECHO_CONTRACT, EchoService
from repro.core import MASCPolicyDecisionMaker
from repro.policy import (
    AdaptationPolicy,
    PolicyDocument,
    PolicyRepository,
    QuarantineAction,
)
from repro.soap import FaultCode
from repro.wsbus import (
    BusEnforcementPoint,
    ManagementEventSource,
    QoSMeasurementService,
    QoSProbe,
    WsBus,
)


def probe_payload():
    return ECHO_CONTRACT.operation("echo").input.build(text="probe")


class TestQoSProbe:
    def test_probe_measures_healthy_endpoint(self, env, network, container, echo_service):
        probe = QoSProbe(
            env, network, "http://test/echo", "echo", probe_payload, interval_seconds=10.0
        )
        probe.start()
        env.run(until=65.0)
        assert len(probe.results) == 6
        assert probe.observed_availability == 1.0
        assert all(r.response_time > 0 for r in probe.results)

    def test_probe_sees_outages(self, env, network, container, echo_service):
        probe = QoSProbe(
            env, network, "http://test/echo", "echo", probe_payload, interval_seconds=10.0
        )
        probe.start()
        endpoint = network.endpoint("http://test/echo")

        def outage():
            yield env.timeout(25.0)
            endpoint.available = False
            yield env.timeout(30.0)
            endpoint.available = True

        env.process(outage())
        env.run(until=105.0)
        failed = [r for r in probe.results if not r.succeeded]
        assert failed
        assert all(r.fault_code is FaultCode.SERVICE_UNAVAILABLE for r in failed)
        assert 0 < probe.observed_availability < 1

    def test_probe_feeds_qos_measurement_service(self, env, network, container, echo_service):
        qos = QoSMeasurementService()
        probe = QoSProbe(
            env, network, "http://test/echo", "echo", probe_payload, interval_seconds=5.0
        )
        qos.attach_to_invoker(probe.invoker)
        probe.start()
        env.run(until=26.0)
        assert qos.lookup("reliability", 0, "mean", "http://test/echo") == 1.0
        assert qos.lookup("response_time", 0, "mean", "http://test/echo") > 0

    def test_stop_halts_probing(self, env, network, container, echo_service):
        probe = QoSProbe(
            env, network, "http://test/echo", "echo", probe_payload, interval_seconds=5.0
        )
        probe.start()
        env.run(until=12.0)
        count = len(probe.results)
        probe.stop()
        env.run(until=60.0)
        assert len(probe.results) <= count + 1  # at most the in-flight probe

    def test_invalid_interval(self, env, network):
        with pytest.raises(ValueError):
            QoSProbe(env, network, "http://x", "echo", probe_payload, interval_seconds=0)

    def test_invalid_window(self, env, network):
        with pytest.raises(ValueError):
            QoSProbe(env, network, "http://x", "echo", probe_payload, window=0)

    def test_results_window_bounds_history_and_availability(
        self, env, network, container, echo_service
    ):
        """Regression: ``results`` grew without bound and availability
        averaged the full history, so a long-dead prefix of failed probes
        dragged the number down forever after the endpoint recovered."""
        probe = QoSProbe(
            env,
            network,
            "http://test/echo",
            "echo",
            probe_payload,
            interval_seconds=1.0,
            window=10,
        )
        endpoint = network.endpoint("http://test/echo")
        endpoint.available = False
        probe.start()
        env.run(until=20.5)
        assert probe.observed_availability == 0.0
        assert len(probe.results) == 10  # bounded even while failing

        endpoint.available = True
        env.run(until=35.5)
        assert len(probe.results) == 10
        # The failed prefix aged out of the window entirely; the unbounded
        # history would still report ~0.43 here.
        assert probe.observed_availability == 1.0

    def test_start_is_idempotent(self, env, network, container, echo_service):
        probe = QoSProbe(
            env, network, "http://test/echo", "echo", probe_payload, interval_seconds=10.0
        )
        probe.start()
        probe.start()
        env.run(until=11.0)
        assert len(probe.results) == 1  # not doubled


class TestManagementEvents:
    def test_reported_fault_becomes_masc_event(self, env):
        source = ManagementEventSource(env)
        events = []
        source.add_sink(events.append)
        event = source.report_fault(
            "http://svc/a", FaultCode.SERVICE_UNAVAILABLE, "rack power failure",
            service_type="Echo", source_system="datacenter-monitor",
        )
        assert events == [event]
        assert event.name == "fault.ServiceUnavailable"
        assert event.fault.source == "datacenter-monitor"
        assert event.context["reported_by"] == "datacenter-monitor"

    def test_broken_sink_does_not_starve_other_sinks(self, env):
        """Regression: one raising consumer stopped fault propagation to
        every sink registered after it, silently losing the event."""
        source = ManagementEventSource(env)

        def broken(event):
            raise RuntimeError("consumer crashed")

        seen = []
        source.add_sink(broken)
        source.add_sink(seen.append)

        with pytest.raises(RuntimeError, match="consumer crashed"):
            source.report_fault(
                "http://svc/a", FaultCode.SERVICE_UNAVAILABLE, "disk array degraded"
            )

        # The later sink still received the event, and the failure was
        # recorded with full context instead of being swallowed.
        assert len(seen) == 1
        assert source.reported == seen
        (event, sink, error) = source.sink_errors[0]
        assert event is seen[0]
        assert sink is broken
        assert isinstance(error, RuntimeError)

    def test_external_fault_drives_preventive_quarantine(self, env, network, container):
        """A hardware-failure report from an external system quarantines
        the endpoint through the normal policy machinery."""
        for name in ("a", "b"):
            container.deploy(EchoService(env, f"echo-{name}", f"http://svc/{name}"))
        repository = PolicyRepository()
        document = PolicyDocument("mgmt")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="quarantine-on-hardware-fault",
                triggers=("fault.ServiceUnavailable",),
                actions=(QuarantineAction(duration_seconds=300.0),),
            )
        )
        repository.load(document)
        bus = WsBus(env, network, repository=repository)
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a", "http://svc/b"]
        )
        maker = MASCPolicyDecisionMaker(env, repository)
        maker.register_enforcement_point(BusEnforcementPoint(bus))
        source = ManagementEventSource(env)
        source.add_sink(maker.handle)

        source.report_fault(
            "http://svc/a", FaultCode.SERVICE_UNAVAILABLE, "disk array degraded"
        )
        assert vep.members == ["http://svc/b"]
        env.run(until=301.0)
        assert set(vep.members) == {"http://svc/a", "http://svc/b"}
