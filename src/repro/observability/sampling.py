"""Policy-driven head-based trace sampling.

Recording every span of every request is the right default for the
reproduction experiments, but a fleet-sized storm emits hundreds of
thousands of spans — operators of the paper's wsBus would drown. The
standard remedy is **head-based sampling**: decide at trace birth whether
to record it, and bias the decision so the traces worth keeping (faults,
SLO violations) are never the ones thrown away.

The knobs are declared as a WS-Policy4MASC
:class:`~repro.policy.actions.TracingAction` in a policy carrying the
conventional ``observability.tracing`` trigger — the same load-time-scan
convention as ``observability.slo`` — and materialized by
:class:`TracingService` into a :class:`TraceSampler` on the bus's tracer.

Two properties matter for reproducibility:

- the sampling decision is a pure function of the trace id (a CRC32
  bucket test), so the same seed samples the same traces no matter how
  the run is sharded;
- sampling only filters which finished spans reach the exporters — span
  and trace ids are still minted for every span, and nothing on the
  message path observes the verdict, so simulated timings and metrics
  are byte-identical with sampling on, off, or absent.

**Promotion**: unsampled traces are buffered (bounded) inside the tracer;
when a span of such a trace finishes with a non-``ok`` status (a fault)
or is an ``slo.violation``, the whole trace is flushed retroactively and
its future spans export directly.
"""

from __future__ import annotations

import zlib

from repro.policy.actions import TracingAction

__all__ = ["TRACING_TRIGGER", "TraceSampler", "TracingService"]

#: The trigger naming convention for tracing configuration policies.
TRACING_TRIGGER = "observability.tracing"

#: Bucket count of the deterministic hash test (rate resolution 0.01%).
_BUCKETS = 10_000


class TraceSampler:
    """The head-based sampling decision, derived from a TracingAction."""

    __slots__ = ("sample_rate", "always_sample_faults", "always_sample_slo_violations")

    def __init__(
        self,
        sample_rate: float = 1.0,
        always_sample_faults: bool = True,
        always_sample_slo_violations: bool = True,
    ) -> None:
        self.sample_rate = sample_rate
        self.always_sample_faults = always_sample_faults
        self.always_sample_slo_violations = always_sample_slo_violations

    @classmethod
    def from_action(cls, action: TracingAction) -> "TraceSampler":
        return cls(
            sample_rate=action.sample_rate,
            always_sample_faults=action.always_sample_faults,
            always_sample_slo_violations=action.always_sample_slo_violations,
        )

    def sample(self, trace_id: str) -> bool:
        """The head decision for a new trace: record it or buffer it.

        A CRC32 bucket test, not an RNG draw: deterministic per trace id,
        independent of call order, and identical across ``--jobs`` shards.
        """
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return zlib.crc32(trace_id.encode("ascii")) % _BUCKETS < rate * _BUCKETS

    def promotes(self, span) -> bool:
        """True when ``span`` retroactively promotes its unsampled trace."""
        if self.always_sample_faults and span.status != "ok":
            return True
        if self.always_sample_slo_violations and span.name == "slo.violation":
            return True
        return False


class TracingService:
    """Materializes ``observability.tracing`` policies onto a tracer.

    Mirrors :class:`~repro.observability.slo.SloService`'s load-time-scan
    convention: the bus constructs one per tracer/repository pair and the
    last ``Tracing`` assertion found wins (tracing is a global knob, not a
    per-scope one). With no tracing policy loaded the tracer keeps its
    record-everything default.
    """

    def __init__(self, tracer, repository) -> None:
        self.tracer = tracer
        self.repository = repository
        self.action: TracingAction | None = None
        self.refresh_from_policies()

    def refresh_from_policies(self) -> TracingAction | None:
        """Re-scan the repository; call after hot-loading documents."""
        action = None
        for policy in self.repository.adaptation_policies():
            if TRACING_TRIGGER not in policy.triggers:
                continue
            for candidate in policy.actions:
                if isinstance(candidate, TracingAction):
                    action = candidate
        self.action = action
        self.tracer.configure_sampling(
            TraceSampler.from_action(action) if action is not None else None
        )
        return action
