"""Ablation: preventive adaptation on/off.

The paper's fourth adaptation type ("prevention – to prevent future faults
or extra-functional issues before they occur") evaluated quantitatively:
one SCM retailer develops a worsening response-time trend that eventually
crosses the client timeout. With prevention OFF, clients ride the
degradation into timeout faults that corrective policies must then repair.
With prevention ON, the trend detector quarantines the degrading retailer
while it is still merely slow, so clients never see the degradation peak.
"""

from __future__ import annotations

from conftest import catalog_plan
from repro.casestudies.scm import (
    RETAILER_CONTRACT,
    build_scm_deployment,
    retailer_recovery_policy_document,
)
from repro.core import MASCPolicyDecisionMaker, QoSTrendDetector
from repro.metrics import Table, failures_per_1000
from repro.policy import AdaptationPolicy, PolicyRepository, QuarantineAction
from repro.workload import WorkloadRunner
from repro.wsbus import BusEnforcementPoint, WsBus


def run_degradation_scenario(prevention_enabled: bool, seed: int = 71):
    deployment = build_scm_deployment(seed=seed, log_events=False)
    repository = PolicyRepository()
    repository.load(retailer_recovery_policy_document())  # corrective baseline
    if prevention_enabled:
        from repro.policy import PolicyDocument

        document = PolicyDocument("prevention")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="quarantine-degrading",
                triggers=("qos.trend.degrading",),
                adaptation_type="prevention",
                actions=(QuarantineAction(duration_seconds=400.0),),
            )
        )
        repository.load(document)

    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        member_timeout=5.0,
        colocated_with_clients=True,
    )
    vep = bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy="round_robin",
    )
    enforcement = BusEnforcementPoint(bus)
    decision_maker = MASCPolicyDecisionMaker(deployment.env, repository)
    decision_maker.register_enforcement_point(enforcement)
    detector = QoSTrendDetector(
        deployment.env, slope_threshold=0.01, min_samples=8, cooldown_seconds=120.0
    )
    detector.add_sink(decision_maker.handle)
    detector.attach_to_invoker(bus.invoker)

    # Retailer A develops a steady degradation: +35 ms per simulated second,
    # crossing the 5 s client timeout after ~140 s.
    endpoint = deployment.network.endpoint(deployment.retailers["A"].address)

    def degrade():
        while True:
            endpoint.added_delay_seconds += 0.035
            yield deployment.env.timeout(1.0)

    deployment.env.process(degrade(), name="slow-leak")

    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(vep.address, timeout=60.0, think=1.0), clients=4, requests_per_client=150
    )
    slow_requests = sum(1 for record in result.successes if record.duration > 2.0)
    return {
        "failures_per_1000": failures_per_1000(result.records),
        "mean_rtt": result.rtt_stats()["mean"],
        "p95_rtt": result.rtt_stats()["p95"],
        "slow_requests": slow_requests,
        "recoveries": len(bus.adaptation.outcomes),
        "quarantines": len(enforcement.quarantines),
        "trend_alerts": len(detector.reports),
    }


def test_prevention_ablation(benchmark):
    def run_both():
        return {
            "prevention OFF": run_degradation_scenario(False),
            "prevention ON": run_degradation_scenario(True),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = Table(
        [
            "Configuration",
            "Failures/1000",
            "Mean RTT (ms)",
            "p95 RTT (ms)",
            "Slow requests",
            "Corrective recoveries",
            "Quarantines",
        ],
        title="Ablation — preventive adaptation under a degrading retailer",
    )
    for label, data in results.items():
        table.add_row(
            [
                label,
                f"{data['failures_per_1000']:.0f}",
                f"{data['mean_rtt'] * 1000:.0f}",
                f"{data['p95_rtt'] * 1000:.0f}",
                data["slow_requests"],
                data["recoveries"],
                data["quarantines"],
            ]
        )
    print()
    print(table.render())

    off, on = results["prevention OFF"], results["prevention ON"]
    # Prevention actually fired.
    assert on["trend_alerts"] >= 1
    assert on["quarantines"] >= 1
    assert off["quarantines"] == 0
    # It spares clients the degradation tail: fewer slow requests and a
    # lower p95 than the corrective-only configuration.
    assert on["slow_requests"] < off["slow_requests"]
    assert on["p95_rtt"] <= off["p95_rtt"]
    # And it reduces pressure on corrective recovery.
    assert on["recoveries"] <= off["recoveries"]
