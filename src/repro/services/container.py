"""Service container: binds services to network addresses.

The container is the provider-side hosting environment (the paper deployed
services in Tomcat/Axis). It adapts incoming SOAP envelopes to operation
dispatch, validates requests against the service contract, converts raised
:class:`~repro.soap.SoapFaultError` into fault replies and accounts for
processing time.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.simulation import Environment, RandomSource
from repro.soap import FaultCode, SoapEnvelope, SoapFault, SoapFaultError
from repro.traffic.idempotency import IdempotencyStore, idempotency_key_of
from repro.transport import Network
from repro.wsdl import ContractViolation

from repro.services.invoker import Invoker
from repro.services.service import SimulatedService

__all__ = ["ServiceContainer"]


class ServiceContainer:
    """Hosts simulated services and wires them to the network."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        random_source: RandomSource | None = None,
        validate_requests: bool = True,
    ) -> None:
        self.env = env
        self.network = network
        self.random_source = random_source or RandomSource()
        self.validate_requests = validate_requests
        self.services: dict[str, SimulatedService] = {}
        #: Provider-side dedupe store: requests stamped with an
        #: idempotency key execute at most once per hosted service.
        self.idempotency = IdempotencyStore(env)

    def deploy(self, service: SimulatedService) -> SimulatedService:
        """Host ``service`` at its address and give it client-side plumbing."""
        if service.address in self.services:
            raise ValueError(f"address {service.address!r} already hosts a service")
        if service.rng is None:
            service.rng = self.random_source.stream(f"service.{service.name}")
        service.invoker = Invoker(self.env, self.network, caller=service.name)
        self.services[service.address] = service
        self.network.register(service.address, self._handler_for(service))
        return service

    def undeploy(self, address: str) -> None:
        self.services.pop(address, None)
        self.network.unregister(address)

    def service_at(self, address: str) -> SimulatedService | None:
        return self.services.get(address)

    def _handler_for(self, service: SimulatedService):
        def handle(request: SoapEnvelope) -> Generator:
            # Headerless requests (the overwhelmingly common case) take
            # the direct path; only stamped ones pay the dedupe lookup.
            if request.headers:
                key = idempotency_key_of(request)
                if key is not None:
                    return (
                        yield from self.idempotency.execute_once(
                            service.address, request, key, execute
                        )
                    )
            return (yield from execute(request))

        def execute(request: SoapEnvelope) -> Generator:
            not_understood = [
                header.element.name.clark()
                for header in request.headers
                if header.must_understand
                and header.element.name.clark() not in service.understood_headers
            ]
            if not_understood:
                service.faults_raised += 1
                return request.reply_fault(
                    SoapFault(
                        FaultCode.CLIENT,
                        "mustUnderstand header(s) not understood: "
                        + ", ".join(not_understood),
                        source=service.name,
                    )
                )
            operation = self._resolve_operation(service, request)
            if isinstance(operation, SoapFault):
                service.faults_raised += 1
                return request.reply_fault(operation)
            if self.validate_requests and request.body is not None:
                try:
                    service.contract.validate_request(operation, request.body)
                except ContractViolation as violation:
                    service.faults_raised += 1
                    return request.reply_fault(
                        SoapFault(
                            FaultCode.CLIENT,
                            f"contract violation: {'; '.join(violation.violations)}",
                            source=service.name,
                        )
                    )
            try:
                # Run the operation body inline: dispatch is pure request-scope
                # work, so driving its generator from the handler process saves
                # a process allocation (and its bootstrap/completion events)
                # on every single request.
                payload = yield from service.dispatch(operation, request)
            except SoapFaultError as error:
                service.faults_raised += 1
                fault = error.fault
                if fault.source is None:
                    fault.source = service.name
                return request.reply_fault(fault)
            return request.reply(payload)

        return handle

    @staticmethod
    def _resolve_operation(
        service: SimulatedService, request: SoapEnvelope
    ) -> str | SoapFault:
        action = request.addressing.action or ""
        operation = service.contract.operation_for_action(action)
        if operation is not None:
            return operation.name
        # Fall back to the payload's root element name matching an input
        # message, for callers that do not set a WSA action.
        if request.body is not None:
            for candidate in service.contract.operations:
                if candidate.input.element_name == request.body.name.local:
                    return candidate.name
        return SoapFault(
            FaultCode.CLIENT,
            f"no operation of {service.service_type!r} matches action {action!r}",
            source=service.name,
        )
