"""MonitoringStore correlation driving adaptation.

"Such events can also be raised by the MonitoringStore database in
situations when adaptation pre-conditions refer to several different SOAP
messages." — a correlation rule watches the order stream; when one
investor places three large orders, the rule fires and an adaptation
policy splices a CreditRating check into the *current* instance.
"""

import pytest

from repro.casestudies.stocktrading import build_trading_deployment
from repro.core import CorrelationRule
from repro.orchestration.instance import InstanceStatus
from repro.policy import (
    AdaptationPolicy,
    AddActivityAction,
    InvokeSpec,
    PolicyDocument,
    serialize_policy_document,
)


def repeated_large_orders_rule(threshold_amount=10_000.0, count=3):
    def predicate(message, history):
        if message.direction != "request":
            return None
        investor = message.envelope.body.child_text("investorId")
        if investor is None:
            return None
        large = [
            m
            for m in history
            if m.direction == "request"
            and m.envelope.body.child_text("investorId") == investor
            and float(m.envelope.body.child_text("amount", "0") or 0) >= threshold_amount
        ]
        if len(large) >= count:
            return {"investor": investor, "large_orders": len(large)}
        return None

    return CorrelationRule(
        name="repeated-large-orders",
        emits="investor.high-velocity",
        predicate=predicate,
        operation="placeOrder",
    )


@pytest.fixture
def world():
    deployment = build_trading_deployment(seed=29)
    deployment.masc.store.add_rule(repeated_large_orders_rule())
    document = PolicyDocument("velocity-check")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="credit-check-high-velocity",
            triggers=("investor.high-velocity",),
            adaptation_type="customization",
            actions=(
                AddActivityAction(
                    anchor="place-trade",
                    position="before",
                    invokes=(
                        InvokeSpec(
                            name="velocity-credit-check",
                            operation="check",
                            service_type="CreditRating",
                            inputs={"investorId": "$investor_id", "amount": "$amount"},
                            outputs={"credit_approved": "approved"},
                        ),
                    ),
                ),
            ),
        )
    )
    deployment.masc.load_policies(serialize_policy_document(document))
    return deployment


class TestCrossMessageCorrelation:
    def test_third_large_order_gets_credit_checked(self, world):
        first = world.run_order(investor_id="whale", amount=50_000.0)
        second = world.run_order(investor_id="whale", amount=60_000.0)
        third = world.run_order(investor_id="whale", amount=70_000.0)
        assert "velocity-credit-check" not in first.executed_activities
        assert "velocity-credit-check" not in second.executed_activities
        assert "velocity-credit-check" in third.executed_activities
        assert third.status is InstanceStatus.COMPLETED
        assert third.variables["credit_approved"] in (True, False)

    def test_small_orders_never_trigger(self, world):
        for index in range(4):
            instance = world.run_order(investor_id="minnow", amount=100.0)
            assert "velocity-credit-check" not in instance.executed_activities

    def test_correlation_is_per_investor(self, world):
        world.run_order(investor_id="whale", amount=50_000.0)
        world.run_order(investor_id="whale", amount=50_000.0)
        # A different investor's third large order must not be flagged.
        other = world.run_order(investor_id="other", amount=50_000.0)
        assert "velocity-credit-check" not in other.executed_activities
