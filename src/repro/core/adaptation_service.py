"""MASCAdaptationService: the process-layer enforcement point.

A WF-style runtime service "for policy-based adaptation of Web services
compositions". It enacts:

- **static customization** — when the engine raises ``instance_created``,
  matching adaptation policies edit the fresh instance tree before the
  first activity executes;
- **dynamic customization** — on events carrying a ProcessInstanceID, the
  service "suspends the running process instance to be adapted", takes a
  transient copy of the process object representation, applies the policy's
  add/remove/replace actions, passes the changes back, and resumes;
- **cross-layer coordination** — suspend/resume/terminate and extending the
  pending timeout of the calling activity, invoked by the wsBus Adaptation
  Manager before it retries a faulty service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.decision_maker import EnforcementPoint, MASCPolicyDecisionMaker
from repro.core.events import MASCEvent
from repro.observability import NULL_TRACER, correlation_id_for
from repro.orchestration import (
    InstanceStatus,
    Invoke,
    ProcessInstance,
    ProcessModifier,
    RuntimeService,
    WorkflowEngine,
)
from repro.policy import AdaptationPolicy
from repro.policy.actions import (
    AdaptationAction,
    AddActivityAction,
    CompensateInstanceAction,
    DelayProcessAction,
    ExtendTimeoutAction,
    RemoveActivityAction,
    ReplaceActivityAction,
    ResumeProcessAction,
    SuspendProcessAction,
    TerminateProcessAction,
)

__all__ = ["AdaptationReport", "MASCAdaptationService"]


@dataclass
class AdaptationReport:
    """One enacted process-layer adaptation (audit record)."""

    time: float
    instance_id: str
    policy_name: str
    action: str
    dynamic: bool
    detail: str | None = None


class MASCAdaptationService(RuntimeService, EnforcementPoint):
    """Process-layer policy enforcement, pluggable into the engine."""

    layer = "process"

    def __init__(self, decision_maker: MASCPolicyDecisionMaker) -> None:
        self.decision_maker = decision_maker
        self.decision_maker.register_enforcement_point(self)
        self.engine: WorkflowEngine | None = None
        self.reports: list[AdaptationReport] = []
        #: Pending modifiers per instance, so several actions of one policy
        #: batch into a single suspend-edit-apply-resume cycle.
        self._active_modifiers: dict[str, ProcessModifier] = {}

    # -- runtime service wiring -------------------------------------------------

    def attached(self, engine: WorkflowEngine) -> None:
        self.engine = engine
        engine.fault_advisor = self.advise_on_fault

    def instance_created(self, instance: ProcessInstance) -> None:
        """Static customization: adapt before the first activity runs."""
        assert self.engine is not None
        event = MASCEvent(
            name="process.instance_created",
            time=self.engine.env.now,
            process=instance.definition_name,
            process_instance_id=instance.id,
            context=dict(instance.variables),
        )
        self.decision_maker.handle(event)

    # -- enforcement point --------------------------------------------------------

    def enact(
        self, action: AdaptationAction, policy: AdaptationPolicy, event: MASCEvent
    ) -> bool:
        tracer = self.engine.tracer if self.engine is not None else NULL_TRACER
        if not tracer.enabled:
            return self._enact(action, policy, event)
        # The process-layer enactment span. When the event came from the
        # wsBus Adaptation Manager it carries the bus-side policy span as
        # ``trace_parent``, so messaging-layer correction and process-layer
        # customization join into one trace.
        span = tracer.start_span(
            "masc.enact",
            correlation_id=event.process_instance_id or correlation_id_for(event.envelope),
            parent=event.trace_parent,
            attributes={
                "policy": policy.name,
                "action": action.describe(),
                "layer": "process",
                "event": event.name,
            },
        )
        if self.engine is not None:
            self.engine.metrics.counter("masc.enactments").inc()
        try:
            ok = self._enact(action, policy, event, span)
        except BaseException as exc:
            span.end(status=f"error:{type(exc).__name__}")
            raise
        span.end(status="enacted" if ok else "no-effect")
        return ok

    def _enact(
        self,
        action: AdaptationAction,
        policy: AdaptationPolicy,
        event: MASCEvent,
        span=None,
    ) -> bool:
        if isinstance(action, CompensateInstanceAction):
            # Saga unwind may fan out over many instances (instance-less
            # SLO events), so it resolves its own targets.
            return self._compensate(action, policy, event, span)
        instance = self._instance_for(event)
        if instance is None:
            return False
        if isinstance(action, SuspendProcessAction):
            instance.suspend()
            self._report(instance, policy, action.describe(), dynamic=True)
            return True
        if isinstance(action, ResumeProcessAction):
            instance.resume()
            self._report(instance, policy, action.describe(), dynamic=True)
            return True
        if isinstance(action, TerminateProcessAction):
            instance.terminate(action.reason)
            self._report(instance, policy, action.describe(), dynamic=True)
            return True
        if isinstance(action, DelayProcessAction):
            instance.suspend()

            def resume_later():
                yield self.engine.env.timeout(action.delay_seconds)
                instance.resume()

            self.engine.env.process(resume_later(), name=f"delay:{instance.id}")
            self._report(instance, policy, action.describe(), dynamic=True)
            return True
        if isinstance(action, ExtendTimeoutAction):
            activity_name = event.activity or event.context.get("activity")
            extended = False
            if activity_name:
                extended = instance.extend_timeout(str(activity_name), action.extra_seconds)
            else:
                # No specific activity: extend every pending deadline.
                for name in list(instance._deadlines):
                    if instance.extend_timeout(name, action.extra_seconds):
                        extended = True
            self._report(
                instance,
                policy,
                action.describe(),
                dynamic=True,
                detail=None if extended else "no pending deadline",
            )
            return extended
        if isinstance(action, (AddActivityAction, RemoveActivityAction, ReplaceActivityAction)):
            return self._customize(instance, action, policy, event)
        return False

    # -- saga compensation --------------------------------------------------------

    def _compensate(
        self,
        action: CompensateInstanceAction,
        policy: AdaptationPolicy,
        event: MASCEvent,
        span,
    ) -> bool:
        """Enact a ``Compensate`` assertion against in-flight instances.

        Events that carry a ProcessInstanceID target that one instance;
        instance-less events (e.g. SLO ``errorBudgetExhausted``) fan out
        over every non-final instance, optionally filtered by the
        action's ``process`` attribute.
        """
        if self.engine is None:
            return False
        instance = self._instance_for(event)
        if instance is not None:
            targets = [instance]
        else:
            targets = [
                candidate
                for candidate in self.engine.instances.values()
                if candidate.status
                in (InstanceStatus.RUNNING, InstanceStatus.SUSPENDED)
                and (action.process is None or candidate.definition_name == action.process)
            ]
        enacted = False
        for target in targets:
            if action.mode == "choreography":
                ok = self._compensate_choreography(target, action)
            else:
                ok = target.request_compensation(
                    action.reason, scope=action.scope, trace_parent=span
                )
            if ok:
                enacted = True
                self.engine.metrics.counter("masc.compensations").inc()
                self._report(target, policy, action.describe(), dynamic=True)
        return enacted

    def _compensate_choreography(
        self, instance: ProcessInstance, action: CompensateInstanceAction
    ) -> bool:
        """Choreography-style saga: route each registered compensation as a
        wsBus invocation to the owning service, then terminate the instance
        (the engine never re-enters the process body)."""
        if instance.status not in (InstanceStatus.RUNNING, InstanceStatus.SUSPENDED):
            return False
        engine = self.engine
        entries = [
            entry
            for entry in reversed(instance._compensations)
            if action.scope is None or entry.scope == action.scope
        ]
        if not entries:
            return False
        for entry in entries:
            engine.notify("compensation_started", instance, entry.step, False)
            activity = entry.activity
            if isinstance(activity, Invoke):
                payload = activity.build_payload(instance)
                target = activity.to
                if target is None:
                    target = engine.resolve_service(activity.service_type or "", instance)
                engine.env.process(
                    engine.invoker.invoke(
                        to=target,
                        operation=activity.operation,
                        payload=payload,
                        timeout=activity.timeout_seconds or float("inf"),
                        process_instance_id=instance.id,
                    ),
                    name=f"{instance.id}:compensate:{activity.name}",
                )
            engine.notify("activity_compensated", instance, entry.step, activity, False)
        dispatched = set(id(entry) for entry in entries)
        instance._compensations[:] = [
            entry for entry in instance._compensations if id(entry) not in dispatched
        ]
        instance.terminate(f"compensated (choreography): {action.reason}")
        return True

    # -- process-level corrective adaptation -------------------------------------

    def advise_on_fault(self, instance, activity, fault, attempts: int):
        """Fault advisor: policy-driven correction at the process layer.

        The paper's ongoing work, built: "corrective adaptation at the
        business process orchestration layer to handle process-level
        faults". Policies trigger on ``process-fault.<Code>`` events and
        their actions translate to engine verdicts: Retry → re-run the
        activity with the policy's delay pattern, Skip → treat the
        activity as completed, ReplaceActivity (targeting this activity)
        → run the variation activity instead. First applicable policy wins
        (priority order); no policy means the fault propagates as usual.
        """
        from repro.orchestration import FaultVerdict
        from repro.policy.actions import ReplaceActivityAction, RetryAction, SkipAction

        repository = self.decision_maker.repository
        policies = repository.adaptation_policies_for(
            f"process-fault.{fault.code.value}",
            process=instance.definition_name,
            activity=activity.name,
        )
        context = {
            "fault_code": fault.code.value,
            "fault_reason": fault.fault.reason,
            "activity": activity.name,
            "attempts": attempts,
        }
        context.update(
            {
                key: value
                for key, value in instance.variables.items()
                if isinstance(value, (str, int, float, bool))
            }
        )
        subject_key = f"instance:{instance.id}"
        for policy in policies:
            if not policy.condition_holds(context):
                continue
            if not repository.check_state(policy, subject_key):
                continue
            for action in policy.actions:
                if isinstance(action, RetryAction):
                    if attempts >= action.max_retries:
                        continue  # budget exhausted: maybe a later action helps
                    verdict = FaultVerdict(
                        "retry",
                        delay_seconds=action.delay_for_attempt(attempts + 1),
                        policy_name=policy.name,
                    )
                elif isinstance(action, SkipAction):
                    verdict = FaultVerdict("skip", policy_name=policy.name)
                elif isinstance(action, ReplaceActivityAction) and action.target in (
                    activity.name,
                    "*",
                ):
                    verdict = FaultVerdict(
                        "replace",
                        replacement=action.build_activity(),
                        policy_name=policy.name,
                    )
                else:
                    continue
                repository.transition(policy, subject_key)
                repository.record_business_value(self.engine.env.now, policy, subject_key)
                self.engine.metrics.counter(f"masc.advisor.{verdict.kind}").inc()
                self._report(
                    instance,
                    policy,
                    f"process-level {verdict.kind} of {activity.name!r} "
                    f"({fault.code.value})",
                    dynamic=True,
                )
                return verdict
        return None

    # -- customization ------------------------------------------------------------

    def _customize(
        self,
        instance: ProcessInstance,
        action: AdaptationAction,
        policy: AdaptationPolicy,
        event: MASCEvent,
    ) -> bool:
        dynamic = bool(instance.executed_activities)
        suspended_here = False
        if dynamic and instance.status != InstanceStatus.SUSPENDED:
            instance.suspend()
            suspended_here = True
        try:
            modifier = ProcessModifier(instance)
            if isinstance(action, AddActivityAction):
                activity = action.build_activity()
                if action.position == "before":
                    modifier.insert_before(action.anchor, activity)
                elif action.position == "after":
                    modifier.insert_after(action.anchor, activity)
                else:
                    modifier.append_to(action.anchor, activity)
                modifier.bind_variables(self._resolve_bindings(action.bindings, event))
            elif isinstance(action, RemoveActivityAction):
                for target in self._block_targets(instance, action):
                    modifier.remove(target)
            elif isinstance(action, ReplaceActivityAction):
                modifier.replace(action.target, action.build_activity())
                modifier.bind_variables(self._resolve_bindings(action.bindings, event))
            modifier.apply()
        except Exception as exc:  # noqa: BLE001 - surfaced via report + False
            self._report(
                instance, policy, action.describe(), dynamic=dynamic, detail=f"failed: {exc}"
            )
            if suspended_here:
                instance.resume()
            return False
        if suspended_here:
            instance.resume()
        self._report(instance, policy, action.describe(), dynamic=dynamic)
        return True

    @staticmethod
    def _block_targets(instance: ProcessInstance, action: RemoveActivityAction) -> list[str]:
        """Expand a begin..end block into the sibling activities it spans."""
        if action.block_end is None:
            return [action.target]
        from repro.orchestration.modification import _find_with_parent

        begin, parent = _find_with_parent(instance.root, action.target)
        end, end_parent = _find_with_parent(instance.root, action.block_end)
        if begin is None or end is None or parent is None or parent is not end_parent:
            raise ValueError(
                f"block {action.target!r}..{action.block_end!r} is not a sibling range"
            )
        siblings = parent.children()
        start_index = siblings.index(begin)
        end_index = siblings.index(end)
        if end_index < start_index:
            start_index, end_index = end_index, start_index
        return [sibling.name for sibling in siblings[start_index : end_index + 1]]

    @staticmethod
    def _resolve_bindings(bindings: dict[str, str], event: MASCEvent) -> dict[str, Any]:
        """Resolve ``$name`` references against the event context."""
        resolved: dict[str, Any] = {}
        for variable, value in bindings.items():
            if isinstance(value, str) and value.startswith("$"):
                resolved[variable] = event.context.get(value[1:])
            else:
                resolved[variable] = value
        return resolved

    def _instance_for(self, event: MASCEvent) -> ProcessInstance | None:
        if self.engine is None or event.process_instance_id is None:
            return None
        return self.engine.instances.get(event.process_instance_id)

    def _report(
        self,
        instance: ProcessInstance,
        policy: AdaptationPolicy,
        action: str,
        dynamic: bool,
        detail: str | None = None,
    ) -> None:
        assert self.engine is not None
        self.reports.append(
            AdaptationReport(
                time=self.engine.env.now,
                instance_id=instance.id,
                policy_name=policy.name,
                action=action,
                dynamic=dynamic,
                detail=detail,
            )
        )
