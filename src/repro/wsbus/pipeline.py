"""Message pipeline: inspectors and processing modules.

"Adaptation policies supported by wsBus work via injecting runtime
inspectors and custom Message Processing Modules into a messaging pipeline
at different message processing stages such as before sending a request and
after receiving a response. These custom modules can be applied at
different scopes such as the whole service, a particular endpoint or a
particular service operation."

Module applicability is decided per message with "simple rules expressed
as a regular expression or XPath query against the header or the payload".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.soap import SoapEnvelope
from repro.xmlutils import XPath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wsbus.vep import VirtualEndpoint

__all__ = [
    "ApplicabilityRule",
    "MessagePipeline",
    "MessageProcessingModule",
    "PipelineContext",
]


@dataclass
class PipelineContext:
    """Per-message context threaded through the pipeline."""

    env: Any
    vep: "VirtualEndpoint | None"
    operation: str
    target: str | None = None
    direction: str = "request"
    #: Scratch space modules use to communicate (e.g. metering tags).
    attributes: dict[str, Any] = field(default_factory=dict)
    #: The enclosing trace span (None when tracing is disabled).
    span: Any = None


@dataclass(frozen=True)
class ApplicabilityRule:
    """Decides whether a module applies to a given message.

    Any combination of: operation glob, XPath match against the payload or
    header, and a regular expression against the serialized message.
    All configured criteria must hold.
    """

    operation: str | None = None
    xpath: str | None = None
    applies_to: str = "body"  # body | header | envelope
    regex: str | None = None

    def __post_init__(self) -> None:
        if self.xpath is not None:
            object.__setattr__(self, "_xpath", XPath(self.xpath))
        else:
            object.__setattr__(self, "_xpath", None)
        if self.regex is not None:
            object.__setattr__(self, "_regex", re.compile(self.regex))
        else:
            object.__setattr__(self, "_regex", None)

    def matches(self, envelope: SoapEnvelope, context: PipelineContext) -> bool:
        if self.operation is not None:
            import fnmatch

            if not fnmatch.fnmatchcase(context.operation, self.operation):
                return False
        compiled_xpath = getattr(self, "_xpath")
        if compiled_xpath is not None:
            if self.applies_to == "body":
                root = envelope.body
            elif self.applies_to == "header":
                root = envelope.to_element().find(
                    "{http://schemas.xmlsoap.org/soap/envelope/}Header"
                )
            else:
                root = envelope.to_element()
            if root is None or not compiled_xpath.matches(root):
                return False
        compiled_regex = getattr(self, "_regex")
        if compiled_regex is not None and compiled_regex.search(envelope.to_xml()) is None:
            return False
        return True


class MessageProcessingModule:
    """Base class for pipeline modules.

    Override the stages the module participates in. Returning a different
    envelope replaces the message for the rest of the pipeline.
    """

    def __init__(self, name: str, rule: ApplicabilityRule | None = None) -> None:
        self.name = name
        self.rule = rule

    def applies(self, envelope: SoapEnvelope, context: PipelineContext) -> bool:
        return self.rule is None or self.rule.matches(envelope, context)

    def process_request(
        self, envelope: SoapEnvelope, context: PipelineContext
    ) -> SoapEnvelope:
        return envelope

    def process_response(
        self, envelope: SoapEnvelope, context: PipelineContext
    ) -> SoapEnvelope:
        return envelope


class MessagePipeline:
    """An ordered chain of message processing modules."""

    def __init__(self, modules: list[MessageProcessingModule] | None = None) -> None:
        self.modules: list[MessageProcessingModule] = list(modules or ())

    def add(self, module: MessageProcessingModule) -> MessageProcessingModule:
        self.modules.append(module)
        return module

    def insert(self, index: int, module: MessageProcessingModule) -> None:
        self.modules.insert(index, module)

    def remove(self, name: str) -> bool:
        for module in self.modules:
            if module.name == name:
                self.modules.remove(module)
                return True
        return False

    def run_request(
        self, envelope: SoapEnvelope, context: PipelineContext
    ) -> SoapEnvelope:
        context.direction = "request"
        span = context.span
        for module in self.modules:
            if module.applies(envelope, context):
                envelope = module.process_request(envelope, context)
                if span is not None:
                    span.add_event("pipeline.request", module=module.name)
        return envelope

    def run_response(
        self, envelope: SoapEnvelope, context: PipelineContext
    ) -> SoapEnvelope:
        context.direction = "response"
        span = context.span
        # Response stages run in reverse module order, onion-style.
        for module in reversed(self.modules):
            if module.applies(envelope, context):
                envelope = module.process_response(envelope, context)
                if span is not None:
                    span.add_event("pipeline.response", module=module.name)
        return envelope
