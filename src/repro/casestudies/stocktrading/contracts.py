"""Service contracts for the Stock Trading case study (Figure 2)."""

from __future__ import annotations

from repro.wsdl import MessageSchema, Operation, PartSchema, ServiceContract

__all__ = [
    "CREDIT_RATING_CONTRACT",
    "CURRENCY_CONVERSION_CONTRACT",
    "FINANCIAL_ANALYSIS_CONTRACT",
    "FUND_MANAGER_CONTRACT",
    "MARKET_COMPLIANCE_CONTRACT",
    "PAYMENT_CONTRACT",
    "PEST_ANALYSIS_CONTRACT",
    "STOCK_MARKET_CONTRACT",
    "STOCK_NOTIFICATION_CONTRACT",
    "STOCK_REGISTRY_CONTRACT",
]

FUND_MANAGER_CONTRACT = ServiceContract(
    service_type="FundManager",
    operations=(
        Operation(
            name="placeOrder",
            input=MessageSchema(
                "placeOrderRequest",
                (
                    PartSchema("investorId"),
                    PartSchema("orderType"),  # invest | redeem
                    PartSchema("amount", "float"),
                    PartSchema("country"),
                    PartSchema("profile"),  # personal | corporate
                ),
            ),
            output=MessageSchema(
                "placeOrderResponse",
                (PartSchema("orderId"), PartSchema("status"), PartSchema("symbol")),
            ),
        ),
    ),
)

FINANCIAL_ANALYSIS_CONTRACT = ServiceContract(
    service_type="FinancialAnalysis",
    operations=(
        Operation(
            name="getRecommendation",
            input=MessageSchema(
                "getRecommendationRequest",
                (
                    PartSchema("orderType"),
                    PartSchema("amount", "float"),
                    PartSchema("country"),
                ),
            ),
            output=MessageSchema(
                "getRecommendationResponse",
                (
                    PartSchema("symbol"),
                    PartSchema("score", "float"),
                    PartSchema("price", "float"),
                ),
            ),
        ),
        Operation(
            name="updateQuotes",
            input=MessageSchema(
                "updateQuotesRequest", (PartSchema("quotes"),)
            ),
            output=MessageSchema(
                "updateQuotesResponse", (PartSchema("accepted", "bool"),)
            ),
        ),
    ),
)

STOCK_NOTIFICATION_CONTRACT = ServiceContract(
    service_type="StockNotification",
    operations=(
        Operation(
            name="getQuote",
            input=MessageSchema("getQuoteRequest", (PartSchema("symbol"),)),
            output=MessageSchema(
                "getQuoteResponse", (PartSchema("symbol"), PartSchema("price", "float"))
            ),
        ),
        Operation(
            name="subscribe",
            input=MessageSchema("subscribeRequest", (PartSchema("address"),)),
            output=MessageSchema(
                "subscribeResponse", (PartSchema("subscribed", "bool"),)
            ),
        ),
    ),
)

STOCK_MARKET_CONTRACT = ServiceContract(
    service_type="StockMarket",
    operations=(
        Operation(
            name="placeTrade",
            input=MessageSchema(
                "placeTradeRequest",
                (
                    PartSchema("orderId"),
                    PartSchema("symbol"),
                    PartSchema("side"),  # buy | sell
                    PartSchema("quantity", "int"),
                    PartSchema("limitPrice", "float"),
                ),
            ),
            output=MessageSchema(
                "placeTradeResponse",
                (
                    PartSchema("tradeId"),
                    PartSchema("status"),  # matched | queued
                    PartSchema("executedPrice", "float", required=False),
                ),
            ),
        ),
    ),
)

STOCK_REGISTRY_CONTRACT = ServiceContract(
    service_type="StockRegistry",
    operations=(
        Operation(
            name="transferOwnership",
            input=MessageSchema(
                "transferOwnershipRequest",
                (
                    PartSchema("tradeId"),
                    PartSchema("symbol"),
                    PartSchema("quantity", "int"),
                    PartSchema("fromParty"),
                    PartSchema("toParty"),
                ),
            ),
            output=MessageSchema(
                "transferOwnershipResponse", (PartSchema("transferred", "bool"),)
            ),
        ),
    ),
)

PAYMENT_CONTRACT = ServiceContract(
    service_type="Payment",
    operations=(
        Operation(
            name="transferFunds",
            input=MessageSchema(
                "transferFundsRequest",
                (
                    PartSchema("tradeId"),
                    PartSchema("amount", "float"),
                    PartSchema("fromParty"),
                    PartSchema("toParty"),
                ),
            ),
            output=MessageSchema(
                "transferFundsResponse", (PartSchema("settled", "bool"),)
            ),
        ),
    ),
)

# -- variation services used by customization policies --------------------------

CURRENCY_CONVERSION_CONTRACT = ServiceContract(
    service_type="CurrencyConversion",
    operations=(
        Operation(
            name="convert",
            input=MessageSchema(
                "convertRequest",
                (
                    PartSchema("amount", "float"),
                    PartSchema("fromCurrency"),
                    PartSchema("toCurrency"),
                ),
            ),
            output=MessageSchema(
                "convertResponse",
                (PartSchema("converted", "float"), PartSchema("rate", "float")),
            ),
        ),
    ),
)

PEST_ANALYSIS_CONTRACT = ServiceContract(
    service_type="PESTAnalysis",
    operations=(
        Operation(
            name="assess",
            input=MessageSchema("assessRequest", (PartSchema("country"),)),
            output=MessageSchema(
                "assessResponse",
                (
                    PartSchema("political", "float"),
                    PartSchema("economic", "float"),
                    PartSchema("social", "float"),
                    PartSchema("technological", "float"),
                    PartSchema("overallRisk", "float"),
                ),
            ),
        ),
    ),
)

CREDIT_RATING_CONTRACT = ServiceContract(
    service_type="CreditRating",
    operations=(
        Operation(
            name="check",
            input=MessageSchema(
                "checkRequest",
                (PartSchema("investorId"), PartSchema("amount", "float")),
            ),
            output=MessageSchema(
                "checkResponse",
                (PartSchema("rating"), PartSchema("approved", "bool")),
            ),
        ),
    ),
)

MARKET_COMPLIANCE_CONTRACT = ServiceContract(
    service_type="MarketCompliance",
    operations=(
        Operation(
            name="verify",
            input=MessageSchema(
                "verifyRequest",
                (PartSchema("orderId"), PartSchema("amount", "float")),
            ),
            output=MessageSchema(
                "verifyResponse", (PartSchema("compliant", "bool"),)
            ),
        ),
    ),
)
