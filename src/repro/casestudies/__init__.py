"""The paper's two evaluation case studies.

- :mod:`repro.casestudies.scm` — the WS-I Supply Chain Management
  application used to evaluate wsBus (Section 3.2, Table 1, Figure 5);
- :mod:`repro.casestudies.stocktrading` — the Stock Trading composition
  used to evaluate MASC customization (Section 2.2).
"""
