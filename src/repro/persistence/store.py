"""Append-only JSONL checkpoint store.

The durable medium of the persistence layer: every record — full instance
checkpoints and modification-journal entries — is appended as one JSON line
with a monotonically increasing ``seq``. Recovery reads the latest
checkpoint for an instance and replays any journal entries recorded after
it. The store works purely in memory by default; give it a ``path`` to
mirror every record to disk and to reload records written by a previous
process (the crash being recovered from).
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Iterable

__all__ = ["CHECKPOINT", "EVENT", "MODIFICATION", "CheckpointStore"]

#: Record types.
CHECKPOINT = "checkpoint"
MODIFICATION = "modification"
EVENT = "event"


class CheckpointStore:
    """Append-only record log, optionally mirrored to a JSONL file.

    ``fsync=True`` flushes and fsyncs the file after every append, so a
    host crash cannot leave a record half-acknowledged. Either way, a
    truncated *trailing* line (a crash mid-write) is dropped with a
    warning on reload — matching ``read_spans_jsonl`` semantics — while
    corruption anywhere earlier in the file still raises.
    """

    def __init__(self, path: str | Path | None = None, fsync: bool = False) -> None:
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self._records: list[dict[str, Any]] = []
        self._seq = 0
        if self.path is not None and self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                lines = handle.readlines()
            for number, line in enumerate(lines):
                line = line.strip()
                if not line:
                    continue
                try:
                    self._records.append(json.loads(line))
                except json.JSONDecodeError:
                    if number == len(lines) - 1:
                        warnings.warn(
                            f"ignoring truncated trailing checkpoint record "
                            f"({len(line)} bytes)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        break
                    raise
            if self._records:
                self._seq = max(record["seq"] for record in self._records)

    # -- writing ------------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Append one record; assigns and returns it with its ``seq``."""
        self._seq += 1
        stamped = dict(record)
        stamped["seq"] = self._seq
        self._records.append(stamped)
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(stamped, sort_keys=True) + "\n")
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
        return stamped

    # -- reading ------------------------------------------------------------------

    def records(
        self, instance_id: str | None = None, record_type: str | None = None
    ) -> list[dict[str, Any]]:
        """All records, optionally filtered by instance and/or type."""
        return [
            record
            for record in self._records
            if (instance_id is None or record.get("instance_id") == instance_id)
            and (record_type is None or record.get("type") == record_type)
        ]

    def instance_ids(self) -> list[str]:
        """Instances with at least one checkpoint, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self._records:
            if record.get("type") == CHECKPOINT:
                seen.setdefault(record["instance_id"], None)
        return list(seen)

    def latest_checkpoint(self, instance_id: str) -> dict[str, Any] | None:
        """The most recent checkpoint record for an instance, if any."""
        for record in reversed(self._records):
            if record.get("type") == CHECKPOINT and record.get("instance_id") == instance_id:
                return record
        return None

    def journal_after(self, instance_id: str, seq: int) -> list[dict[str, Any]]:
        """Modification-journal records for ``instance_id`` newer than ``seq``."""
        return [
            record
            for record in self._records
            if record.get("type") == MODIFICATION
            and record.get("instance_id") == instance_id
            and record["seq"] > seq
        ]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[dict[str, Any]]:
        return iter(list(self._records))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path is not None else "memory"
        return f"<CheckpointStore {where} records={len(self._records)}>"
