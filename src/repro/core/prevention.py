"""Preventive adaptation: acting before faults occur.

The paper's fourth adaptation type: "prevention – to prevent future faults
or extra-functional issues before they occur". The sensor half is a QoS
trend detector: it watches each endpoint's response-time series and raises
a ``qos.trend.degrading`` MASC event when the fitted slope over the
observation window exceeds a threshold — *before* the endpoint breaches
any SLA or starts failing. Preventive adaptation policies (typically
:class:`~repro.policy.QuarantineAction` or
:class:`~repro.policy.PreferBestAction`) then take the endpoint out of
rotation or demote it while it degrades.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.events import MASCEvent
from repro.services import InvocationRecord

__all__ = ["QoSTrendDetector", "TrendReport", "linear_slope"]


def linear_slope(points: list[tuple[float, float]]) -> float:
    """Least-squares slope of (time, value) points; 0 for degenerate input."""
    n = len(points)
    if n < 2:
        return 0.0
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    denominator = sum((x - mean_x) ** 2 for x, _ in points)
    if denominator == 0:
        return 0.0
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return numerator / denominator


@dataclass
class TrendReport:
    """One detected degradation trend."""

    time: float
    endpoint: str
    slope: float  # seconds of RTT growth per second of wall time
    mean_response_time: float
    samples: int


@dataclass
class _EndpointTrend:
    window: deque = field(default_factory=lambda: deque(maxlen=30))
    last_alert_at: float = float("-inf")


class QoSTrendDetector:
    """Watches invocation records and predicts degradation.

    - ``slope_threshold``: relative growth per second that counts as a
      degrading trend (e.g. 0.02 = RTT growing by 2% of its mean every
      second).
    - ``min_samples``: observations required before trusting a fit.
    - ``cooldown_seconds``: minimum spacing between alerts per endpoint.
    """

    def __init__(
        self,
        env,
        slope_threshold: float = 0.02,
        min_samples: int = 10,
        cooldown_seconds: float = 60.0,
        window: int = 30,
    ) -> None:
        self.env = env
        self.slope_threshold = slope_threshold
        self.min_samples = min_samples
        self.cooldown_seconds = cooldown_seconds
        self.window = window
        self._endpoints: dict[str, _EndpointTrend] = {}
        self._sinks: list[Callable[[MASCEvent], None]] = []
        self.reports: list[TrendReport] = []

    def add_sink(self, sink: Callable[[MASCEvent], None]) -> None:
        self._sinks.append(sink)

    def attach_to_invoker(self, invoker) -> None:
        invoker.add_observer(self.observe)

    # -- observation --------------------------------------------------------------

    def observe(self, record: InvocationRecord) -> None:
        if not record.succeeded:
            return  # failures are the *corrective* path's business
        trend = self._endpoints.get(record.target)
        if trend is None:
            trend = _EndpointTrend(window=deque(maxlen=self.window))
            self._endpoints[record.target] = trend
        trend.window.append((record.finished_at, record.duration))
        self._evaluate(record.target, trend)

    def _evaluate(self, endpoint: str, trend: _EndpointTrend) -> None:
        if len(trend.window) < self.min_samples:
            return
        if self.env.now - trend.last_alert_at < self.cooldown_seconds:
            return
        points = list(trend.window)
        slope = linear_slope(points)
        mean_rt = sum(value for _, value in points) / len(points)
        if mean_rt <= 0:
            return
        relative_slope = slope / mean_rt
        if relative_slope < self.slope_threshold:
            return
        trend.last_alert_at = self.env.now
        report = TrendReport(
            time=self.env.now,
            endpoint=endpoint,
            slope=slope,
            mean_response_time=mean_rt,
            samples=len(points),
        )
        self.reports.append(report)
        event = MASCEvent(
            name="qos.trend.degrading",
            time=self.env.now,
            endpoint=endpoint,
            context={
                "endpoint": endpoint,
                "slope": slope,
                "relative_slope": relative_slope,
                "mean_response_time": mean_rt,
            },
            raised_by="qos-trend-detector",
        )
        for sink in self._sinks:
            sink(event)

    def reset(self, endpoint: str) -> None:
        """Forget history for an endpoint (e.g. after it was quarantined)."""
        self._endpoints.pop(endpoint, None)
