"""A small namespace-aware element tree.

The tree is deliberately simpler than ``xml.etree``: qualified names are
:class:`~repro.xmlutils.qname.QName` objects rather than Clark-notation
strings, children know their parent (needed by XPath ``..`` steps and by the
policy engine when splicing variation fragments), and deep structural
equality is defined (needed by message-transformation tests).

Parsing and serialization bridge through ``xml.etree.ElementTree`` so the
wire format is real, interoperable XML.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections.abc import Iterable, Iterator

from repro.xmlutils.qname import QName

__all__ = [
    "Element",
    "XmlError",
    "escaped_text_size",
    "parse_xml",
    "serialize_xml",
    "serialize_xml_reference",
]


class XmlError(Exception):
    """Raised for malformed XML or misuse of the element tree."""


class Element:
    """An XML element: qualified name, attributes, text, children."""

    def __init__(
        self,
        name: QName | str,
        attributes: dict[str, str] | None = None,
        text: str | None = None,
        children: Iterable["Element"] | None = None,
    ) -> None:
        self.name = name if isinstance(name, QName) else QName.parse(name)
        self.attributes: dict[str, str] = dict(attributes or {})
        self.text = text
        self.parent: Element | None = None
        self._children: list[Element] = []
        for child in children or ():
            self.append(child)

    # -- tree manipulation ---------------------------------------------------

    @property
    def children(self) -> tuple["Element", ...]:
        return tuple(self._children)

    def append(self, child: "Element") -> "Element":
        """Append ``child``, detaching it from any previous parent."""
        if child.parent is not None:
            child.parent.remove(child)
        child.parent = self
        self._children.append(child)
        return child

    def insert(self, index: int, child: "Element") -> "Element":
        if child.parent is not None:
            child.parent.remove(child)
        child.parent = self
        self._children.insert(index, child)
        return child

    def remove(self, child: "Element") -> None:
        self._children.remove(child)
        child.parent = None

    def add(self, name: QName | str, text: str | None = None, **attributes: str) -> "Element":
        """Create, append and return a child element (builder convenience)."""
        return self.append(Element(name, attributes=attributes, text=text))

    # -- queries ---------------------------------------------------------------

    def find(self, name: QName | str) -> "Element | None":
        """First direct child with the given qualified name."""
        wanted = name if isinstance(name, QName) else QName.parse(name)
        for child in self._children:
            if child.name == wanted:
                return child
        return None

    def find_all(self, name: QName | str) -> list["Element"]:
        """All direct children with the given qualified name."""
        wanted = name if isinstance(name, QName) else QName.parse(name)
        return [child for child in self._children if child.name == wanted]

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self._children:
            yield from child.iter()

    def child_text(self, name: QName | str, default: str | None = None) -> str | None:
        """Text of the first matching child, or ``default``."""
        child = self.find(name)
        if child is None:
            return default
        return child.text if child.text is not None else default

    @property
    def string_value(self) -> str:
        """Concatenated text of this element and descendants (XPath semantics)."""
        parts: list[str] = []
        for node in self.iter():
            if node.text:
                parts.append(node.text)
        return "".join(parts)

    # -- structure ---------------------------------------------------------------

    def copy(self) -> "Element":
        """A deep copy, detached from any parent."""
        return Element(
            self.name,
            attributes=dict(self.attributes),
            text=self.text,
            children=[child.copy() for child in self._children],
        )

    def structurally_equal(self, other: "Element") -> bool:
        """Deep equality on name, attributes, text and ordered children."""
        if self.name != other.name or self.attributes != other.attributes:
            return False
        if (self.text or "") != (other.text or ""):
            return False
        if len(self._children) != len(other._children):
            return False
        return all(
            mine.structurally_equal(theirs)
            for mine, theirs in zip(self._children, other._children)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.name.clark()} children={len(self._children)}>"


def _to_etree(element: Element) -> ET.Element:
    node = ET.Element(element.name.clark(), dict(element.attributes))
    node.text = element.text
    for child in element.children:
        node.append(_to_etree(child))
    return node


# -- direct serializer ---------------------------------------------------------
#
# Serializing through ``xml.etree`` costs a full tree conversion plus
# ElementTree's own namespace pass on every call, and envelope serialization
# is the hottest non-kernel code in the middleware (message sizes drive the
# transport latency model). The writer below produces output byte-identical
# to ``ET.tostring(..., encoding="unicode")`` — same ``ns0``/``ns1`` prefix
# assignment in document order, same well-known prefixes (via ElementTree's
# own registry, so ``ET.register_namespace`` keeps working), same escaping,
# same ``<tag />`` short empty form — without ever materializing an etree.
# ``serialize_xml_reference`` keeps the old path alive so tests can assert
# the two stay bit-for-bit interchangeable.

#: ElementTree's live well-known/registered prefix map ("for tests and
#: troubleshooting" per its source; shared here so registrations apply to
#: both serializers).
_ET_PREFIXES = ET.register_namespace._namespace_map  # type: ignore[attr-defined]

_XML_NS = "http://www.w3.org/XML/1998/namespace"


def _escape_cdata(text: str) -> str:
    # Mirrors ElementTree._escape_cdata.
    if "&" in text:
        text = text.replace("&", "&amp;")
    if "<" in text:
        text = text.replace("<", "&lt;")
    if ">" in text:
        text = text.replace(">", "&gt;")
    return text


def _escape_attrib(text: str) -> str:
    # Mirrors ElementTree._escape_attrib, including the CR/LF/TAB entities.
    if "&" in text:
        text = text.replace("&", "&amp;")
    if "<" in text:
        text = text.replace("<", "&lt;")
    if ">" in text:
        text = text.replace(">", "&gt;")
    if '"' in text:
        text = text.replace('"', "&quot;")
    if "\r" in text:
        text = text.replace("\r", "&#13;")
    if "\n" in text:
        text = text.replace("\n", "&#10;")
    if "\t" in text:
        text = text.replace("\t", "&#09;")
    return text


class _QNameTable:
    """Prefix assignment replicating ElementTree's ``_namespaces`` pass.

    Namespace URIs get prefixes in order of first appearance in document
    order (tag before attributes, parents before children): a well-known
    prefix from ElementTree's registry if there is one, else ``ns%d`` with
    ``%d`` the number of declarations so far. The ``xml`` namespace is
    usable but never declared.
    """

    __slots__ = ("tags", "attrs", "namespaces")

    def __init__(self) -> None:
        self.tags: dict[QName, str] = {}
        self.attrs: dict[str, str] = {}
        self.namespaces: dict[str, str] = {}

    def _prefix(self, uri: str) -> str:
        prefix = self.namespaces.get(uri)
        if prefix is None and uri != _XML_NS:
            prefix = _ET_PREFIXES.get(uri)
            if prefix is None:
                prefix = "ns%d" % len(self.namespaces)
            if prefix != "xml":
                self.namespaces[uri] = prefix
        if prefix is None:  # the implicit xml namespace
            prefix = "xml"
        return prefix

    def add_tag(self, name: QName) -> None:
        uri = name.namespace
        if not uri:
            self.tags[name] = name.local
            return
        prefix = self._prefix(uri)
        self.tags[name] = f"{prefix}:{name.local}" if prefix else name.local

    def add_attr(self, key: str) -> None:
        if not key.startswith("{"):
            self.attrs[key] = key
            return
        uri, _, local = key[1:].rpartition("}")
        prefix = self._prefix(uri)
        self.attrs[key] = f"{prefix}:{local}" if prefix else local

    def collect(self, element: Element) -> None:
        """One document-order pass over ``element`` and its subtree."""
        if element.name not in self.tags:
            self.add_tag(element.name)
        for key in element.attributes:
            if key not in self.attrs:
                self.add_attr(key)
        for child in element._children:
            self.collect(child)

    def declarations(self) -> str:
        """The root element's ``xmlns`` attribute text, sorted by prefix."""
        return "".join(
            f' xmlns:{prefix}="{_escape_attrib(uri)}"'
            for uri, prefix in sorted(self.namespaces.items(), key=lambda item: item[1])
        )


def _write_element(element: Element, out: list[str], table: _QNameTable, decl: str) -> None:
    tag = table.tags[element.name]
    attrs = element.attributes
    if attrs:
        out.append(
            "<"
            + tag
            + decl
            + "".join(
                f' {table.attrs[key]}="{_escape_attrib(value)}"'
                for key, value in attrs.items()
            )
        )
    else:
        out.append("<" + tag + decl)
    text = element.text
    children = element._children
    if text or children:
        out.append(">" + _escape_cdata(text) if text else ">")
        for child in children:
            _write_element(child, out, table, "")
        out.append("</" + tag + ">")
    else:
        out.append(" />")


def _from_etree(node: ET.Element) -> Element:
    tag = node.tag
    if not isinstance(tag, str):
        raise XmlError(f"unsupported node type {tag!r}")
    text = node.text.strip() if node.text and node.text.strip() else None
    element = Element(QName.parse(tag), attributes=dict(node.attrib), text=text)
    for child in node:
        element.append(_from_etree(child))
    return element


def serialize_xml(element: Element, indent: bool = False) -> str:
    """Serialize to an XML string (optionally pretty-printed).

    The compact form uses the direct writer (byte-identical to the
    ElementTree reference path, pinned by differential tests); pretty
    printing is a debugging/reporting path and keeps using ElementTree.
    """
    if indent:
        tree = _to_etree(element)
        ET.indent(tree)
        return ET.tostring(tree, encoding="unicode")
    table = _QNameTable()
    table.collect(element)
    out: list[str] = []
    _write_element(element, out, table, table.declarations())
    return "".join(out)


def escaped_text_size(text: str) -> int:
    """UTF-8 byte length of ``text`` once escaped as element character data.

    This is exactly the number of bytes ``text`` contributes to a serialized
    document, which lets callers predict how a serialized size changes when
    only flat text fields change (the SOAP envelope size memo relies on it).
    """
    return len(_escape_cdata(text).encode("utf-8"))


def serialize_xml_reference(element: Element, indent: bool = False) -> str:
    """The ``xml.etree`` serialization path, kept as the reference
    implementation for differential tests against :func:`serialize_xml`."""
    tree = _to_etree(element)
    if indent:
        ET.indent(tree)
    return ET.tostring(tree, encoding="unicode")


def parse_xml(text: str) -> Element:
    """Parse an XML string into an :class:`Element` tree."""
    try:
        return _from_etree(ET.fromstring(text))
    except ET.ParseError as exc:
        raise XmlError(f"malformed XML: {exc}") from exc
