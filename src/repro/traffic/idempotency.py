"""Idempotency keys: provably exactly-once execution across redelivery.

The retry handler "tries redelivery" of failed messages — but a member
that timed out *after* executing the request (response lost on the way
back) has already performed the side effect, and a blind redelivery
performs it twice: the classic double ``collectPayment``.

The remedy has two halves:

- the VEP stamps each scope-matched request with a MASC extension header
  carrying a key derived from the envelope's **message ID** (unique per
  client request; the process-instance correlation ID is shared by every
  request of an instance, so it cannot distinguish two distinct calls).
  Header-preserving ``copy()``/``retargeted()`` means retries,
  dead-letter replays, broadcasts and substitutions all carry the key of
  the original request even though each attempt mints a fresh message ID;
- the service container consults its :class:`IdempotencyStore` before
  dispatching: the first delivery of a key executes and its response body
  is recorded; every later delivery is answered from the record without
  re-executing. A duplicate arriving while the first delivery is still
  executing *waits* for its outcome instead of racing it.

Only successful responses are recorded — a faulted execution leaves no
record, so a retry of a genuine failure still re-executes (that is what
retries are for).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.soap.addressing import MASC_NS
from repro.soap.envelope import SoapEnvelope
from repro.xmlutils import Element, QName

__all__ = [
    "IDEMPOTENCY_HEADER",
    "IdempotencyStore",
    "idempotency_key_of",
    "stamp_idempotency_key",
]

#: The SOAP extension header (MASC namespace, never mustUnderstand) that
#: carries the idempotency key end to end.
IDEMPOTENCY_HEADER = QName(MASC_NS, "IdempotencyKey")


def idempotency_key_of(envelope: SoapEnvelope) -> str | None:
    """The idempotency key stamped on ``envelope``, or None."""
    header = envelope.header(IDEMPOTENCY_HEADER)
    if header is None:
        return None
    return header.text or None


def stamp_idempotency_key(envelope: SoapEnvelope, key: str | None = None) -> str | None:
    """Stamp ``envelope`` with an idempotency key header (idempotently).

    An already-stamped envelope is left untouched — a dead-letter replay
    re-entering the VEP must keep the key of the original request. With
    no explicit ``key`` the envelope's message ID is used; returns the
    effective key, or None when there is nothing to derive one from.
    """
    existing = idempotency_key_of(envelope)
    if existing is not None:
        return existing
    if key is None:
        key = envelope.addressing.message_id
    if not key:
        return None
    envelope.add_header(Element(IDEMPOTENCY_HEADER, text=key))
    return key


class _Entry:
    """One key's record: a wait event and, once known, the response body."""

    __slots__ = ("event", "body")

    def __init__(self, event) -> None:
        self.event = event
        self.body = None


class IdempotencyStore:
    """Per-service dedupe store executing each key at most once.

    Keys are namespaced by service address so two services receiving the
    same key (e.g. a broadcast) each execute once. Bounded LRU: completed
    records past ``max_entries`` are evicted oldest-first; in-flight
    claims are never evicted.
    """

    def __init__(self, env, max_entries: int = 4096) -> None:
        self.env = env
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self.recorded = 0
        self.deduped = 0
        #: Duplicates that arrived while the first delivery was executing
        #: and waited for its outcome instead of racing it.
        self.coalesced = 0
        self.evicted = 0

    def execute_once(self, service_address: str, request, key: str, execute):
        """Run ``execute(request)`` at most once for ``key``; a generator.

        Deliveries after a recorded success are answered with the first
        response's body without executing. A faulted or failed execution
        clears its claim so the next delivery executes afresh.
        """
        slot = (service_address, key)
        while True:
            entry = self._entries.get(slot)
            if entry is None:
                break
            if entry.body is not None:
                self.deduped += 1
                self._entries.move_to_end(slot)
                return request.reply(entry.body)
            # First delivery still executing: wait for its outcome, then
            # re-check (an aborted claim lets this delivery execute).
            self.coalesced += 1
            yield entry.event
        entry = _Entry(self.env.event())
        self._entries[slot] = entry
        try:
            reply = yield from execute(request)
        except BaseException:
            self._entries.pop(slot, None)
            entry.event.succeed(None)
            raise
        if reply is not None and not reply.is_fault and reply.body is not None:
            entry.body = reply.body
            self.recorded += 1
            if len(self._entries) > self.max_entries:
                self._evict_one()
        else:
            self._entries.pop(slot, None)
        entry.event.succeed(None)
        return reply

    def _evict_one(self) -> None:
        for slot, entry in self._entries.items():
            if entry.body is not None:
                oldest = slot
                break
        else:
            return
        del self._entries[oldest]
        self.evicted += 1

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "recorded": self.recorded,
            "deduped": self.deduped,
            "coalesced": self.coalesced,
            "evicted": self.evicted,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IdempotencyStore entries={len(self._entries)} "
            f"deduped={self.deduped}>"
        )
