"""Simulated Web service base class.

A service implements each contract operation as a method named
``op_<operation>`` taking the request payload (an Element) and a
:class:`ServiceContext`. Operation methods are generators: they yield
simulation events (typically via ``ctx.work()`` for processing time or
``ctx.call()`` for nested invocations) and return the response payload.

Application-level failures are raised as
:class:`~repro.soap.SoapFaultError`; the hosting container converts them to
fault replies on the wire.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.simulation import Environment
from repro.soap import SoapEnvelope
from repro.wsdl import ServiceContract
from repro.xmlutils import Element

__all__ = ["ProcessingModel", "ServiceContext", "SimulatedService"]


@dataclass(frozen=True)
class ProcessingModel:
    """Simulated service-side processing time.

    ``base + per_kb * request_size`` with uniform ±jitter, drawn from the
    service's own random stream. Differentiating these per service instance
    is how the case studies give "the same type" services different QoS.
    """

    base_seconds: float = 0.005
    per_kb_seconds: float = 0.0002
    jitter_fraction: float = 0.15

    def sample(self, size_bytes: int, rng) -> float:
        nominal = self.base_seconds + self.per_kb_seconds * (size_bytes / 1024.0)
        if self.jitter_fraction <= 0:
            return nominal
        jitter = nominal * self.jitter_fraction
        return max(0.0, nominal + rng.uniform(-jitter, jitter))


class ServiceContext:
    """Per-request context handed to operation implementations."""

    def __init__(
        self,
        service: "SimulatedService",
        request: SoapEnvelope,
        operation_name: str,
    ) -> None:
        self.service = service
        self.request = request
        self.operation_name = operation_name
        self.env: Environment = service.env

    def work(self, extra_seconds: float = 0.0):
        """A timeout event for this request's simulated processing time."""
        rng = self.service.rng
        duration = self.service.processing.sample(self.request.size_bytes, rng)
        return self.env.timeout(duration + max(0.0, extra_seconds))

    def call(
        self,
        to: str,
        operation: str,
        payload: Element,
        timeout: float | None = None,
    ) -> Generator:
        """Invoke another service through this service's invoker."""
        if self.service.invoker is None:
            raise RuntimeError(f"service {self.service.name!r} has no invoker configured")
        return self.service.invoker.invoke(to, operation, payload, timeout=timeout)


class SimulatedService:
    """Base class for all case-study services."""

    #: Subclasses set the shared contract for their service type.
    contract: ServiceContract
    #: Qualified names (Clark notation) of extension headers this service
    #: understands. A request carrying a ``mustUnderstand`` header outside
    #: this set is rejected with a Client fault (SOAP 1.1 semantics).
    understood_headers: frozenset[str] = frozenset()

    def __init__(
        self,
        env: Environment,
        name: str,
        address: str,
        processing: ProcessingModel | None = None,
        rng=None,
    ) -> None:
        if not hasattr(self, "contract") or self.contract is None:
            raise TypeError(f"{type(self).__name__} must define a contract")
        self.env = env
        self.name = name
        self.address = address
        self.processing = processing or ProcessingModel()
        self.rng = rng
        #: Set by the container so operations can make nested calls.
        self.invoker = None
        #: Invocation counters for experiment reporting.
        self.invocations = 0
        self.faults_raised = 0

    @property
    def service_type(self) -> str:
        return self.contract.service_type

    def dispatch(self, operation_name: str, request: SoapEnvelope) -> Generator:
        """The simulated process implementing one request."""
        method = getattr(self, f"op_{operation_name}", None)
        if method is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not implement operation {operation_name!r}"
            )
        self.invocations += 1
        context = ServiceContext(self, request, operation_name)
        return method(request.body, context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} at {self.address}>"
