"""Web services Selection Service.

"A VEP can be configured to choose between registered services in
round-robin fashion, or to select the best performing service (based on the
QoS metrics gathered from prior interactions or from other management
entities), or to 'broadcast' the request message to multiple targets
service providers concurrently and consider the first one that respond[s]".

Selection can also be content/context based: "'on the fly' selection of
service provider or intermediary based on a selection criteria specified in
the policy attached to the VEP, such as message content and context".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability import NULL_METRICS
from repro.simulation import RandomSource
from repro.soap import SoapEnvelope
from repro.wsbus.pipeline import ApplicabilityRule, PipelineContext
from repro.wsbus.qos import QoSMeasurementService

__all__ = ["ContentRule", "SelectionService"]

STRATEGIES = ("round_robin", "best_response_time", "best_reliability", "random", "primary", "content")


@dataclass(frozen=True)
class ContentRule:
    """Routes messages matching a rule to a specific member."""

    rule: ApplicabilityRule
    target: str


class SelectionService:
    """Chooses concrete members of a VEP for each request."""

    def __init__(
        self,
        qos: QoSMeasurementService,
        random_source: RandomSource | None = None,
        metrics=None,
        resilience=None,
    ) -> None:
        self.qos = qos
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Optional :class:`~repro.resilience.ResilienceService`: members
        #: with an open circuit breaker are skipped during selection.
        self.resilience = resilience
        self._rng = (random_source or RandomSource()).stream("wsbus.selection")
        self._round_robin_counters: dict[str, int] = {}
        self._broadcast_counters: dict[str, int] = {}
        self._content_rules: dict[str, list[ContentRule]] = {}

    def add_content_rule(self, vep_name: str, rule: ContentRule) -> None:
        self._content_rules.setdefault(vep_name, []).append(rule)

    def select(
        self,
        vep_name: str,
        strategy: str,
        members: list[str],
        envelope: SoapEnvelope | None = None,
        context: PipelineContext | None = None,
        exclude: set[str] | None = None,
        qos_window: int = 50,
    ) -> str | None:
        """One member per the strategy, or None if no candidate remains."""
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown selection strategy {strategy!r}")
        if self.metrics.enabled:
            self.metrics.counter(f"wsbus.selection.{strategy}").inc()
        candidates = [m for m in members if not exclude or m not in exclude]
        candidates = self._admitted(candidates)
        if not candidates:
            return None
        if strategy == "primary":
            return candidates[0]
        if strategy == "random":
            return self._rng.choice(candidates)
        if strategy == "round_robin":
            # Rotate over positions in the *full* member list, skipping
            # non-admitted members. Indexing the filtered candidate list with
            # the per-VEP counter would shift every subsequent pick whenever
            # an exclusion or open breaker shrinks the set, skipping or
            # double-serving members; anchoring positions to ``members``
            # keeps the rotation stable while the admitted set fluctuates.
            counter = self._round_robin_counters.get(vep_name, 0)
            admitted = set(candidates)
            size = len(members)
            for offset in range(size):
                member = members[(counter + offset) % size]
                if member in admitted:
                    self._round_robin_counters[vep_name] = counter + offset + 1
                    return member
            return None  # unreachable: candidates is a non-empty subset of members
        if strategy == "best_response_time":
            return self.qos.best_endpoint(candidates, "response_time", qos_window)
        if strategy == "best_reliability":
            return self.qos.best_endpoint(candidates, "reliability", qos_window)
        # content-based
        if envelope is not None and context is not None:
            for content_rule in self._content_rules.get(vep_name, ()):
                if content_rule.target in candidates and content_rule.rule.matches(
                    envelope, context
                ):
                    return content_rule.target
        return candidates[0]

    def broadcast_targets(
        self,
        members: list[str],
        max_targets: int = 0,
        exclude: set[str] | None = None,
        vep_name: str | None = None,
    ) -> list[str]:
        """The member set for concurrent invocation (first response wins).

        When ``max_targets`` bounds the fan-out, the window *rotates* over
        the full member list (same anchoring as round-robin selection):
        truncating with ``candidates[:max_targets]`` would permanently
        starve the tail members of every broadcast. The rotation counter
        is keyed by ``vep_name`` when the caller supplies one, falling
        back to the member list itself.
        """
        candidates = [m for m in members if not exclude or m not in exclude]
        candidates = self._admitted(candidates)
        if max_targets <= 0 or len(candidates) <= max_targets:
            return candidates
        key = vep_name if vep_name is not None else "|".join(members)
        counter = self._broadcast_counters.get(key, 0)
        admitted = set(candidates)
        size = len(members)
        window: list[str] = []
        for offset in range(size):
            member = members[(counter + offset) % size]
            if member in admitted:
                window.append(member)
                if len(window) == max_targets:
                    # Next window starts after this one's last member, so
                    # successive broadcasts sweep the whole membership.
                    self._broadcast_counters[key] = counter + offset + 1
                    break
        return window

    def _admitted(self, candidates: list[str]) -> list[str]:
        """Drop members whose circuit breaker would reject the send.

        The peek is non-consuming (``would_allow``), so inspecting every
        member here never burns a half-open probe budget. When *every*
        candidate is quarantined the empty list stands — failing fast is
        the point of the breaker; the open interval elapsing re-admits
        members for probing.
        """
        if self.resilience is None or not candidates:
            return candidates
        admitted = [m for m in candidates if self.resilience.member_selectable(m)]
        if self.metrics.enabled and len(admitted) < len(candidates):
            self.metrics.counter("wsbus.resilience.breaker.skipped").inc(
                len(candidates) - len(admitted)
            )
        return admitted
