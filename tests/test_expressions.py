"""Unit tests for the safe expression evaluator."""

import pytest

from repro.orchestration import Expression, ExpressionError


class TestEvaluation:
    def test_arithmetic(self):
        assert Expression("2 + 3 * 4").evaluate({}) == 14

    def test_variables(self):
        assert Expression("amount * rate").evaluate({"amount": 100, "rate": 1.5}) == 150

    def test_comparison_chain(self):
        assert Expression("0 < x <= 10").evaluate({"x": 5}) is True
        assert Expression("0 < x <= 10").evaluate({"x": 15}) is False

    def test_boolean_operators(self):
        context = {"amount": 200_000, "profile": "personal"}
        expr = Expression("amount >= 100000 or profile == 'corporate'")
        assert expr.holds(context)
        assert not expr.holds({"amount": 10, "profile": "personal"})

    def test_membership(self):
        assert Expression("c in ['BR', 'RU']").holds({"c": "RU"})
        assert Expression("c not in ['BR', 'RU']").holds({"c": "AU"})

    def test_conditional_expression(self):
        assert Expression("'big' if n > 5 else 'small'").evaluate({"n": 9}) == "big"

    def test_subscript(self):
        assert Expression("xs[1]").evaluate({"xs": [10, 20]}) == 20

    def test_safe_functions(self):
        assert Expression("max(1, n, 3)").evaluate({"n": 7}) == 7
        assert Expression("int(amount / price)").evaluate({"amount": 10, "price": 3}) == 3
        assert Expression("len(name)").evaluate({"name": "abcd"}) == 4

    def test_unary_operators(self):
        assert Expression("-x").evaluate({"x": 3}) == -3
        assert Expression("not flag").evaluate({"flag": False}) is True

    def test_tuple_and_list_literals(self):
        assert Expression("(1, 2)").evaluate({}) == (1, 2)
        assert Expression("[x, x + 1]").evaluate({"x": 1}) == [1, 2]

    def test_unknown_variable_raises(self):
        with pytest.raises(ExpressionError):
            Expression("ghost + 1").evaluate({})

    def test_short_circuit_and(self):
        # Division by zero on the right is never evaluated.
        assert Expression("x > 0 and 1 / x > 0").holds({"x": 0}) is False

    def test_runtime_error_wrapped(self):
        with pytest.raises(ExpressionError):
            Expression("1 / x").evaluate({"x": 0})


class TestSecurity:
    """The evaluator must reject anything that could execute code."""

    @pytest.mark.parametrize(
        "source",
        [
            "__import__('os')",
            "open('/etc/passwd')",
            "x.__class__",
            "(lambda: 1)()",
            "[x for x in range(3)]",
            "exec('1')",
            "getattr(x, 'y')",
            "x.attribute",
            "f'{x}'",
            "max(x, key=abs)",
        ],
    )
    def test_rejected_at_compile_time(self, source):
        with pytest.raises(ExpressionError):
            Expression(source)

    def test_statements_rejected(self):
        with pytest.raises(ExpressionError):
            Expression("x = 1")

    def test_syntax_error_wrapped(self):
        with pytest.raises(ExpressionError):
            Expression("1 +")
