"""Experiment metrics: reliability, availability, RTT, throughput, reports.

Implements the paper's measurement definitions verbatim:

- *Reliability* — "a number of failures seen by the client per 1000
  requests";
- *Availability* — "mean time between failures divided with the sum of mean
  time between failures and mean time to recover";
- *Round Trip Time* — "the period from the time a service consumer sends a
  request to the time when it successfully receives full reply";
- *Throughput* — "the average number of successful requests processed in a
  sampling period".
"""

from repro.metrics.reliability import (
    ReliabilityReport,
    availability_from_records,
    failures_per_1000,
    mtbf_mttr,
    reliability_report,
)
from repro.metrics.stats import describe, mean, percentile, stdev
from repro.metrics.report import Table

__all__ = [
    "ReliabilityReport",
    "Table",
    "availability_from_records",
    "describe",
    "failures_per_1000",
    "mean",
    "mtbf_mttr",
    "percentile",
    "reliability_report",
    "stdev",
]
