"""A federated fleet of wsBus instances over one simulated environment.

The paper's middleware is a singleton; :class:`BusFleet` makes the
adaptation plane distributable: N :class:`~repro.wsbus.WsBus` shards front
partitioned VEP sets, a consistent-hash ring (policy-overridable through
:class:`~repro.federation.service.FederationService`) places each VEP on
the shard owning it, heartbeat membership suspects dead buses, gossip
spreads QoS observations so best-of selection converges fleet-wide, and a
lease-based leader election leaves exactly one bus's Adaptation Manager
enacting fleet-wide policy reactions (followers forward their MASC/SLO
events to the leader).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.federation.election import LeaderElection
from repro.federation.gossip import QoSGossip
from repro.federation.membership import FleetMembership
from repro.federation.ring import HashRing
from repro.federation.service import FederationService
from repro.observability import NULL_METRICS, NULL_TRACER
from repro.policy import PolicyRepository
from repro.wsbus import WsBus

__all__ = ["BusFleet", "FleetVep"]


@dataclass
class FleetVep:
    """Placement record for one logical VEP (what failover re-creates)."""

    name: str
    contract: object
    owner: str
    address: str
    members: list[str] = field(default_factory=list)
    kwargs: dict = field(default_factory=dict)
    moves: int = 0


class BusFleet:
    """N wsBus shards with membership, gossip QoS and a leader."""

    def __init__(
        self,
        env,
        network,
        shards: int = 4,
        repository=None,
        registry=None,
        random_source=None,
        base_address: str = "http://fleet",
        member_timeout: float | None = 10.0,
        qos_window: int = 500,
        mediation_capacity: int | None = None,
        colocated_with_clients: bool = False,
        tracer=None,
        metrics=None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"fleet needs at least one shard: {shards}")
        self.env = env
        self.network = network
        self.repository = repository if repository is not None else PolicyRepository()
        self.registry = registry
        self.random_source = random_source
        self.base_address = base_address
        self.member_timeout = member_timeout
        self.qos_window = qos_window
        self.mediation_capacity = mediation_capacity
        self.colocated_with_clients = colocated_with_clients
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

        self.federation = FederationService(self.repository)
        config = self.federation.config()
        self.membership = FleetMembership(
            env,
            heartbeat_interval=config.heartbeat_interval_seconds,
            suspicion_multiplier=config.suspicion_multiplier,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.election = LeaderElection(
            env,
            self.membership,
            lease_seconds=config.lease_seconds,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.gossip = QoSGossip(
            env,
            interval_seconds=config.gossip_interval_seconds,
            fanout=config.gossip_fanout,
            random_source=random_source,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.ring = HashRing(virtual_nodes=config.virtual_nodes)
        self.buses: dict[str, WsBus] = {}
        self.veps: dict[str, FleetVep] = {}
        self._crashed: set[str] = set()

        self.membership.add_listener(self._on_membership_event)
        self.election.add_listener(self._on_leader_change)
        for index in range(shards):
            self.add_bus(f"bus-{index}")
        self.membership.start()
        self.election.start()
        self.gossip.start(self.membership)

    # -- bus lifecycle --------------------------------------------------------------

    @property
    def leader(self) -> str | None:
        return self.election.leader

    def add_bus(self, name: str) -> WsBus:
        """Join a (new or returning) bus instance to the fleet."""
        if name in self.buses and name not in self._crashed:
            raise ValueError(f"bus {name!r} already in the fleet")
        self._crashed.discard(name)
        bus = WsBus(
            self.env,
            self.network,
            repository=self.repository,
            registry=self.registry,
            random_source=self.random_source,
            base_address=f"{self.base_address}/{name}",
            member_timeout=self.member_timeout,
            qos_window=self.qos_window,
            colocated_with_clients=self.colocated_with_clients,
            tracer=self.tracer,
            metrics=self.metrics,
            name=name,
            mediation_capacity=self.mediation_capacity,
        )
        bus.adaptation.owner_label = name
        self.buses[name] = bus
        self.gossip.register(name, bus.qos)
        self.ring.add(name)
        self.membership.join(name)
        self.env.process(self._heartbeat_loop(name), name=("fleet-heartbeat", name))
        self._apply_leadership()
        self._rebalance()
        return bus

    def remove_bus(self, name: str) -> None:
        """Graceful departure: hand off VEPs, release any lease."""
        if name not in self.buses:
            return
        self.membership.leave(name)

    def crash_bus(self, name: str) -> None:
        """Abrupt death: the bus stops heartbeating and serving instantly.

        Its VEP frontdoors go dark until failure suspicion triggers
        re-placement on the survivors; if it held the leadership lease,
        followers keep forwarding events into the void until the lease
        expires and a new leader is elected — the realistic outage window.
        """
        if name in self._crashed or name not in self.buses:
            return
        self._crashed.add(name)
        bus = self.buses[name]
        for vep_name in sorted(self.veps):
            if self.veps[vep_name].owner == name:
                bus.remove_vep(vep_name)
        if self.metrics.enabled:
            self.metrics.counter("federation.bus.crashed").inc()
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "federation.bus.crash", attributes={"bus": name}
            )
            span.end(status="crashed")

    def _heartbeat_loop(self, name: str):
        interval = self.membership.heartbeat_interval
        while name not in self._crashed and name in self.buses:
            self.membership.heartbeat(name)
            yield self.env.timeout(interval)

    # -- membership / leadership reactions ------------------------------------------

    def _on_membership_event(self, kind: str, name: str) -> None:
        if kind in ("suspect", "leave"):
            if name in self.ring:
                self.ring.remove(name)
                self.gossip.unregister(name)
            if kind == "leave":
                if self.election.leader == name and self.election.lease is not None:
                    # Stepping down gracefully releases the lease at once.
                    self.election.lease.expires_at = self.env.now
                owned = [v for v in sorted(self.veps) if self.veps[v].owner == name]
                self.election.evaluate()
                if owned and len(self.ring):
                    self._rebalance()
            else:
                self.election.evaluate()
                if len(self.ring):
                    self._rebalance()
        elif kind == "join":
            if name not in self.ring and name in self.buses and name not in self._crashed:
                self.ring.add(name)
                if name not in self.gossip.agents:
                    self.gossip.register(name, self.buses[name].qos)
            self.election.evaluate()
            self._rebalance()

    def _on_leader_change(self, previous: str | None, new: str) -> None:
        self._apply_leadership()

    def _apply_leadership(self) -> None:
        leader = self.election.leader
        leader_manager = self.buses[leader].adaptation if leader in self.buses else None
        for name, bus in self.buses.items():
            if name in self._crashed:
                continue
            bus.adaptation.forward_to = None if name == leader else leader_manager

    # -- VEP placement ---------------------------------------------------------------

    def route(self, vep_name: str, service_type: str | None = None) -> str:
        """The bus owning a VEP: policy pin when alive, else the ring."""
        pinned = self.federation.pinned_bus(vep_name, service_type)
        if pinned is not None and pinned in self.ring:
            return pinned
        return self.ring.route(vep_name)

    def create_vep(self, name: str, contract, members=None, **kwargs):
        """Create a logical VEP, placed on the shard owning it.

        The VEP's address lives under the *fleet* base address — clients
        target the logical name; which bus serves it is a placement
        decision that failover may revisit.
        """
        if name in self.veps:
            raise ValueError(f"fleet VEP {name!r} already exists")
        owner = self.route(name, contract.service_type)
        address = f"{self.base_address}/{name}"
        vep = self.buses[owner].create_vep(
            name, contract, members=members, address=address, **kwargs
        )
        self.veps[name] = FleetVep(
            name=name,
            contract=contract,
            owner=owner,
            address=address,
            members=list(vep.members),
            kwargs=dict(kwargs),
        )
        if self.metrics.enabled:
            self.metrics.counter(f"federation.vep.placed.{owner}").inc()
        return vep

    def vep(self, name: str):
        spec = self.veps.get(name)
        if spec is None:
            return None
        return self.buses[spec.owner].vep(name)

    def _rebalance(self) -> None:
        """Move every VEP whose owner no longer matches the routing."""
        if not len(self.ring):
            return
        for name in sorted(self.veps):
            spec = self.veps[name]
            owner = self.route(name, getattr(spec.contract, "service_type", None))
            if owner != spec.owner:
                self._move_vep(spec, owner)

    def _move_vep(self, spec: FleetVep, new_owner: str) -> None:
        old_bus = self.buses.get(spec.owner)
        if spec.owner not in self._crashed and old_bus is not None and spec.name in old_bus.veps:
            # Capture live membership (churn may have changed it) before
            # tearing the old placement down.
            spec.members = list(old_bus.veps[spec.name].members)
            old_bus.remove_vep(spec.name)
        vep = self.buses[new_owner].create_vep(
            spec.name,
            spec.contract,
            members=list(spec.members),
            address=spec.address,
            **spec.kwargs,
        )
        previous = spec.owner
        spec.owner = new_owner
        spec.moves += 1
        spec.members = list(vep.members)
        if self.metrics.enabled:
            self.metrics.counter("federation.vep.moved").inc()
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "federation.vep.failover",
                attributes={"vep": spec.name, "from": previous, "to": new_owner},
            )
            span.end(status="moved")

    # -- VEP member churn --------------------------------------------------------------

    def add_vep_member(self, vep_name: str, address: str) -> None:
        """Service discovery: a new member joins a logical VEP at runtime."""
        spec = self.veps[vep_name]
        bus = self.buses[spec.owner]
        vep = bus.veps[vep_name]
        vep.add_member(address)
        bus.slo.register_endpoint(address, spec.contract.service_type)
        spec.members = list(vep.members)

    def remove_vep_member(self, vep_name: str, address: str) -> None:
        """A member leaves a logical VEP at runtime."""
        spec = self.veps[vep_name]
        vep = self.buses[spec.owner].veps[vep_name]
        vep.remove_member(address)
        spec.members = list(vep.members)

    # -- reporting ---------------------------------------------------------------------

    def stats_summary(self) -> dict:
        """Fleet-wide statistics for experiment reports."""
        return {
            "leader": self.leader,
            "epoch": self.election.epoch,
            "placement": {name: spec.owner for name, spec in sorted(self.veps.items())},
            "moves": sum(spec.moves for spec in self.veps.values()),
            "membership": self.membership.summary(),
            "election": self.election.summary(),
            "gossip": self.gossip.summary(),
            "buses": {
                name: self.buses[name].stats_summary()
                for name in sorted(self.buses)
                if name not in self._crashed
            },
        }
